"""Shared helpers for the experiment benchmarks.

Every experiment (one file per paper figure/claim, see DESIGN.md §3)
prints the series the paper reports; run with ``pytest benchmarks/
--benchmark-only -s`` to see the tables.  Results are also attached to
the pytest-benchmark ``extra_info`` so they land in the JSON output.
"""

import pytest

from repro import Server, ServerConfig
from repro.buffer import GovernorConfig
from repro.common import MiB

#: Servers built by :func:`make_server` during the current test, newest
#: last; the autouse fixture below exports the last one's metrics
#: snapshot into the benchmark's ``extra_info``.
_SERVERS = []


def make_server(pool_pages=2048, mpl=4, total_memory=256 * MiB,
                upper_bound=128 * MiB, start_governor=False, **kwargs):
    config = ServerConfig(
        start_buffer_governor=start_governor,
        initial_pool_pages=pool_pages,
        multiprogramming_level=mpl,
        total_memory=total_memory,
        governor=GovernorConfig(upper_bound_bytes=upper_bound),
        **kwargs,
    )
    server = Server(config)
    _SERVERS.append(server)
    return server


@pytest.fixture(autouse=True)
def _attach_metrics_snapshot(request):
    """Land ``server.metrics.snapshot()`` in the benchmark JSON.

    After each experiment, the last server built through
    :func:`make_server` contributes its full registry snapshot to
    ``benchmark.extra_info["metrics"]``, so experiment tables can be
    regenerated straight from the CI ``BENCH_*.json`` artifact.
    Rig-style experiments that build components by hand (no Server)
    export an empty snapshot.
    """
    _SERVERS.clear()
    # Resolve the benchmark fixture up front: getfixturevalue is illegal
    # during teardown, and the JSON writer keeps a reference to the same
    # extra_info dict, so a post-yield mutation still lands in the file.
    benchmark = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames else None
    )
    yield
    if benchmark is None or getattr(benchmark, "stats", None) is None:
        # The benchmark never actually ran (e.g. skipped); nothing to tag.
        return
    benchmark.extra_info["metrics"] = (
        _SERVERS[-1].metrics.snapshot() if _SERVERS else {}
    )


def print_table(title, headers, rows):
    """Render one experiment table to stdout."""
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
    widths = [
        max(len(str(header)), max((len(_fmt(row[i])) for row in rows), default=0))
        for i, header in enumerate(headers)
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(_fmt(cell).ljust(w) for cell, w in zip(row, widths)))
    print()


def _fmt(value):
    if isinstance(value, float):
        return "%.3g" % value
    return str(value)


@pytest.fixture
def once(benchmark):
    """Run the experiment body exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner


@pytest.fixture
def median_of(benchmark):
    """Run the experiment body over several warm rounds; report the median.

    For microsecond-scale rig experiments a single cold round is mostly
    interpreter warm-up noise; the bench gate compares wall medians, so
    these need warm, multi-round medians to be stable run-over-run.  The
    experiment body must build fresh state each call.
    """

    def runner(fn, *args, rounds=15, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=rounds, iterations=1,
                                  warmup_rounds=3)

    return runner
