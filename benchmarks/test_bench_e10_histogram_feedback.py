"""E10: self-managing statistics via query-execution feedback (Section 3).

The server never runs an explicit ANALYZE: statistics are gathered "as a
side effect of query execution".  This bench creates a table with *no*
statistics (simulating data that arrived through means the histograms
never saw), runs a stream of range queries over skewed data, and tracks
the estimation error (q-error = max(est, actual) / min(est, actual)) of
each query's predicate as the feedback loop refines the histogram.

A control run with feedback disabled shows the error staying put.
"""

import random

from repro.sql import Binder, parse_statement

from conftest import make_server, print_table

N_ROWS = 8000
BATCHES = 6
QUERIES_PER_BATCH = 10


def build_server(feedback):
    server = make_server(pool_pages=4096)
    server.config.feedback_enabled = feedback
    conn = server.connect()
    conn.execute("CREATE TABLE readings (id INT PRIMARY KEY, v INT)")
    rng = random.Random(42)
    # Heavily skewed: 80% of values in [0, 1000), tail to 100k.
    rows = []
    for i in range(N_ROWS):
        if rng.random() < 0.8:
            value = rng.randrange(0, 1000)
        else:
            value = rng.randrange(1000, 100_000)
        rows.append((i, value))
    table = server.catalog.table("readings")
    for row in rows:
        row_id = table.storage.insert(row)
        server._index_insert(table, row, row_id)
    # NOTE: loaded behind the statistics manager's back — no histogram.
    return server, conn


def estimated_selectivity(server, sql):
    binder = Binder(server.catalog)
    block = binder.bind(parse_statement(sql))
    estimator = server._make_estimator()
    quantifier = block.quantifiers[0]
    selectivity = 1.0
    for conjunct in block.conjuncts:
        selectivity *= estimator.local_selectivity(conjunct.expr, quantifier)
    return selectivity


def q_error(estimate, actual):
    estimate = max(estimate, 1e-6)
    actual = max(actual, 1e-6)
    return max(estimate / actual, actual / estimate)


def run_experiment(feedback):
    server, conn = build_server(feedback)
    rng = random.Random(7)
    series = []
    for batch in range(BATCHES):
        errors = []
        for __ in range(QUERIES_PER_BATCH):
            low = rng.randrange(0, 2000)
            width = rng.randrange(200, 1500)
            sql = (
                "SELECT COUNT(*) FROM readings WHERE v BETWEEN %d AND %d"
                % (low, low + width)
            )
            estimate = estimated_selectivity(server, sql)
            actual = conn.execute(sql).rows[0][0] / N_ROWS
            errors.append(q_error(estimate, actual))
        series.append((batch + 1, sum(errors) / len(errors), max(errors)))
    return series


def test_e10_histogram_feedback(once):
    def both():
        return run_experiment(feedback=True), run_experiment(feedback=False)

    with_feedback, without_feedback = once(both)
    rows = [
        (batch, fb_mean, fb_max, nofb_mean)
        for (batch, fb_mean, fb_max), (__, nofb_mean, __m) in zip(
            with_feedback, without_feedback
        )
    ]
    print_table(
        "E10: selectivity q-error as execution feedback accrues "
        "(skewed data, no explicit statistics)",
        ["query batch", "mean q-error (feedback)", "max q-error (feedback)",
         "mean q-error (no feedback)"],
        rows,
    )
    first_mean = with_feedback[0][1]
    last_mean = with_feedback[-1][1]
    # Feedback shrinks the estimation error substantially.
    assert last_mean < first_mean / 2
    assert last_mean < 2.0  # converges to near-truth
    # Without feedback the error never improves.
    assert without_feedback[-1][1] > last_mean * 2
