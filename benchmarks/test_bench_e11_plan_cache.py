"""E11: plan caching for stored-procedure statements (Section 4.1).

"Access plans are cached on an LRU basis for each connection.  A
statement's plan is only cached ... if the access plans obtained by
successive optimizations during a 'training period' are identical. ...
the statement is periodically verified at intervals taken from a decaying
logarithmic scale."

The bench calls a procedure many times and reports the optimization count
against an uncached baseline, then drifts the data distribution so a
verification invalidates the stale plan.
"""

from conftest import make_server, print_table

N_CALLS = 200


def setup(server):
    conn = server.connect()
    conn.execute(
        "CREATE TABLE accounts (id INT PRIMARY KEY, branch INT, "
        "balance DOUBLE)"
    )
    conn.execute(
        "CREATE TABLE branches (id INT PRIMARY KEY, region INT)"
    )
    conn.execute(
        "CREATE TABLE regions (id INT PRIMARY KEY, country INT)"
    )
    conn.execute(
        "CREATE TABLE countries (id INT PRIMARY KEY, name VARCHAR(20))"
    )
    server.load_table(
        "accounts", [(i, i % 50, float(i % 1000)) for i in range(5000)]
    )
    server.load_table("branches", [(i, i % 10) for i in range(50)])
    server.load_table("regions", [(i, i % 3) for i in range(10)])
    server.load_table("countries", [(i, "c%d" % i) for i in range(3)])
    # A 4-way join: optimization effort is genuinely worth amortizing
    # (single-table statements would take the heuristic bypass instead).
    conn.execute(
        "CREATE PROCEDURE branch_total(b) AS "
        "SELECT SUM(a.balance) FROM accounts a, branches br, regions r, "
        "countries c WHERE a.branch = br.id AND br.region = r.id "
        "AND r.country = c.id AND br.id = b"
    )
    return conn


def run_cache_experiment():
    server = make_server(pool_pages=2048)
    conn = setup(server)
    start = server.clock.now
    for i in range(N_CALLS):
        conn.execute("CALL branch_total(%d)" % (i % 50))
    cached_us = server.clock.now - start
    cache = conn.plan_cache
    rows = [
        ("with plan cache", N_CALLS, cache.optimizations, cache.hits,
         cache.verifications, cached_us / 1000.0),
    ]
    # Baseline: every invocation re-optimizes (cache disabled by using a
    # fresh connection per call — each connection has its own cache).
    server2 = make_server(pool_pages=2048)
    setup(server2)
    start = server2.clock.now
    optimizations = 0
    for i in range(N_CALLS):
        fresh = server2.connect()
        fresh.execute("CALL branch_total(%d)" % (i % 50))
        optimizations += fresh.plan_cache.optimizations
    rows.append((
        "re-optimize every call", N_CALLS, optimizations, 0, 0,
        (server2.clock.now - start) / 1000.0,
    ))
    return rows


def run_invalidation_experiment():
    server = make_server(pool_pages=2048)
    conn = setup(server)
    conn.execute("CREATE INDEX acc_branch ON accounts (branch)")
    for __ in range(6):
        conn.execute("CALL branch_total(7)")
    cached = conn.plan_cache.is_cached("proc:branch_total")
    invalidations_before = conn.plan_cache.invalidations
    # Drift: drop the index the cached plan relies on; verification at the
    # next scheduled use count must detect the new plan shape.
    conn.execute("DROP INDEX acc_branch")
    for __ in range(40):
        conn.execute("CALL branch_total(7)")
    return [(
        cached,
        conn.plan_cache.verifications,
        conn.plan_cache.invalidations - invalidations_before,
    )]


def test_e11_plan_cache_amortization(once):
    rows = once(run_cache_experiment)
    print_table(
        "E11: plan-cache amortization over %d procedure calls" % N_CALLS,
        ["mode", "calls", "optimizations", "cache hits", "verifications",
         "total ms (sim)"],
        rows,
    )
    cached, uncached = rows
    # Training (3) plus the decaying-log verifications; far below one
    # optimization per call.
    assert cached[2] < N_CALLS / 5
    assert cached[3] > N_CALLS * 0.8
    assert uncached[2] == N_CALLS
    # Fewer optimizations translate into less total time.
    assert cached[5] < uncached[5]


def test_e11_verification_catches_drift(once):
    cached, verifications, invalidations = once(run_invalidation_experiment)[0]
    print_table(
        "E11b: decaying-logarithmic verification catches plan drift",
        ["was cached", "verifications", "invalidations"],
        [(cached, verifications, invalidations)],
    )
    assert cached
    assert verifications >= 1
    assert invalidations >= 1
