"""E12: Application Profiling — Index Consultant and flaw detection
(Section 5).

* the **Index Consultant** costs the workload against *virtual indexes*
  and recommends creations whose estimated benefit is then confirmed by
  actually applying the winning recommendation and re-running the
  workload;
* the **client-side join detector** flags an application loop issuing the
  same statement with different constants.
"""

from repro.profiling import FlawAnalyzer, IndexConsultant, Tracer

from conftest import make_server, print_table

WORKLOAD = [
    "SELECT amount FROM sales WHERE region = 7",
    "SELECT amount FROM sales WHERE region = 12 AND day > 300",
    "SELECT COUNT(*) FROM sales WHERE region = 3",
]


def setup(server):
    conn = server.connect()
    conn.execute(
        "CREATE TABLE sales (id INT PRIMARY KEY, region INT, "
        "amount DOUBLE, day INT)"
    )
    # Batch loads arrive region by region, so the table is physically
    # clustered on region — the realistic case where a region index pays.
    rows = sorted(
        ((i, i % 400, float(i % 997), i % 365) for i in range(30000)),
        key=lambda row: row[1],
    )
    server.load_table("sales", rows)
    return conn


def time_workload(server, conn, repetitions=3):
    server.pool.set_capacity(128)  # keep the table mostly cold
    start = server.clock.now
    for __ in range(repetitions):
        for sql in WORKLOAD:
            conn.execute(sql)
    return (server.clock.now - start) / 1000.0


def run_consultant_experiment():
    server = make_server(pool_pages=512)
    conn = setup(server)
    consultant = IndexConsultant(server)
    recommendations = consultant.analyze(WORKLOAD)
    creates = [r for r in recommendations if r.action == "create"]
    before_ms = time_workload(server, conn)
    applied = None
    if creates:
        applied = creates[0]
        conn.execute(
            "CREATE INDEX consultant_idx ON %s (%s)"
            % (applied.table_name, ", ".join(applied.column_names))
        )
    after_ms = time_workload(server, conn)
    rows = [
        (
            "%s(%s)" % (r.table_name, ",".join(r.column_names)),
            r.action,
            r.benefit_us / 1000.0,
        )
        for r in recommendations
    ]
    return rows, before_ms, after_ms, applied


def run_flaw_experiment():
    server = make_server(pool_pages=512)
    conn = setup(server)
    server.tracer = Tracer()
    # The application anti-pattern: a loop of point queries.
    for i in range(40):
        conn.execute("SELECT amount FROM sales WHERE id = %d" % i)
    flaws = FlawAnalyzer().analyze(server.tracer, server.catalog)
    return [(flaw.kind, flaw.severity, flaw.summary[:60]) for flaw in flaws]


def test_e12a_index_consultant(once):
    rows, before_ms, after_ms, applied = once(run_consultant_experiment)
    print_table(
        "E12a: Index Consultant recommendations (virtual-index costing)",
        ["index", "action", "est. benefit (ms)"],
        rows,
    )
    print("workload before: %.1f ms   after applying top pick: %.1f ms"
          % (before_ms, after_ms))
    assert applied is not None
    assert "region" in applied.column_names
    # The estimated benefit is confirmed by the real workload.
    assert after_ms < before_ms * 0.8


def test_e12b_client_side_join_detection(once):
    rows = once(run_flaw_experiment)
    print_table(
        "E12b: design-flaw detection over the captured trace",
        ["kind", "severity", "summary"],
        rows,
    )
    kinds = [row[0] for row in rows]
    assert "client-side-join" in kinds
