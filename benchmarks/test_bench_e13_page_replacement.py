"""E13: the modified generalized clock replacement (Section 2.2).

The pool's replacement policy must recognize differing reference locality:
"adjacent references to a single page during a table scan are different
from other reference patterns".  The bench drives three pools — modified
gclock, LRU, FIFO — through the same trace mixing a frequently
re-referenced hot set with large sequential scans, and compares hit rates:
the score-based clock resists scan flooding that evicts LRU's hot pages.
It also shows the lookaside queue recycling heap/temp pages immediately.
"""

import random

from repro.buffer import BufferPool, FIFOPolicy, GClockPolicy, LRUPolicy, PageKind
from repro.buffer.heap import Heap
from repro.common import SimClock
from repro.storage import FlashDisk, Volume

from conftest import print_table

CAPACITY = 64
HOT_PAGES = 40
SCAN_PAGES = 80
ROUNDS = 15


def run_trace(policy_factory):
    clock = SimClock()
    volume = Volume(FlashDisk(clock, 100_000))
    pool = BufferPool(volume.create_file("temp"), CAPACITY,
                      policy=policy_factory())
    hot = volume.create_file("hot")
    cold = volume.create_file("cold")
    hot_pages = []
    for i in range(HOT_PAGES):
        frame = pool.new_page(hot, PageKind.TABLE, payload=i)
        hot_pages.append(frame.page_no)
        pool.unpin(frame)
    scan_pages = []
    for i in range(SCAN_PAGES):
        frame = pool.new_page(cold, PageKind.TABLE, payload=i)
        scan_pages.append(frame.page_no)
        pool.unpin(frame)
    pool.flush_all()
    pool.hits = pool.misses = 0
    rng = random.Random(5)
    for __ in range(ROUNDS):
        # A burst of hot-set references (several touches per page) ...
        for __r in range(5):
            for page in hot_pages:
                frame = pool.fetch(hot, page)
                pool.unpin(frame)
        # ... then one large sequential scan pass floods the pool.
        for page in scan_pages:
            frame = pool.fetch(cold, page)
            pool.unpin(frame)
        # A few random hot touches interleaved after the scan.
        for __r in range(10):
            frame = pool.fetch(hot, rng.choice(hot_pages))
            pool.unpin(frame)
    total = pool.hits + pool.misses
    return pool.hits / total, pool.hits, pool.misses


def run_lookaside_demo():
    clock = SimClock()
    volume = Volume(FlashDisk(clock, 100_000))
    policy = GClockPolicy()
    pool = BufferPool(volume.create_file("temp"), 32, policy=policy)
    table = volume.create_file("t")
    # Fill with table pages, then churn heap pages: freed heap frames feed
    # the lookaside queue and are recycled without disturbing the clock.
    for i in range(24):
        frame = pool.new_page(table, PageKind.TABLE, payload=i)
        pool.unpin(frame)
    evictions_before = pool.evictions
    for __ in range(50):
        heap = Heap(pool)
        for i in range(4):
            heap.allocate_page(payload=i)
        heap.free()
    return policy.lookaside_depth(), pool.evictions - evictions_before


def run_experiment():
    rows = []
    for name, factory in (
        ("modified gclock", GClockPolicy),
        ("LRU", LRUPolicy),
        ("FIFO", FIFOPolicy),
    ):
        hit_rate, hits, misses = run_trace(factory)
        rows.append((name, "%.1f%%" % (hit_rate * 100), hits, misses))
    return rows


def test_e13_replacement_policies(once):
    rows = once(run_experiment)
    print_table(
        "E13: page replacement under scan flooding + hot set "
        "(capacity %d, hot %d, scan %d)" % (CAPACITY, HOT_PAGES, SCAN_PAGES),
        ["policy", "hit rate", "hits", "misses"],
        rows,
    )
    rates = {row[0]: float(row[1].rstrip("%")) for row in rows}
    # The modified clock keeps the hot set through scans.
    assert rates["modified gclock"] > rates["LRU"]
    assert rates["modified gclock"] > rates["FIFO"]


def test_e13_lookaside_queue(once):
    depth, evictions = once(run_lookaside_demo)
    print_table(
        "E13b: lookaside queue recycles heap pages immediately",
        ["lookaside entries after churn", "clock evictions during churn"],
        [(depth, evictions)],
    )
    # Heap churn recycles through the lookaside path, not clock sweeps of
    # table pages.
    assert evictions <= 8
