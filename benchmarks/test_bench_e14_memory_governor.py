"""E14: memory-governor quotas under concurrency (Section 4.3, eqs. 4-5).

Prints the hard limit ((3/4 * max pool) / active requests) and the soft
limit (current pool / multiprogramming level) as the number of active
requests and the pool size vary, and demonstrates top-down reclamation:
when a statement hits the soft limit, the consumer at the top of its
execution tree relinquishes memory first, so input operators are not
starved by their consumers.
"""

from repro.buffer import BufferPool
from repro.common import SimClock
from repro.exec import MemoryGovernor
from repro.storage import FlashDisk, Volume

from conftest import print_table

MAX_POOL_PAGES = 8192
MPL = 8


def run_quota_experiment():
    volume = Volume(FlashDisk(SimClock(), 100_000))
    pool = BufferPool(volume.create_file("temp"), capacity_pages=4096)
    governor = MemoryGovernor(pool, MAX_POOL_PAGES, multiprogramming_level=MPL)
    rows = []
    tasks = []
    for n_requests in (1, 2, 4, 8, 16):
        while len(tasks) < n_requests:
            tasks.append(governor.begin_task())
        rows.append((
            n_requests,
            pool.capacity_pages,
            governor.hard_limit_pages(),
            governor.soft_limit_pages(),
        ))
    for task in tasks:
        governor.end_task(task)
    # Pool resizes move the soft limit (current pool size, not max).
    task = governor.begin_task()
    for capacity in (4096, 1024, 256):
        pool.set_capacity(capacity)
        rows.append((1, capacity, governor.hard_limit_pages(),
                     governor.soft_limit_pages()))
    governor.end_task(task)
    return rows


class _Consumer:
    def __init__(self, name, pages, log):
        self.name = name
        self.memory_pages = pages
        self._log = log

    def relinquish_memory(self):
        self._log.append(self.name)
        freed = self.memory_pages
        self.memory_pages = 0
        return freed


def run_reclamation_experiment():
    volume = Volume(FlashDisk(SimClock(), 100_000))
    pool = BufferPool(volume.create_file("temp"), capacity_pages=1024)
    governor = MemoryGovernor(pool, MAX_POOL_PAGES, multiprogramming_level=4)
    task = governor.begin_task()
    log = []
    # An execution tree: group-by (top) <- hash join <- sort (input side).
    task.register_consumer(_Consumer("sort (deep input)", 60, log), depth=2)
    task.register_consumer(_Consumer("hash join", 60, log), depth=1)
    task.register_consumer(_Consumer("group by (top)", 60, log), depth=0)
    task.allocate(task.soft_limit_pages)  # fill the quota
    task.allocate(30)                     # breach -> reclamation
    return log


def test_e14_quota_formulas(median_of):
    rows = median_of(run_quota_experiment)
    print_table(
        "E14: memory governor quotas (max pool %d pages, MPL %d)"
        % (MAX_POOL_PAGES, MPL),
        ["active requests", "pool pages", "hard limit (eq.4)",
         "soft limit (eq.5)"],
        rows,
    )
    # eq. 4: hard limit divides 3/4 of the max pool by active requests.
    assert rows[0][2] == int(0.75 * MAX_POOL_PAGES)
    assert rows[2][2] == int(0.75 * MAX_POOL_PAGES / 4)
    # Hard limit halves as requests double.
    assert rows[1][2] == rows[0][2] // 2
    # eq. 5: soft limit follows the *current* pool size.
    assert rows[-1][3] == 256 // MPL
    assert rows[-3][3] == 4096 // MPL


def test_e14_top_down_reclamation(median_of):
    log = median_of(run_reclamation_experiment)
    print_table(
        "E14b: reclamation order when the soft limit is breached",
        ["asked to relinquish (in order)"],
        [(name,) for name in log],
    )
    assert log[0] == "group by (top)"
    # Inputs are asked last, if at all.
    if "sort (deep input)" in log:
        assert log.index("sort (deep input)") == len(log) - 1
