"""E15: ablation of eq. (2) damping and the 64 KB deadband (Section 2).

"To avoid undesirable fluctuations, the server applies a damping factor to
size changes by resizing the pool to 0.9 * new ideal size + 0.1 * current
size."  The ablation runs the same noisy memory scenario with (a) the
paper's damped controller, (b) damping disabled, and (c) damping and
deadband disabled, and compares the pool-size trajectory's step activity:
the damped controller makes fewer and smaller adjustments for the same
end state.
"""

from repro.buffer import BufferGovernor, BufferPool, GovernorConfig, PageKind
from repro.common import KiB, MiB, MINUTE, SimClock
from repro.ossim import OperatingSystem
from repro.storage import FlashDisk, Volume

from conftest import print_table

MINUTES = 40


def run_controller(damping_new, deadband_bytes, seedless_noise):
    clock = SimClock()
    os = OperatingSystem(128 * MiB)
    server_process = os.spawn("dbserver")
    competitor = os.spawn("noisy-app")
    volume = Volume(FlashDisk(clock, 500_000))
    pool = BufferPool(volume.create_file("temp"), capacity_pages=2048)
    config = GovernorConfig(
        upper_bound_bytes=512 * MiB,
        damping_new=damping_new,
        damping_old=1.0 - damping_new,
        deadband_bytes=deadband_bytes,
    )
    governor = BufferGovernor(
        clock, os, server_process, pool,
        database_size_fn=lambda: 10**12,
        config=config,
    )
    sizes = []
    resizes = 0
    for minute in range(MINUTES):
        competitor.set_allocation(seedless_noise[minute])
        _generate_misses(pool, volume)
        before = pool.size_bytes()
        governor.poll_once()
        if pool.size_bytes() != before:
            resizes += 1
        sizes.append(pool.size_bytes() / MiB)
        clock.advance(1 * MINUTE)
    # Step activity: total absolute change, in MiB.
    travel = sum(abs(b - a) for a, b in zip(sizes, sizes[1:]))
    return sizes, travel, resizes


def _generate_misses(pool, volume, n=10):
    dbfile = volume.create_file("churn-%d" % volume.disk.reads)
    pages = []
    for i in range(n):
        frame = pool.new_page(dbfile, PageKind.TABLE, payload=i)
        pages.append(frame.page_no)
        pool.unpin(frame)
    pool.flush_all()
    pool.discard(dbfile)
    for page in pages:
        frame = pool.fetch(dbfile, page)
        pool.unpin(frame)


def noise_schedule():
    """A jittery competitor: base load plus a +/- oscillation."""
    schedule = []
    for minute in range(MINUTES):
        base = 40 * MiB
        jitter = (12 * MiB) if minute % 2 else (-12 * MiB)
        schedule.append(max(0, base + jitter))
    return schedule


def run_experiment():
    noise = noise_schedule()
    rows = []
    for label, damping, deadband in (
        ("paper: damped + deadband", 0.9, 64 * KiB),
        ("no damping", 1.0, 64 * KiB),
        ("no damping, no deadband", 1.0, 1),
    ):
        sizes, travel, resizes = run_controller(damping, deadband, noise)
        rows.append((
            label, resizes, travel,
            min(sizes), max(sizes), sizes[-1],
        ))
    return rows


def test_e15_damping_ablation(once):
    rows = once(run_experiment)
    print_table(
        "E15: damping/deadband ablation under oscillating memory pressure "
        "(%d minutes)" % MINUTES,
        ["controller", "resizes", "total travel MiB", "min MiB", "max MiB",
         "final MiB"],
        rows,
    )
    damped, undamped, raw = rows
    # The damped controller moves the pool less for the same scenario
    # ("avoid undesirable fluctuations").
    assert damped[2] < undamped[2]
    assert damped[2] < raw[2]
    # And performs no more resize operations.
    assert damped[1] <= raw[1]
    # All three end in the same neighbourhood (the ablation changes
    # smoothness, not the fixed point).
    finals = [row[5] for row in rows]
    assert max(finals) - min(finals) < 30
