"""E16: cost-model rank fidelity (Section 4.2, eq. 3).

"The primary objective for the cost model is to ensure that for any query
plans P1 and P2, CostE(P1) > CostE(P2) iff CostA(P1) > CostA(P2)."

The bench constructs genuine plan *pairs* — sequential scan vs index scan
at varying selectivities, hash join vs index-nested-loops at varying build
sizes — takes the optimizer's estimate for each, executes both on the
simulated device, and scores how often the estimated ordering matches the
measured ordering.
"""

from repro.exec import ExecutionContext, Executor
from repro.optimizer.enumeration import JoinEnumerator, OptimizerGovernor
from repro.optimizer.plans import IndexScanPlan, SeqScanPlan
from repro.sql import Binder, parse_statement

from conftest import make_server, print_table

N_ROWS = 30_000


def setup(server):
    conn = server.connect()
    conn.execute(
        "CREATE TABLE kv (k INT PRIMARY KEY, v INT, pad VARCHAR(40))"
    )
    server.load_table(
        "kv", [(i, i % 100, "pad-%08d" % i) for i in range(N_ROWS)]
    )
    return conn


def cold_reset(server):
    """Flush and empty the pool: estimation and execution both start
    from a cold cache, so eq. (3) is tested under matched conditions."""
    server.pool.flush_all()
    original = server.pool.capacity_pages
    server.pool.set_capacity(1)
    server.pool.set_capacity(original)


def execute_plan(server, plan, block, binder):
    """Execute a hand-built plan and return simulated microseconds."""
    from repro.optimizer import OptimizerResult

    optimizer = server.make_optimizer()
    cold_reset(server)
    task = server.memory_governor.begin_task()
    ctx = ExecutionContext(
        server.pool, server.temp_file, server.stats, server.clock, task,
        feedback_enabled=False,
    )
    executor = Executor(
        plan_block_fn=optimizer.optimize_select,
        bind_recursive_arm_fn=binder.bind_recursive_arm,
    )
    start = server.clock.now
    rows = list(executor.run(OptimizerResult(plan, block), ctx))
    server.memory_governor.end_task(task)
    return server.clock.now - start, len(rows)


def scan_pairs(server):
    """Seq scan vs index scan at several selectivities."""
    pairs = []
    for width_percent in (1, 5, 20, 60, 95):
        width = N_ROWS * width_percent // 100
        sql = (
            "SELECT k FROM kv WHERE k BETWEEN 0 AND %d" % (width - 1,)
        )
        cold_reset(server)
        binder = Binder(server.catalog)
        block = binder.bind(parse_statement(sql))
        optimizer = server.make_optimizer()
        quantifier = block.quantifiers[0]
        info = optimizer._quantifier_info(quantifier, block)
        # Plan A: sequential scan with the filter.
        plan_a = optimizer._finish_plan(
            _with_estimates(
                SeqScanPlan(quantifier, info.local_conjuncts),
                info.filtered_rows, info.seq_scan_cost,
            ),
            block,
        )
        estimate_a = info.seq_scan_cost
        # Plan B: the sargable index scan (always exists: pk on k).
        index_schema, sarg, cost_b, rows_b = info.index_access_options[0]
        plan_b = optimizer._finish_plan(
            _with_estimates(
                IndexScanPlan(quantifier, index_schema, sarg, []),
                rows_b, cost_b,
            ),
            block,
        )
        pairs.append((
            "scan: %2d%% range" % width_percent,
            ("seq scan", estimate_a, plan_a),
            ("index scan", cost_b, plan_b),
            block, binder,
        ))
    return pairs


def join_pairs(server):
    """Hash join vs index-NL join at several build-side sizes."""
    conn = server.connect()
    conn.execute(
        "CREATE TABLE customer2 (id INT PRIMARY KEY, region VARCHAR(10))"
    )
    conn.execute("CREATE TABLE orders2 (id INT, cust_id INT, bucket INT)")
    server.load_table(
        "customer2", [(i, "r%d" % (i % 5)) for i in range(8000)]
    )
    server.load_table(
        "orders2", [(i, i % 8000, i % 100) for i in range(20000)]
    )
    pairs = []
    for buckets in (1, 10, 60):
        sql = (
            "SELECT COUNT(*) FROM customer2 c, orders2 o "
            "WHERE o.cust_id = c.id AND o.bucket < %d" % (buckets,)
        )
        cold_reset(server)
        binder = Binder(server.catalog)
        block = binder.bind(parse_statement(sql))
        optimizer = server.make_optimizer()
        info = {
            q.id: optimizer._quantifier_info(q, block)
            for q in block.quantifiers
        }
        enumerator = JoinEnumerator(
            block, optimizer.cost_model, optimizer.estimator,
            server.catalog, OptimizerGovernor(10**9), info,
        )
        orders_q = next(q for q in block.quantifiers if q.alias == "o")
        level1 = [
            step for step in enumerator._steps_for(orders_q, frozenset(), [], 1.0)
            if step.access == "seq"
        ][0]
        customer_q = next(q for q in block.quantifiers if q.alias == "c")
        second_steps = enumerator._steps_for(
            customer_q, frozenset({orders_q.id}), [level1], level1.out_rows
        )
        by_method = {step.join_method: step for step in second_steps}
        variants = {}
        for method in ("hash", "inlj"):
            step = by_method[method]
            join_plan = optimizer._build_join_tree([level1, step], block, info)
            for node in join_plan.walk():
                if hasattr(node, "alternate"):
                    node.alternate = None  # pure strategies, no switching
            variants[method] = (
                level1.step_cost + step.step_cost,
                optimizer._finish_plan(join_plan, block),
            )
        pairs.append((
            "join: bucket<%d" % buckets,
            ("hash join",) + variants["hash"],
            ("index NLJ",) + variants["inlj"],
            block, binder,
        ))
    return pairs


def _with_estimates(plan, rows, cost):
    plan.est_rows = rows
    plan.est_cost_us = cost
    return plan


def run_experiment():
    server = make_server(pool_pages=512)  # small pool: I/O matters
    setup(server)
    rows = []
    agreements = 0
    total = 0
    for label, (name_a, est_a, plan_a), (name_b, est_b, plan_b), block, binder in (
        scan_pairs(server) + join_pairs(server)
    ):
        actual_a, count_a = execute_plan(server, plan_a, block, binder)
        actual_b, count_b = execute_plan(server, plan_b, block, binder)
        assert count_a == count_b  # both plans answer identically
        estimated_winner = name_a if est_a < est_b else name_b
        actual_winner = name_a if actual_a < actual_b else name_b
        agree = estimated_winner == actual_winner
        agreements += agree
        total += 1
        rows.append((
            label,
            est_a / 1000.0, actual_a / 1000.0,
            est_b / 1000.0, actual_b / 1000.0,
            estimated_winner, actual_winner, "yes" if agree else "NO",
        ))
    return rows, agreements, total


def test_e16_rank_fidelity(once):
    rows, agreements, total = once(run_experiment)
    print_table(
        "E16: estimated vs measured plan ordering (eq. 3)",
        ["pair", "est A (ms)", "act A (ms)", "est B (ms)", "act B (ms)",
         "est winner", "act winner", "agree"],
        rows,
    )
    print("rank agreement: %d/%d" % (agreements, total))
    # The paper's bar: the *ordering* is preserved; absolute values need
    # not match.  Require full agreement on these clear-cut pairs.
    assert agreements >= total - 1
    assert agreements / total >= 0.85
