"""E17 (extension): REORGANIZE TABLE and adaptive MPL — the paper's
Section 6 research agenda, implemented and measured.

* "automatic reclustering and/or reorganization of tables and indexes":
  a fragmented table is rebuilt in index order; the index's clustering
  statistic and the clustered-query time before/after are reported;
* "dynamically changing the server's multiprogramming level in response
  to database workload": a memory-hungry workload drives the adaptive
  governor, whose level (and hence per-statement soft limit) converges.
"""

import random

from conftest import make_server, print_table


def run_reorganize_experiment():
    server = make_server(pool_pages=512)
    conn = server.connect()
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT, v DOUBLE)")
    # 2000 groups of 10 rows: after shuffling, each group's rows
    # scatter across the whole table (~1 row per 20 pages).
    rows = [(i, i % 2000, float(i)) for i in range(20000)]
    random.Random(4).shuffle(rows)  # physically fragmented
    server.load_table("t", rows)
    conn.execute("CREATE INDEX t_grp ON t (grp)")
    sql = "SELECT SUM(v) FROM t WHERE grp = 7"

    def timed_cold():
        server.pool.set_capacity(1)
        server.pool.set_capacity(512)
        start = server.clock.now
        conn.execute(sql)
        return (server.clock.now - start) / 1000.0

    index = server.catalog.index("t_grp")
    clustering_before = index.btree.clustering_fraction()
    time_before = timed_cold()
    conn.execute("REORGANIZE TABLE t ON t_grp")
    index = server.catalog.index("t_grp")
    clustering_after = index.btree.clustering_fraction()
    time_after = timed_cold()
    return [
        ("before reorganize", clustering_before, time_before),
        ("after reorganize", clustering_after, time_after),
    ]


def run_adaptive_mpl_experiment():
    from repro.buffer import BufferPool
    from repro.common import SimClock
    from repro.exec import MemoryGovernor
    from repro.storage import FlashDisk, Volume

    volume = Volume(FlashDisk(SimClock(), 100_000))
    pool = BufferPool(volume.create_file("temp"), capacity_pages=1024)
    governor = MemoryGovernor(pool, 8192, multiprogramming_level=16,
                              adaptive=True)
    series = []
    # Phase 1: memory-hungry statements constantly hit the soft limit.
    for window in range(3):
        for __ in range(governor.ADAPT_WINDOW):
            task = governor.begin_task()
            task.soft_limit_hits = 2
            governor.end_task(task)
        series.append((
            "hungry window %d" % (window + 1),
            governor.multiprogramming_level,
            governor.soft_limit_pages(),
        ))
    # Phase 2: light statements at high concurrency.
    for window in range(3):
        for __ in range(governor.ADAPT_WINDOW // 4):
            tasks = [governor.begin_task() for __c in range(8)]
            for task in tasks:
                governor.end_task(task)
        series.append((
            "light window %d" % (window + 1),
            governor.multiprogramming_level,
            governor.soft_limit_pages(),
        ))
    return series


def test_e17a_reorganize(once):
    rows = once(run_reorganize_experiment)
    print_table(
        "E17a (extension): REORGANIZE TABLE on a fragmented table",
        ["state", "clustering fraction", "clustered query ms (cold)"],
        rows,
    )
    before, after = rows
    assert after[1] > 0.9 > before[1]
    assert after[2] < before[2] * 0.5  # at least 2x faster


def test_e17b_adaptive_mpl(once):
    rows = once(run_adaptive_mpl_experiment)
    print_table(
        "E17b (extension): adaptive multiprogramming level",
        ["workload window", "MPL", "soft limit (pages)"],
        rows,
    )
    levels = [row[1] for row in rows]
    # Contention drives the level down (more memory per statement) ...
    assert levels[2] < 16
    # ... and light, highly concurrent work drives it back up.
    assert levels[-1] > levels[2]
