"""E18: the self-tuning checkpoint governor vs a fixed-interval baseline.

The paper's thesis applied to durability: a governor that prices its own
recovery debt (via the DTT cost model) and spends checkpoint I/O only
when the estimated restart time approaches the administrator's target —
or when the server is idle and the I/O is free — should hold recovery
time under the target with *fewer* checkpoint page writes than a
fixed-interval checkpointer facing the same bursty workload.

Both modes run the identical burst/idle schedule on a full server with
the checkpoint governor on the simulated clock; the only difference is
``CheckpointConfig.adaptive``.
"""

from repro.common import SECOND
from repro.recovery import CheckpointConfig

from conftest import make_server, print_table

#: Administrator's restart-time budget: above one cycle's recovery debt
#: (so a busy adaptive governor can afford to hold) but low enough that
#: sustained growth without checkpoints would breach it.
RECOVERY_TARGET_US = 10 * SECOND

CYCLES = 8
BURST_ROWS = 30
BUSY_ADVANCE_US = 2 * SECOND
IDLE_ADVANCE_US = 6 * SECOND


def run_mode(adaptive):
    server = make_server(
        start_checkpoint_governor=True,
        checkpoint=CheckpointConfig(
            adaptive=adaptive,
            recovery_time_target_us=RECOVERY_TARGET_US,
            min_poll_interval_us=1 * SECOND,
            max_poll_interval_us=5 * SECOND,
        ),
    )
    conn = server.connect()
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    next_id = 0
    estimates = []

    def sample():
        # The governor publishes its post-action estimate at every poll:
        # the recovery debt it *left outstanding* after deciding.
        estimates.append(server.metrics.value("ckpt.est_recovery_us"))
    for cycle in range(CYCLES):
        # Busy stretch: two insert bursts with the clock moving.
        for __ in range(2):
            for __ in range(BURST_ROWS):
                conn.execute(
                    "INSERT INTO t VALUES (?, ?)",
                    params=[next_id, next_id * 7],
                )
                next_id += 1
            server.clock.advance(BUSY_ADVANCE_US)
            sample()
        # Idle gap: no statements, the clock just runs.
        server.clock.advance(IDLE_ADVANCE_US)
        sample()
    conn.close()
    return {
        "mode": "adaptive" if adaptive else "fixed-interval",
        "checkpoints": server.metrics.value("ckpt.checkpoints"),
        "pages_flushed": server.metrics.value("ckpt.pages_flushed"),
        "polls": server.metrics.value("ckpt.polls"),
        "idle_ckpts": server.metrics.value("ckpt.action.ckpt-idle"),
        "max_estimate_us": max(estimates),
        "rows": next_id,
    }


def run_experiment():
    # Fixed first, adaptive last: the autouse conftest fixture snapshots
    # the *last* server's metrics into the benchmark JSON.
    fixed = run_mode(adaptive=False)
    adaptive = run_mode(adaptive=True)
    return fixed, adaptive


def test_e18_checkpoint_governor(once):
    fixed, adaptive = once(run_experiment)
    headers = [
        "mode", "checkpoints", "pages flushed", "polls", "idle ckpts",
        "max est us", "rows",
    ]
    print_table(
        "E18: checkpoint governor vs fixed interval "
        "(target %d us, %d burst/idle cycles)"
        % (RECOVERY_TARGET_US, CYCLES),
        headers,
        [
            [fixed[k] for k in (
                "mode", "checkpoints", "pages_flushed", "polls",
                "idle_ckpts", "max_estimate_us", "rows",
            )],
            [adaptive[k] for k in (
                "mode", "checkpoints", "pages_flushed", "polls",
                "idle_ckpts", "max_estimate_us", "rows",
            )],
        ],
    )
    # Identical workloads.
    assert adaptive["rows"] == fixed["rows"]
    # The governor holds estimated recovery time under the target at
    # every poll boundary...
    assert adaptive["max_estimate_us"] <= RECOVERY_TARGET_US
    # ...while spending strictly less checkpoint I/O than the baseline.
    assert adaptive["pages_flushed"] < fixed["pages_flushed"]
    assert adaptive["checkpoints"] < fixed["checkpoints"]
    # Idle gaps are exploited: some checkpoints were taken for free.
    assert adaptive["idle_ckpts"] >= 1
