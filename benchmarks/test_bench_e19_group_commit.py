"""E19: adaptive group commit vs force-per-commit across MPL levels.

The claim under test: with concurrent sessions committing through the
:class:`~repro.storage.log.GroupCommitCoordinator`, commits arriving
within one adaptive flush window share a single log force, so the forces
issued per committed transaction drop (≥2× at MPL ≥ 4) and commit
throughput rises — while a single session (MPL 1) degenerates to the
classic force-per-commit sequence with no latency tax.

Both modes run the identical seeded multi-session insert workload under
the deterministic :class:`~repro.engine.scheduler.WorkloadScheduler`;
the only difference is ``GroupCommitConfig.enabled``.
"""

from repro.engine import WorkloadScheduler
from repro.storage.log import GroupCommitConfig

from conftest import make_server, print_table

MPL_LEVELS = (1, 4, 16)
STATEMENTS_PER_SESSION = 24
SEED = 19


def run_mode(mpl, grouped):
    server = make_server(
        mpl=mpl, group_commit=GroupCommitConfig(enabled=grouped)
    )
    connection = server.connect()
    connection.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    scheduler = WorkloadScheduler(server, seed=SEED)
    for k in range(mpl):
        scheduler.add_session(
            "s%d" % k,
            [
                "INSERT INTO t VALUES (%d, %d)"
                % (1000 * k + i, (k + i) % 13)
                for i in range(STATEMENTS_PER_SESSION)
            ],
        )
    forces_before = server.metrics.value("wal.forces")
    committed_before = server.group_commit.committed
    started_us = server.clock.now
    scheduler.run()
    elapsed_us = server.clock.now - started_us
    forces = server.metrics.value("wal.forces") - forces_before
    committed = server.group_commit.committed - committed_before
    snap = server.metrics.snapshot()
    return {
        "mpl": mpl,
        "mode": "grouped" if grouped else "force-per-commit",
        "forces": forces,
        "committed": committed,
        "forces_per_commit": forces / max(1, committed),
        "elapsed_us": elapsed_us,
        "commits_per_sec": committed / (elapsed_us / 1e6),
        "max_batch": snap["wal.group_commit.batch_size"]["max"],
        "mean_latency_us": (
            snap["txn.commit_latency_us"]["sum"]
            / max(1, snap["txn.commit_latency_us"]["count"])
        ),
    }


def run_experiment():
    results = []
    for mpl in MPL_LEVELS:
        results.append(run_mode(mpl, grouped=False))
        results.append(run_mode(mpl, grouped=True))
    return results


def test_e19_group_commit(once):
    results = once(run_experiment)
    keys = [
        "mpl", "mode", "forces", "committed", "forces_per_commit",
        "elapsed_us", "commits_per_sec", "max_batch", "mean_latency_us",
    ]
    print_table(
        "E19: group commit vs force-per-commit "
        "(%d statements/session, seed %d)"
        % (STATEMENTS_PER_SESSION, SEED),
        ["mpl", "mode", "forces", "commits", "forces/commit",
         "elapsed us", "commits/s", "max batch", "mean latency us"],
        [[r[k] for k in keys] for r in results],
    )
    by_mode = {(r["mpl"], r["mode"]): r for r in results}
    for mpl in MPL_LEVELS:
        baseline = by_mode[(mpl, "force-per-commit")]
        grouped = by_mode[(mpl, "grouped")]
        # Both modes commit every statement exactly once.
        assert baseline["committed"] == mpl * STATEMENTS_PER_SESSION
        assert grouped["committed"] == mpl * STATEMENTS_PER_SESSION
        assert baseline["forces_per_commit"] >= 1.0
        if mpl == 1:
            # A lone session cannot wait for companions: group commit
            # degenerates to force-per-commit, no latency tax.
            assert grouped["forces_per_commit"] == (
                baseline["forces_per_commit"]
            )
        else:
            # The headline claim: ≥2× fewer forces per committed txn.
            assert grouped["forces_per_commit"] <= (
                baseline["forces_per_commit"] / 2
            )
            assert grouped["max_batch"] >= 2
            assert grouped["commits_per_sec"] > baseline["commits_per_sec"]
