"""E20: blocking locks + snapshot reads vs fail-fast aborts under
contention.

The claim under test: with a hot-row transfer workload (every writer
transaction moves 10 units between the same two rows) plus read-mostly
fan-out readers, the blocking lock manager with snapshot reads keeps the
system correct and steady as writer MPL rises — zero aborted
transactions, zero torn sums, flat reader latency — while the fail-fast
baseline (``blocking_locks=False``, ``snapshot_reads=False``, the seed
behavior this PR deposes) collapses: conflicting transactions abort
instead of waiting, committed goodput per issued transfer drops, and
readers observe mid-transaction states (sum != invariant).

Both modes run the identical seeded workload under the deterministic
:class:`~repro.engine.scheduler.WorkloadScheduler`; only the two config
flags differ.
"""

from repro.engine import WorkloadScheduler
from repro.engine.locks import LockConflictError
from repro.engine.scheduler import YIELD_STATEMENT

from conftest import make_server, print_table

WRITER_MPLS = (1, 4, 12)
TRANSFERS_PER_WRITER = 5
READER_SESSIONS = 2
READS_PER_READER = 8
FANOUT_ROWS = 400
INVARIANT = 200  # rows 0 and 1 start at 100 each; fan-out rows at 0
SEED = 20


def writer_source(holder, stats):
    """One session: TRANSFERS_PER_WRITER explicit transfer transactions.

    The baton is offered between the two updates — the interleaving
    window where fail-fast mode tears the invariant and blocking mode
    parks contenders.  Lock conflicts are absorbed here (counted, rolled
    back) so the fail-fast baseline degrades instead of aborting whole
    sessions.
    """
    def run_transfers(conn):
        scheduler = holder[0]
        for __ in range(TRANSFERS_PER_WRITER):
            conn.execute("BEGIN")
            try:
                conn.execute("UPDATE t SET v = v - 10 WHERE id = 0")
                scheduler.yield_point(YIELD_STATEMENT, always=True)
                conn.execute("UPDATE t SET v = v + 10 WHERE id = 1")
                conn.execute("COMMIT")
                stats["committed"] += 1
            except LockConflictError:
                if conn._txn_id is not None:
                    conn.rollback()
                stats["aborted"] += 1
            scheduler.yield_point(YIELD_STATEMENT, always=True)
    run_transfers.__name__ = "transfers"
    return [run_transfers]


def reader_source(holder, stats):
    """One session: read-mostly fan-out scans checking the invariant."""
    def run_reads(conn):
        scheduler = holder[0]
        clock = conn.server.clock
        for __ in range(READS_PER_READER):
            started = clock.now
            total = conn.execute("SELECT sum(v) FROM t").rows[0][0]
            stats["read_us"].append(clock.now - started)
            if total != INVARIANT:
                stats["anomalies"] += 1
            scheduler.yield_point(YIELD_STATEMENT, always=True)
    run_reads.__name__ = "fanout-reads"
    return [run_reads]


def run_mode(writer_mpl, safe):
    server = make_server(
        mpl=writer_mpl + READER_SESSIONS,
        blocking_locks=safe, snapshot_reads=safe,
    )
    connection = server.connect()
    connection.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    server.load_table(
        "t",
        [(0, 100), (1, 100)]
        + [(i, 0) for i in range(2, 2 + FANOUT_ROWS)],
    )
    scheduler = WorkloadScheduler(server, seed=SEED, switch_rate=0.6)
    holder = [scheduler]
    stats = {"committed": 0, "aborted": 0, "anomalies": 0, "read_us": []}
    for k in range(writer_mpl):
        scheduler.add_session("w%d" % k, writer_source(holder, stats))
    for k in range(READER_SESSIONS):
        scheduler.add_session("r%d" % k, reader_source(holder, stats))
    scheduler.run()
    issued = writer_mpl * TRANSFERS_PER_WRITER
    reads = stats["read_us"]
    return {
        "writer_mpl": writer_mpl,
        "mode": "blocking+snapshot" if safe else "fail-fast",
        "issued": issued,
        "committed": stats["committed"],
        "aborted": stats["aborted"],
        "goodput_pct": 100.0 * stats["committed"] / issued,
        "anomalies": stats["anomalies"],
        "reads": len(reads),
        "read_mean_us": sum(reads) / max(1, len(reads)),
        "lock_waits": server.lock_manager.waits,
        "deadlocks": server.lock_manager.deadlocks,
    }


def run_experiment():
    results = []
    for writer_mpl in WRITER_MPLS:
        results.append(run_mode(writer_mpl, safe=False))
        results.append(run_mode(writer_mpl, safe=True))
    return results


def test_e20_lock_contention(once):
    results = once(run_experiment)
    keys = [
        "writer_mpl", "mode", "issued", "committed", "aborted",
        "goodput_pct", "anomalies", "reads", "read_mean_us",
        "lock_waits", "deadlocks",
    ]
    print_table(
        "E20: hot-row transfers + fan-out readers "
        "(%d transfers/writer, %d readers, seed %d)"
        % (TRANSFERS_PER_WRITER, READER_SESSIONS, SEED),
        ["writers", "mode", "issued", "committed", "aborted", "goodput %",
         "torn sums", "reads", "read mean us", "lock waits", "deadlocks"],
        [[r[k] for k in keys] for r in results],
    )
    by_mode = {(r["writer_mpl"], r["mode"]): r for r in results}
    safe_latencies = []
    for writer_mpl in WRITER_MPLS:
        safe = by_mode[(writer_mpl, "blocking+snapshot")]
        # The PR's contract: contention means waiting, never losing work
        # or exposing torn states.
        assert safe["committed"] == safe["issued"]
        assert safe["aborted"] == 0
        assert safe["anomalies"] == 0
        assert safe["reads"] == READER_SESSIONS * READS_PER_READER
        if writer_mpl > 1:
            assert safe["lock_waits"] > 0
        safe_latencies.append(safe["read_mean_us"])

    # Snapshot readers stay flat as writer MPL rises: they never queue
    # behind writers, so their per-statement simulated cost is their own.
    assert max(safe_latencies) <= 1.5 * min(safe_latencies)

    baseline_low = by_mode[(WRITER_MPLS[0], "fail-fast")]
    baseline_mid = by_mode[(WRITER_MPLS[1], "fail-fast")]
    baseline_high = by_mode[(WRITER_MPLS[-1], "fail-fast")]
    # A lone fail-fast writer is fine...
    assert baseline_low["aborted"] == 0
    # ...but contention turns into lost transactions, worsening with
    # MPL, and readers start seeing mid-transaction sums.
    assert baseline_mid["aborted"] > 0
    assert baseline_high["aborted"] > baseline_mid["aborted"]
    assert baseline_high["goodput_pct"] < baseline_mid["goodput_pct"]
    assert baseline_high["goodput_pct"] < 70.0
    assert baseline_high["anomalies"] > 0
    # The safe mode beats the baseline's goodput at every contended MPL.
    for writer_mpl in WRITER_MPLS[1:]:
        assert (
            by_mode[(writer_mpl, "blocking+snapshot")]["goodput_pct"]
            > by_mode[(writer_mpl, "fail-fast")]["goodput_pct"]
        )
