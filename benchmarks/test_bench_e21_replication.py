"""E21: log-shipping replication — failover time and lag vs apply rate.

The claims under test: (1) **latency delays visibility, never
durability** — the synchronous ack gate waits only on durable receipt,
so widening the link latency band grows the replica's received-vs-applied
lag without losing a single acknowledged commit; (2) the replica's apply
rate is a property of the record stream, not the link, so the same
workload drains at a comparable rate whatever the band; (3) failover
time is what stands between the controller and a readable replica —
draining in-flight arrivals (grows with the latency band) and waiting
out a partition (grows by exactly the forced stall).
"""

from repro.engine.server import ServerConfig
from repro.faults.plan import FaultPlan, FaultRates
from repro.replication import ReplicatedCluster, ReplicationConfig

from conftest import _SERVERS, print_table

SEED = 21
N_STATEMENTS = 24
TABLE_ROWS = 200
#: Simulated link latency bands, microseconds.
LATENCY_BANDS = ((50, 400), (5_000, 20_000), (40_000, 80_000))
PARTITION_STALL_US = 50_000


def build_cluster(low_us, high_us):
    config = ServerConfig(
        replication=ReplicationConfig(n_replicas=2),
        fault_plan=FaultPlan(SEED, rates=FaultRates(
            net_send_drop=0.05,
            net_latency_min_us=low_us,
            net_latency_max_us=high_us,
        )),
        start_buffer_governor=False,
        start_checkpoint_governor=False,
    )
    cluster = ReplicatedCluster(config)
    # The cluster builds its primary itself; register it so the autouse
    # fixture exports its metrics snapshot into the benchmark JSON.
    _SERVERS.append(cluster.primary)
    cluster.execute_schema(["CREATE TABLE t (id INT PRIMARY KEY, v INT)"])
    cluster.load_table("t", [(i, i % 13) for i in range(TABLE_ROWS)])
    return cluster


def run_band(low_us, high_us, partition_at_failover=False):
    cluster = build_cluster(low_us, high_us)
    conn = cluster.connect()
    for i in range(N_STATEMENTS):
        conn.execute(
            "INSERT INTO t VALUES (%d, %d)" % (10_000 + i, i % 13)
        )
        # Continuous redo, as the scheduler's apply actors would run it:
        # each replica applies whatever has *arrived* by now.
        for replica in cluster.replicas:
            replica.apply_pending()
    # Every statement acked: its frames are durably mirrored.  What the
    # latency band governs is how far *apply* trails durable receipt.
    replica = max(cluster.replicas, key=lambda r: r.received_lsn)
    lag_lsn = replica.lag_lsn()
    lag_arrival_us = (
        max(0, replica.next_arrival_us() - cluster.clock.now)
        if replica.inbox else 0
    )
    if partition_at_failover:
        for link in cluster.network.links:
            link.partition(PARTITION_STALL_US)
    drain_started = cluster.clock.now
    promoted = cluster.fail_over()
    rows = _rows(promoted)
    elapsed_s = max(1, cluster.clock.now - drain_started) / 1e6
    return {
        "band_us": "%d..%d" % (low_us, high_us),
        "partitioned": partition_at_failover,
        "frames": len(cluster.publisher.frames),
        "lag_lsn": lag_lsn,
        "lag_arrival_us": lag_arrival_us,
        "apply_rate_rps": int(promoted.records_applied / elapsed_s),
        "failover_us": cluster.controller.failover_us,
        "promoted": promoted.name,
        "rows_recovered": len(rows),
    }


def _rows(promoted):
    conn = promoted.server.connect()
    try:
        return conn.execute("SELECT id, v FROM t").rows
    finally:
        conn.close()


def run_experiment():
    results = []
    for low_us, high_us in LATENCY_BANDS:
        results.append(run_band(low_us, high_us))
    results.append(run_band(*LATENCY_BANDS[0], partition_at_failover=True))
    return results


def test_e21_replication_failover(once):
    results = once(run_experiment)
    keys = [
        "band_us", "partitioned", "frames", "lag_lsn", "lag_arrival_us",
        "apply_rate_rps", "failover_us", "promoted", "rows_recovered",
    ]
    print_table(
        "E21: log shipping over %d statements, 2 replicas, seed %d"
        % (N_STATEMENTS, SEED),
        ["latency band us", "partitioned", "frames", "lag lsn",
         "lag arrival us", "apply rate rec/s", "failover us", "promoted",
         "rows"],
        [[r[k] for k in keys] for r in results],
    )
    clean = results[: len(LATENCY_BANDS)]
    partitioned = results[-1]
    # Zero acknowledged loss at every band: all N_STATEMENTS inserts
    # acked, so the promoted node must hold every one of them.
    for r in results:
        assert r["rows_recovered"] == TABLE_ROWS + N_STATEMENTS
    # Latency delays visibility, never durability: the widest band shows
    # real received-but-unapplied lag at workload completion, the
    # narrowest effectively none.
    assert clean[-1]["lag_lsn"] > clean[0]["lag_lsn"]
    assert clean[-1]["lag_arrival_us"] > 0
    # A partition during failover costs exactly its heal wait on top of
    # the same band's clean failover.
    assert (
        partitioned["failover_us"]
        >= clean[0]["failover_us"] + PARTITION_STALL_US * 0.9
    )
    for r in results:
        assert r["failover_us"] >= 0
        assert r["apply_rate_rps"] > 0
