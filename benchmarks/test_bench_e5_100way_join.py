"""E5: the 100-way join anecdote (Section 4.1).

"a 100-way join query against a small TPC-H database can be optimized and
executed by SQL Anywhere on a Dell Axim device ... with as little as 3 MB
of buffer pool, with only 1 MB needed for optimization."

The depth-first branch-and-bound enumerator keeps its state on the stack,
so optimizer memory stays tiny even at 100 quantifiers.  This bench
optimizes and executes chain joins of growing width under a 3 MB buffer
pool and reports the optimizer's accounted memory.
"""

from repro.common import MiB
from repro.workloads import chain_join_sql, load_chain_schema

from conftest import make_server, print_table

WIDTHS = [10, 25, 50, 100]


def run_experiment():
    rows = []
    for width in WIDTHS:
        server = make_server(pool_pages=(3 * MiB) // 4096)  # 3 MB pool
        conn = load_chain_schema(server, n_tables=width, rows_per_table=4)
        sql = chain_join_sql(width)
        start = server.clock.now
        result = conn.execute(sql)
        elapsed_us = server.clock.now - start
        stats = result.plan_result.stats
        rows.append((
            width,
            stats.nodes_visited,
            stats.max_depth,
            stats.peak_memory_bytes / 1024.0,
            elapsed_us / 1000.0,
            result.rows[0][0],
        ))
    return rows


def test_e5_100way_join(once):
    rows = once(run_experiment)
    print_table(
        "E5: N-way chain join with a 3 MB buffer pool",
        ["tables", "nodes visited", "search depth", "optimizer KiB",
         "exec ms (sim)", "result"],
        rows,
    )
    widths = {row[0]: row for row in rows}
    # The 100-way join optimizes and executes correctly.
    assert widths[100][5] == 4
    # Optimizer memory stays far below the paper's 1 MB budget.
    for row in rows:
        assert row[3] < 1024.0  # < 1 MiB
    # Memory grows roughly linearly with join width (stack-resident DFS),
    # not combinatorially.
    assert widths[100][3] < widths[10][3] * 30
