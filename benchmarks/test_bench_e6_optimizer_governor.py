"""E6: branch-and-bound enumeration and the optimizer governor
(Section 4.1).

Reproduced claims:

* pruning: the searched node count is a vanishing fraction of the full
  left-deep space;
* Cartesian-product deferral: the *first* complete strategy is already
  "reasonable" relative to the final best;
* the governor's uneven quota distribution finds plans at least as good
  as plain early-halting (FIFO quota) at the same budget;
* unused quota returns on prunes, and redistribution events fire when a
  new plan improves the incumbent by >= 20%.
"""

import math

from repro.optimizer import Optimizer
from repro.sql import Binder, parse_statement

from conftest import make_server, print_table

#: Mixed table sizes plus a join cycle make order genuinely matter.
TABLE_SIZES = [4000, 12, 1500, 60, 900, 25, 2500, 120]


def build_schema(server):
    conn = server.connect()
    for index, size in enumerate(TABLE_SIZES):
        conn.execute(
            "CREATE TABLE t%d (id INT PRIMARY KEY, next_id INT, v INT)"
            % index
        )
        server.load_table(
            "t%d" % index,
            [
                (row, row % max(1, TABLE_SIZES[min(index + 1,
                                                   len(TABLE_SIZES) - 1)]),
                 row % 10)
                for row in range(size)
            ],
        )
    tables = ", ".join("t%d" % i for i in range(len(TABLE_SIZES)))
    chain = " AND ".join(
        "t%d.next_id = t%d.id" % (i, i + 1)
        for i in range(len(TABLE_SIZES) - 1)
    )
    # A cycle edge and two filters roughen the search space.
    extras = " AND t0.v = t4.v AND t2.v < 7 AND t6.v = 3"
    return conn, "SELECT COUNT(*) FROM %s WHERE %s%s" % (tables, chain, extras)


def optimize_with(server, sql, quota, mode):
    binder = Binder(server.catalog)
    block = binder.bind(parse_statement(sql))
    optimizer = Optimizer(
        server.catalog,
        server._make_estimator(),
        server.make_optimizer().cost_context,
        quota=quota,
        governor_mode=mode,
    )
    result = optimizer.optimize_select(block)
    stats = result.stats
    join_best = stats.best_cost_trace[-1][1] if stats.best_cost_trace else 0.0
    return join_best, stats


def run_experiment():
    server = make_server(pool_pages=4096)
    __, sql = build_schema(server)
    configurations = [
        ("exhaustive", 10**9, "governor"),
        ("governor q=2000", 2000, "governor"),
        ("fifo q=2000", 2000, "fifo"),
        ("governor q=200", 200, "governor"),
        ("fifo q=200", 200, "fifo"),
    ]
    rows = []
    for label, quota, mode in configurations:
        cost, stats = optimize_with(server, sql, quota, mode)
        rows.append((
            label,
            stats.nodes_visited,
            stats.plans_completed,
            stats.prunes,
            stats.improvements,
            stats.first_plan_cost / 1000.0,
            cost / 1000.0,
        ))
    return rows


def test_e6_optimizer_governor(once):
    rows = once(run_experiment)
    print_table(
        "E6: branch-and-bound + governor (8-way join with cycle, mixed sizes)",
        ["search", "nodes", "plans", "prunes", "improv>=20%",
         "first join plan (ms)", "best join plan (ms)"],
        rows,
    )
    by_label = {row[0]: row for row in rows}
    exhaustive = by_label["exhaustive"]
    n = len(TABLE_SIZES)
    # Pruning: the exhaustive run visits a vanishing fraction of the n!
    # left-deep orders (each with several access/join-method variants).
    assert exhaustive[1] < math.factorial(n) / 100
    # Quotas are respected (up to the one-dive floor).
    assert by_label["governor q=200"][1] <= 200 + n
    assert by_label["governor q=2000"][1] <= 2000 + n
    # Cartesian deferral: every search's first complete plan is within a
    # modest factor of the exhaustive best.
    for row in rows:
        assert row[5] <= exhaustive[6] * 50
    # At equal budgets the governor's answer is never worse than plain
    # early halting, and both are near the exhaustive optimum.
    for quota in (200, 2000):
        governor_cost = by_label["governor q=%d" % quota][6]
        fifo_cost = by_label["fifo q=%d" % quota][6]
        assert governor_cost <= fifo_cost * 1.001
        assert governor_cost <= exhaustive[6] * 2.0


def run_improvement_experiment():
    """Disconnected join components: the greedy first dive starts in the
    wrong component, and a later strategy improves the incumbent by more
    than 20% — firing the governor's quota redistribution."""
    server = make_server(pool_pages=4096)
    conn = server.connect()
    conn.execute("CREATE TABLE a1 (id INT PRIMARY KEY, x INT)")
    conn.execute("CREATE TABLE a2 (id INT PRIMARY KEY, x INT)")
    conn.execute("CREATE TABLE b1 (id INT PRIMARY KEY, y INT)")
    conn.execute("CREATE TABLE b2 (id INT PRIMARY KEY, y INT)")
    server.load_table("a1", [(i, i % 10) for i in range(10)])
    server.load_table("a2", [(i, i % 10) for i in range(10000)])
    server.load_table("b1", [(i, i % 50) for i in range(100)])
    server.load_table("b2", [(i, i % 50) for i in range(100)])
    sql = ("SELECT COUNT(*) FROM a1, a2, b1, b2 "
           "WHERE a1.x = a2.x AND b1.y = b2.y")
    cost, stats = optimize_with(server, sql, quota=10**9, mode="governor")
    return [(
        stats.nodes_visited,
        stats.plans_completed,
        stats.improvements,
        stats.first_plan_cost / 1000.0,
        cost / 1000.0,
    )]


def test_e6b_improvement_redistribution(once):
    rows = once(run_improvement_experiment)
    print_table(
        "E6b: >=20% improvement fires quota redistribution "
        "(disconnected join components)",
        ["nodes", "plans", "improv>=20%", "first plan (ms)", "best plan (ms)"],
        rows,
    )
    nodes, plans, improvements, first, best = rows[0]
    assert improvements >= 1          # the redistribution event fired
    assert best <= first * 0.8        # the improvement really was >= 20%
    assert plans >= 2
