"""E7: hash-join adaptivity (Section 4.3).

Two reproduced claims:

1. **Alternate-strategy switch**: the optimizer favours a hash join from
   an (over)estimated build cardinality; at run time the operator counts
   the true build rows and switches to the annotated index-nested-loops
   alternate when that is cheaper — the probe side is then never scanned.
2. **Graceful degradation**: as the memory quota shrinks, the hash join
   evicts its largest partitions to the temporary file and run time
   degrades smoothly instead of falling off a cliff.
"""

from conftest import make_server, print_table


def load_tables(server, n_customers=20000, n_orders=50000, needle=True):
    conn = server.connect()
    conn.execute(
        "CREATE TABLE customer (id INT PRIMARY KEY, region VARCHAR(10))"
    )
    conn.execute("CREATE TABLE orders (id INT, cust_id INT, amount INT)")
    server.load_table(
        "customer", [(i, "region%d" % (i % 5)) for i in range(n_customers)]
    )
    rows = [(i, i % n_customers, i % 3) for i in range(n_orders)]
    if needle:
        rows.append((n_orders + 1, 7, 999))
    server.load_table("orders", rows)
    return conn


JOIN_SQL = (
    "SELECT c.region FROM customer c JOIN orders o "
    "ON o.cust_id = c.id WHERE o.amount = ?"
)


def run_switch_experiment():
    rows = []
    # Adaptive run: the switch is enabled.
    server = make_server(pool_pages=2048)
    conn = load_tables(server)
    start = server.clock.now
    result = conn.execute(JOIN_SQL, params=[999])
    adaptive_us = server.clock.now - start
    switched = result.notes.get("hash_join_switched", 0)
    rows.append(("adaptive (switch enabled)", adaptive_us / 1000.0,
                 switched, len(result)))
    # Control run: same plan, alternate stripped -> full hash join.
    server2 = make_server(pool_pages=2048)
    conn2 = load_tables(server2)
    from repro.sql import Binder, parse_statement

    binder = Binder(server2.catalog)
    block = binder.bind(parse_statement(JOIN_SQL))
    optimizer = server2.make_optimizer()
    plan_result = optimizer.optimize_select(block)
    for node in plan_result.plan.walk():
        if hasattr(node, "alternate"):
            node.alternate = None
    from repro.exec import ExecutionContext, Executor

    task = server2.memory_governor.begin_task()
    ctx = ExecutionContext(
        server2.pool, server2.temp_file, server2.stats, server2.clock, task,
        [999],
    )
    executor = Executor(
        plan_block_fn=optimizer.optimize_select,
        bind_recursive_arm_fn=binder.bind_recursive_arm,
    )
    start = server2.clock.now
    output = list(executor.run(plan_result, ctx))
    server2.memory_governor.end_task(task)
    rows.append(("hash join forced (no switch)",
                 (server2.clock.now - start) / 1000.0, 0, len(output)))
    return rows


def run_degradation_experiment():
    """Join time vs shrinking soft memory limit."""
    rows = []
    for mpl in (1, 4, 16, 32, 64, 256):
        server = make_server(pool_pages=1024, mpl=mpl)
        conn = load_tables(server, n_customers=2000, n_orders=12000,
                           needle=False)
        sql = (
            "SELECT COUNT(*) FROM customer c JOIN orders o "
            "ON o.cust_id = c.id"
        )
        start = server.clock.now
        result = conn.execute(sql)
        elapsed_ms = (server.clock.now - start) / 1000.0
        soft_pages = server.memory_governor.soft_limit_pages()
        rows.append((soft_pages, elapsed_ms, result.rows[0][0]))
    return rows


def test_e7a_alternate_switch(once):
    rows = once(run_switch_experiment)
    print_table(
        "E7a: hash join switches to index-NL after seeing the build input",
        ["strategy", "exec ms (sim)", "switched", "rows"],
        rows,
    )
    adaptive, forced = rows
    assert adaptive[2] == 1          # the switch fired
    assert adaptive[3] == forced[3] == 1  # same answer either way
    # Switching avoids the probe-side scan: clearly faster.
    assert adaptive[1] < forced[1] * 0.7


def test_e7b_graceful_degradation(once):
    rows = once(run_degradation_experiment)
    print_table(
        "E7b: hash join under shrinking memory quota "
        "(largest-partition eviction)",
        ["soft limit (pages)", "exec ms (sim)", "rows"],
        rows,
    )
    times = [row[1] for row in rows]
    # Everybody gets the right answer.
    assert all(row[2] == 12000 for row in rows)
    # Less memory never helps, and the starved run pays for its spills.
    assert times[-1] >= times[0]
    # Degradation, not a cliff: each memory step costs at most ~8x.
    # The step where spilling first engages additionally pays a fixed
    # simulated-I/O toll (writing and re-reading the evicted
    # partitions, ~108 ms here in either execution mode) that the
    # vectorized in-memory join no longer dwarfs, so that step is
    # bounded in absolute time rather than relative to the in-memory
    # run it follows.
    for before, after in zip(times, times[1:]):
        assert after <= max(before * 8, 150.0)
