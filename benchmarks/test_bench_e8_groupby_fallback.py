"""E8: the hash-group-by low-memory fallback (Section 4.3).

"The low-memory fallback for hash group by uses a temporary table
containing partially computed groups with an index on the grouping
columns.  Low-memory fallback strategies are only used in extraordinary
cases."

The bench sweeps the memory quota from ample to starved over a
high-cardinality aggregation: the answer never changes, the fallback only
engages once memory is genuinely short, and cost degrades smoothly into
temp-table traffic rather than failing.
"""

from conftest import make_server, print_table

N_ROWS = 6000
N_GROUPS = 1200


def run_experiment():
    rows = []
    reference = None
    for mpl in (1, 8, 32, 128, 512):
        server = make_server(pool_pages=1024, mpl=mpl)
        conn = server.connect()
        conn.execute("CREATE TABLE t (k INT, v DOUBLE)")
        server.load_table(
            "t", [(i % N_GROUPS, float(i)) for i in range(N_ROWS)]
        )
        sql = "SELECT k, COUNT(*), SUM(v) FROM t GROUP BY k"
        start = server.clock.now
        result = conn.execute(sql)
        elapsed_ms = (server.clock.now - start) / 1000.0
        answer = sorted(result.rows)
        if reference is None:
            reference = answer
        rows.append((
            server.memory_governor.soft_limit_pages(),
            elapsed_ms,
            result.notes.get("group_by_fallback", 0),
            len(result),
            answer == reference,
        ))
    return rows


def test_e8_groupby_fallback(once):
    rows = once(run_experiment)
    print_table(
        "E8: hash group by -> indexed temp-table fallback "
        "(%d rows, %d groups)" % (N_ROWS, N_GROUPS),
        ["soft limit (pages)", "exec ms (sim)", "fallback", "groups",
         "answer matches"],
        rows,
    )
    # Same answer at every memory level.
    assert all(row[4] for row in rows)
    assert all(row[3] == N_GROUPS for row in rows)
    # Ample memory: pure hashing, no fallback ("only used in
    # extraordinary cases").
    assert rows[0][2] == 0
    # Starved memory engages the fallback.
    assert rows[-1][2] >= 1
    # Fallback costs more (temp-table traffic) but completes: smooth
    # degradation, bounded blowup.
    assert rows[-1][1] > rows[0][1]
    assert rows[-1][1] < rows[0][1] * 500
