"""E9: adaptive intra-query parallelism (Section 4.4).

Reproduced claims:

* FCFS work sharing load-balances the probe phase "independent of the
  number of joins in the plan" — imbalance stays near 1.0 even with
  skewed per-row costs;
* the build phase parallelizes the same way (private tables, merge);
* **reducing the worker count to one mid-query costs only slightly more
  than never having parallelized** — the paper's graceful-adaptation
  claim;
* speedup is near-linear for the pipeline's CPU-bound phases.
"""

from repro.exec.parallel import JoinStage, ParallelPipeline

from conftest import make_server, print_table

N_FACTS = 20_000
N_DIM_A = 500
N_DIM_B = 50


def build_pipeline():
    facts = [(i, i % N_DIM_A, i % N_DIM_B) for i in range(N_FACTS)]
    dim_a = [(d, "a%d" % d) for d in range(N_DIM_A)]
    dim_b = [(d, "b%d" % d) for d in range(N_DIM_B)]
    join_a = JoinStage(dim_a, lambda d: d[0], lambda f: f[1])
    join_b = JoinStage(dim_b, lambda d: d[0], lambda pair: pair[0][2])
    return ParallelPipeline(facts, [join_a, join_b])


def run_speedup_experiment():
    rows = []
    baseline = None
    for workers in (1, 2, 4, 8, 16):
        pipeline = build_pipeline()
        output, stats = pipeline.run(n_workers=workers)
        if baseline is None:
            baseline = stats
        rows.append((
            workers,
            stats.wall_clock_us / 1000.0,
            stats.total_work_us / 1000.0,
            stats.speedup_over(baseline),
            stats.imbalance,
            len(output),
        ))
    return rows


def run_reduction_experiment():
    rows = []
    __, serial = build_pipeline().run(n_workers=1)
    for label, kwargs in (
        ("never parallel (1 worker)", dict(n_workers=1)),
        ("8 workers throughout", dict(n_workers=8)),
        ("8 -> 1 at 50% of probe", dict(n_workers=8, reduce_to=1,
                                        reduce_at_fraction=0.5)),
        ("8 -> 1 immediately", dict(n_workers=8, reduce_to=1,
                                    reduce_at_fraction=0.0)),
    ):
        __, stats = build_pipeline().run(**kwargs)
        rows.append((
            label,
            stats.wall_clock_us / 1000.0,
            stats.wall_clock_us / serial.wall_clock_us,
            stats.workers_final,
        ))
    return rows


def test_e9a_speedup_and_balance(once):
    rows = once(run_speedup_experiment)
    print_table(
        "E9a: FCFS pipeline parallelism (2-join right-deep, %d probe rows)"
        % N_FACTS,
        ["workers", "wall ms (sim)", "total work ms", "speedup",
         "imbalance", "rows"],
        rows,
    )
    by_workers = {row[0]: row for row in rows}
    # Same output everywhere.
    assert len({row[5] for row in rows}) == 1
    # Near-linear speedup at 4 and 8 workers.
    assert by_workers[4][3] > 3.0
    assert by_workers[8][3] > 5.5
    # Load stays balanced regardless of worker count.
    assert all(row[4] < 1.25 for row in rows)
    # Parallelism does not inflate total work much.
    assert by_workers[16][2] < by_workers[1][2] * 1.15


def test_e9b_graceful_reduction(once):
    rows = once(run_reduction_experiment)
    print_table(
        "E9b: dynamic thread reduction (the paper's graceful adaptation)",
        ["schedule", "wall ms (sim)", "vs never-parallel", "final workers"],
        rows,
    )
    by_label = {row[0]: row for row in rows}
    # Reducing to one immediately costs only slightly more than never
    # having set up parallelism.
    assert by_label["8 -> 1 immediately"][2] <= 1.10
    # Reducing halfway lands between full parallel and serial.
    halfway = by_label["8 -> 1 at 50% of probe"][1]
    full = by_label["8 workers throughout"][1]
    serial = by_label["never parallel (1 worker)"][1]
    assert full < halfway < serial


def run_engine_experiment():
    """End-to-end: the same SQL with max_query_tasks 1 vs 8."""
    rows = []
    for workers in (1, 8):
        server = make_server(pool_pages=2048)
        conn = server.connect()
        conn.execute(
            "CREATE TABLE customer (id INT PRIMARY KEY, region VARCHAR(10))"
        )
        conn.execute(
            "CREATE TABLE orders (id INT PRIMARY KEY, cust_id INT, amount INT)"
        )
        server.load_table(
            "customer", [(i, "r%d" % (i % 4)) for i in range(2000)]
        )
        server.load_table(
            "orders", [(i, i % 2000, i % 100) for i in range(30000)]
        )
        if workers > 1:
            conn.execute("SET OPTION max_query_tasks = %d" % workers)
        start = server.clock.now
        result = conn.execute(
            "SELECT c.region, COUNT(*) FROM customer c "
            "JOIN orders o ON o.cust_id = c.id GROUP BY c.region"
        )
        elapsed_ms = (server.clock.now - start) / 1000.0
        rows.append((workers, elapsed_ms, len(result),
                     result.notes.get("parallel_workers", "serial")))
    return rows


def test_e9c_engine_integration(once):
    rows = once(run_engine_experiment)
    print_table(
        "E9c: SET OPTION max_query_tasks through the full engine",
        ["max_query_tasks", "query ms (sim)", "groups", "mode"],
        rows,
    )
    serial, parallel = rows
    assert serial[2] == parallel[2] == 4
    assert parallel[1] < serial[1]
