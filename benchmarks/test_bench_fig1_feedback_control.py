"""E1 / Figure 1: the cache-sizing feedback control loop.

Reproduces Section 2's controller behaviour as a time series: the buffer
pool grows toward (working set + free memory - 5 MB reserve) while the
workload generates misses, shrinks when a competing process allocates
memory, and recovers when that memory is freed — with eq. (2) damping and
the 64 KB deadband keeping the trajectory smooth.  Also exercises the
Windows-CE variant (no working-set reporting).
"""

from repro.buffer import BufferPool, BufferGovernor, GovernorConfig, PageKind
from repro.common import MiB, MINUTE, SimClock
from repro.ossim import OperatingSystem
from repro.storage import FlashDisk, Volume

from conftest import print_table


def build_rig(total_memory=128 * MiB, supports_working_set=True):
    clock = SimClock()
    os = OperatingSystem(total_memory, supports_working_set=supports_working_set)
    server_process = os.spawn("dbserver")
    competitor = os.spawn("other-app")
    volume = Volume(FlashDisk(clock, 500_000))
    pool = BufferPool(volume.create_file("temp"), capacity_pages=1024)
    governor = BufferGovernor(
        clock, os, server_process, pool,
        database_size_fn=lambda: 10**12,  # uncapped
        config=GovernorConfig(upper_bound_bytes=512 * MiB),
    )
    return clock, os, competitor, volume, pool, governor


def generate_misses(pool, volume, n=20):
    dbfile = volume.create_file("churn-%d" % volume.disk.reads)
    pages = []
    for i in range(n):
        frame = pool.new_page(dbfile, PageKind.TABLE, payload=i)
        pages.append(frame.page_no)
        pool.unpin(frame)
    pool.flush_all()
    pool.discard(dbfile)
    for page in pages:
        frame = pool.fetch(dbfile, page)
        pool.unpin(frame)


def run_experiment():
    clock, os, competitor, volume, pool, governor = build_rig()
    series = []
    phases = [
        # (minutes, competitor allocation)
        (8, 0),            # idle machine: pool expands to fill memory
        (8, 90 * MiB),     # memory pressure arrives: pool shrinks
        (8, 0),            # pressure gone: pool re-expands
    ]
    for minutes, allocation in phases:
        competitor.set_allocation(allocation)
        for __ in range(minutes):
            generate_misses(pool, volume)
            sample = governor.poll_once()
            clock.advance(1 * MINUTE)
            series.append((
                clock.now // MINUTE,
                allocation // MiB,
                (sample.working_set or 0) // MiB,
                sample.free_memory // MiB,
                sample.new_pool_bytes / MiB,
                sample.action,
            ))
    return series


def run_ce_experiment():
    clock, os, competitor, volume, pool, governor = build_rig(
        total_memory=64 * MiB, supports_working_set=False
    )
    series = []
    for minutes, allocation in ((5, 0), (5, 40 * MiB), (5, 0)):
        competitor.set_allocation(allocation)
        for __ in range(minutes):
            generate_misses(pool, volume)
            sample = governor.poll_once()
            clock.advance(1 * MINUTE)
            series.append((
                clock.now // MINUTE,
                allocation // MiB,
                sample.free_memory // MiB,
                sample.new_pool_bytes / MiB,
                sample.action,
            ))
    return series


def test_fig1_feedback_control(once):
    series = once(run_experiment)
    print_table(
        "Figure 1 (E1): buffer pool tracks working set + free memory",
        ["minute", "competitor MiB", "working set MiB", "free MiB",
         "pool MiB", "action"],
        series,
    )
    pool_sizes = [row[4] for row in series]
    idle_peak = max(pool_sizes[:8])
    squeezed = min(pool_sizes[8:16])
    recovered = max(pool_sizes[16:])
    # Shape assertions: grow -> shrink under pressure -> recover.
    assert idle_peak > 4.0            # grew well beyond the initial 4 MiB
    assert squeezed < idle_peak * 0.7  # gave memory back under pressure
    assert recovered > squeezed * 1.3  # re-expanded when pressure lifted
    # The OS keeps roughly the 5 MB reserve at the idle fixed point.
    free_at_idle_end = series[7][3]
    assert free_at_idle_end <= 12


def test_fig1_ce_variant(once):
    series = once(run_ce_experiment)
    print_table(
        "Figure 1 (E1b): Windows CE variant (no working-set reporting)",
        ["minute", "competitor MiB", "free MiB", "pool MiB", "action"],
        series,
    )
    pool_sizes = [row[3] for row in series]
    # CE: the pool shrinks when another application allocates memory.
    assert min(pool_sizes[5:10]) <= min(pool_sizes[:5]) + 0.1
    # And grows only after free memory increases again.
    assert max(pool_sizes[10:]) >= max(pool_sizes[5:10])
