"""E2 / Figure 2(a): the default (generic) DTT model.

Prints the four curves of the paper's figure — Read 4K, Read 8K, Write 4K,
Write 8K — over the band-size axis, and checks the figure's shape: costs
grow with band size, writes fall below reads at large bands, 8 K pages
cost more than 4 K pages, and sequential I/O (band 1) is the cheapest.
"""

from repro.common import KiB
from repro.dtt import default_dtt_model

from conftest import print_table

BANDS = [1, 10, 50, 200, 500, 1000, 2000, 3500]


def run_experiment():
    model = default_dtt_model()
    rows = []
    for band in BANDS:
        rows.append((
            band,
            model.cost_us("read", 4 * KiB, band),
            model.cost_us("read", 8 * KiB, band),
            model.cost_us("write", 4 * KiB, band),
            model.cost_us("write", 8 * KiB, band),
        ))
    return rows


def test_fig2a_default_dtt(once):
    rows = once(run_experiment)
    print_table(
        "Figure 2(a) (E2): default DTT model (microseconds per page)",
        ["band", "Read 4K", "Read 8K", "Write 4K", "Write 8K"],
        rows,
    )
    read4 = [row[1] for row in rows]
    read8 = [row[2] for row in rows]
    write4 = [row[3] for row in rows]
    write8 = [row[4] for row in rows]
    # Monotone growth with band size.
    for curve in (read4, read8, write4, write8):
        assert curve == sorted(curve)
        assert curve[0] < 200  # sequential is near-free
    # Writes are cheaper than reads at larger band sizes (asynchronous,
    # schedulable writes vs synchronous reads).
    for i, band in enumerate(BANDS):
        if band >= 50:
            assert write4[i] < read4[i]
            assert write8[i] < read8[i]
    # Larger pages cost more.
    assert all(r8 > r4 for r8, r4 in zip(read8, read4))
    assert all(w8 > w4 for w8, w4 in zip(write8, write4))
