"""E3 / Figure 2(b): CALIBRATE DATABASE against a rotational disk.

The paper's calibrated DTT was measured on an Intel Bensley box with a
7200 RPM Barracuda disk, plotted on a log band-size axis, with the write
curve approximated from the measured read curve.  Here calibration runs
against the simulated rotational device and the same shape must emerge:
a read curve rising steeply through the small bands and flattening toward
the disk's full-stroke cost, with the approximated write curve below it.
"""

from repro.common import KiB, SimClock
from repro.dtt import calibrate_device
from repro.storage import RotationalDisk

from conftest import print_table

BANDS = [1, 10, 100, 1000, 10_000, 100_000, 1_000_000]


def run_experiment():
    disk = RotationalDisk(SimClock(), 2_000_000, rpm=7200, seed=20)
    model = calibrate_device(disk, page_size=4 * KiB, samples_per_band=48)
    rows = []
    for band in BANDS:
        rows.append((
            band,
            model.cost_us("read", 4 * KiB, band),
            model.cost_us("write", 4 * KiB, band),
        ))
    return rows


def test_fig2b_calibrated_dtt(once):
    rows = once(run_experiment)
    print_table(
        "Figure 2(b) (E3): calibrated DTT, simulated 7200 RPM disk "
        "(log band axis)",
        ["band", "Read 4K (us)", "Write 4K (us)"],
        rows,
    )
    reads = [row[1] for row in rows]
    writes = [row[2] for row in rows]
    # Rising, then flattening: the last decade adds less than the middle.
    # Sequential (band 1) is far below every random band.  It is not pure
    # transfer time because calibration amortizes one initial seek into
    # the window over its samples.
    assert reads[0] < 600
    assert reads == sorted(reads)
    mid_growth = reads[3] - reads[1]
    tail_growth = reads[-1] - reads[-2]
    assert tail_growth < mid_growth
    # Full-stroke random read lands in a realistic 7200 RPM range
    # (seek + half rotation: several milliseconds).
    assert 4000 < reads[-1] < 20_000
    # The approximated write curve sits below the read curve, more so at
    # large bands.
    assert all(w <= r for w, r in zip(writes, reads))
    assert writes[-1] < reads[-1] * 0.75
