"""E4 / Figure 3: DTT of an SD storage card.

"Figure 3 illustrates the DTT curve of a 512 MB SD card on a Pocket PC
2003 handheld device — note the uniform random access times."  The flash
device is calibrated the same way the rotational disk is; the resulting
read/write curves must be flat across band sizes, with writes costlier
than reads (erase-before-write).
"""

from repro.common import SimClock
from repro.dtt import calibrate_read_curve
from repro.storage import FlashDisk

from conftest import print_table

#: The paper's x-axis sample points for the SD card figure.
BANDS = [1, 200, 800, 1237, 1674, 2548, 4296]


def run_experiment():
    # A 512 MB card at 4 KiB pages = 131072 pages.
    disk = FlashDisk(SimClock(), 131_072, read_us=390, write_us=1180)
    read_curve = calibrate_read_curve(
        disk, bands=BANDS, samples_per_band=32
    )
    rows = []
    for band in BANDS:
        measured_read = read_curve.cost_us(band)
        measured_write = disk.write_page(band % disk.size_pages)
        rows.append((band, measured_read, measured_write))
    return rows


def test_fig3_sdcard_dtt(once):
    rows = once(run_experiment)
    print_table(
        "Figure 3 (E4): DTT for a 512 MB SD card (uniform access times)",
        ["band", "Read 4K (us)", "Write 4K (us)"],
        rows,
    )
    reads = [row[1] for row in rows]
    writes = [row[2] for row in rows]
    # Uniform random access: the curve is flat across all band sizes.
    assert max(reads) <= min(reads) * 1.05
    assert max(writes) <= min(writes) * 1.05
    # Flash writes cost more than reads.
    assert min(writes) > max(reads)
