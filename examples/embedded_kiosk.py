#!/usr/bin/env python3
"""An embedded deployment sharing a machine with a greedy application.

The paper's motivating scenario for dynamic buffer pool management
(Section 2): "when a database system is embedded in an application ... it
must co-exist with other software and system tools whose configuration and
memory usage vary from installation to installation, and from moment to
moment."

This script runs a kiosk-style order database while a co-resident media
application repeatedly grabs and releases large chunks of memory.  The
buffer-pool governor's feedback loop is printed as it reacts — growing
into free memory while the kiosk is busy, yielding when the media app
needs the machine, and recovering afterwards.

Run:  python examples/embedded_kiosk.py
"""

from repro import Server, ServerConfig
from repro.common import MiB, MINUTE

KIOSK_ITEMS = 60_000


def main():
    server = Server(ServerConfig(total_memory=64 * MiB))
    media_app = server.os.spawn("media-player")
    conn = server.connect()

    conn.execute(
        "CREATE TABLE item (id INT PRIMARY KEY, name VARCHAR(30), "
        "price DOUBLE, description VARCHAR(80))"
    )
    conn.execute(
        "CREATE TABLE sale (id INT PRIMARY KEY, item_id INT, qty INT)"
    )
    server.load_table(
        "item", [(i, "item-%d" % i, float(i % 50) + 0.99,
                  "long marketing copy for item %d" % i)
                 for i in range(KIOSK_ITEMS)]
    )

    print("minute  media-app MiB  pool MiB  governor action")
    print("------  -------------  --------  ---------------")

    sale_id = 0
    phases = [(6, 0), (6, 48 * MiB), (6, 0)]
    for minutes, media_memory in phases:
        media_app.set_allocation(media_memory)
        for __ in range(minutes):
            # Kiosk traffic: a burst of lookups and sales per minute.
            for k in range(25):
                item = (sale_id * 7 + k) % KIOSK_ITEMS
                conn.execute(
                    "SELECT price FROM item WHERE id = %d" % item
                )
                conn.execute(
                    "INSERT INTO sale VALUES (%d, %d, %d)"
                    % (sale_id, item, 1 + k % 3)
                )
                sale_id += 1
            sample = server.buffer_governor.poll_once()
            server.clock.advance(1 * MINUTE)
            print("%6d  %13d  %8.1f  %s" % (
                server.clock.now // MINUTE,
                media_app.allocated // MiB,
                sample.new_pool_bytes / MiB,
                sample.action,
            ))

    revenue = conn.execute(
        "SELECT SUM(i.price * s.qty) FROM sale s JOIN item i "
        "ON s.item_id = i.id"
    )
    print("\nkiosk revenue so far: $%.2f across %d sales"
          % (revenue.rows[0][0], sale_id))
    conn.close()


if __name__ == "__main__":
    main()
