#!/usr/bin/env python3
"""Disconnected field operation with two-way synchronization.

The paper's opening scenario: "data synchronization technology makes it
possible for remote users to both access and update corporate data at a
remote, off-site location ... even when disconnected from the corporate
network, a commonplace circumstance in frontline business environments."

Two engines run side by side: the consolidated (head-office) database and
a technician's handheld database.  The technician works offline all day;
head office keeps dispatching; the evening synchronization merges both
sides and resolves the one genuine conflict by policy.

Run:  python examples/field_sync.py
"""

from repro import Server, ServerConfig
from repro.sync import ConflictPolicy, SyncSession

DDL = (
    "CREATE TABLE job (id INT PRIMARY KEY, site VARCHAR(20), "
    "status VARCHAR(12), minutes INT)"
)


def show(label, conn):
    print("  %s:" % label)
    for row in sorted(conn.execute("SELECT * FROM job").rows):
        print("    job %-3d %-12s %-10s %4d min" % row)


def main():
    office = Server(ServerConfig()).connect()
    handheld = Server(ServerConfig(supports_working_set=False)).connect()
    office.execute(DDL)
    handheld.execute(DDL)
    session = SyncSession(
        handheld.server, office.server, ["job"],
        conflict_policy=ConflictPolicy.CONSOLIDATED_WINS,
    )

    # Morning: head office dispatches the day's jobs; the technician syncs
    # before leaving the depot.
    office.execute(
        "INSERT INTO job VALUES "
        "(1, 'water plant', 'assigned', 0), "
        "(2, 'substation',  'assigned', 0), "
        "(3, 'reservoir',   'assigned', 0)"
    )
    session.synchronize()
    print("morning sync done — handheld leaves the depot with:")
    show("handheld", handheld)

    # Daytime, DISCONNECTED: the technician works through the jobs ...
    handheld.execute(
        "UPDATE job SET status = 'done', minutes = 95 WHERE id = 1"
    )
    handheld.execute(
        "UPDATE job SET status = 'blocked', minutes = 15 WHERE id = 2"
    )
    # ... while head office adds a job and reassigns job 2 to someone else
    # (the conflict: both sides touched job 2).
    office.execute("INSERT INTO job VALUES (4, 'pump house', 'assigned', 0)")
    office.execute("UPDATE job SET status = 'reassigned' WHERE id = 2")

    print("\nevening, back in coverage — synchronizing:")
    stats = session.synchronize()
    print("  uploaded %d changes, downloaded %d, conflicts: %d"
          % (stats.uploaded, stats.downloaded, len(stats.conflicts)))
    for conflict in stats.conflicts:
        print("  conflict on job %s -> %s" % (conflict.pk, conflict.resolution))

    print("\nafter synchronization (identical on both sides):")
    show("head office", office)
    show("handheld", handheld)

    same = sorted(office.execute("SELECT * FROM job").rows) == sorted(
        handheld.execute("SELECT * FROM job").rows
    )
    print("\nconverged: %s" % same)


if __name__ == "__main__":
    main()
