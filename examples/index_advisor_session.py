#!/usr/bin/env python3
"""An Application Profiling session (Section 5).

Traces a deliberately sloppy application, runs the design-flaw analyzer
(which catches the client-side join), asks the Index Consultant for
recommendations via virtual indexes, applies the top pick, and shows the
speedup — the full advisory loop the paper describes, up to the final
step the paper leaves to the DBA: "the DBA is only required to approve or
disapprove of a recommendation."

Run:  python examples/index_advisor_session.py
"""

from repro import Server, ServerConfig
from repro.profiling import FlawAnalyzer, IndexConsultant, Tracer


def run_application(conn):
    """A naive app: per-id lookups in a loop plus reporting queries."""
    for order_id in range(25):
        conn.execute("SELECT total FROM orders WHERE id = %d" % order_id)
    for __ in range(3):
        conn.execute("SELECT COUNT(*) FROM orders WHERE status = 3")
        conn.execute(
            "SELECT SUM(total) FROM orders WHERE status = 1 AND total > 900"
        )


def main():
    server = Server(ServerConfig(initial_pool_pages=256))
    conn = server.connect()
    conn.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, status INT, total DOUBLE)"
    )
    rows = sorted(
        ((i, i % 7, float(i % 1000)) for i in range(25_000)),
        key=lambda row: row[1],
    )
    server.load_table("orders", rows)

    # 1. Capture a trace while the application runs.
    server.tracer = Tracer()
    start = server.clock.now
    run_application(conn)
    before_ms = (server.clock.now - start) / 1000.0
    print("traced %d statements, %.0f ms of simulated time"
          % (len(server.tracer), before_ms))

    # 2. The design-flaw database.
    print("\ndesign flaws detected:")
    for flaw in FlawAnalyzer().analyze(server.tracer, server.catalog):
        print("  [%s] %s" % (flaw.severity, flaw.summary))
        print("        -> %s" % (flaw.recommendation,))

    # 3. The Index Consultant with virtual indexes.
    workload = sorted({
        event.sql for event in server.tracer.events
        if event.template.startswith("SELECT")
        and "WHERE status" in event.sql
    })
    consultant = IndexConsultant(server)
    recommendations = consultant.analyze(workload)
    print("\nindex recommendations:")
    for rec in recommendations:
        print("  %s %s(%s)  est. benefit %.0f ms"
              % (rec.action, rec.table_name, ", ".join(rec.column_names),
                 rec.benefit_us / 1000.0))

    # 4. The DBA approves the top recommendation.
    creates = [r for r in recommendations if r.action == "create"]
    if creates:
        top = creates[0]
        conn.execute(
            "CREATE INDEX advisor_pick ON %s (%s)"
            % (top.table_name, ", ".join(top.column_names))
        )
        server.tracer = None
        server.pool.set_capacity(256)
        start = server.clock.now
        run_application(conn)
        after_ms = (server.clock.now - start) / 1000.0
        print("\napplication time: %.0f ms -> %.0f ms after creating %s(%s)"
              % (before_ms, after_ms, top.table_name,
                 ", ".join(top.column_names)))
    conn.close()


if __name__ == "__main__":
    main()
