#!/usr/bin/env python3
"""A handheld deployment: Windows-CE-style OS and SD-card storage.

The paper highlights SQL Anywhere running "on a handheld device ... when
the device is disconnected from the corporate intranet", with two
device-specific behaviours reproduced here:

* the CE variant of the buffer governor (the OS cannot report working-set
  sizes, so the controller grows only when free memory increases and
  shrinks under memory pressure);
* ``CALIBRATE DATABASE`` measuring the SD card's uniform access times and
  installing the calibrated DTT model in the catalog, replacing the
  rotational default (Figure 3).

Run:  python examples/mobile_ce_device.py
"""

from repro import Server, ServerConfig
from repro.common import KiB, MiB, MINUTE, SimClock
from repro.storage import FlashDisk


def main():
    # A 64 MB handheld whose storage is a 512 MB SD card (131072 pages).
    clock = SimClock()
    server = Server(
        ServerConfig(
            total_memory=64 * MiB,
            supports_working_set=False,  # Windows CE flavour
            initial_pool_pages=512,      # 2 MiB
        ),
        clock=clock,
        disk=FlashDisk(clock, 131_072),
    )
    conn = server.connect()

    conn.execute(
        "CREATE TABLE visit (id INT PRIMARY KEY, customer VARCHAR(30), "
        "notes VARCHAR(60))"
    )
    server.load_table(
        "visit",
        [(i, "customer-%d" % (i % 200), "notes for visit %d" % i)
         for i in range(40_000)],
    )

    print("Default cost model:", server.catalog.dtt_model.name)
    print("  read 4K @ band 1000: %.0f us"
          % server.catalog.dtt_model.cost_us("read", 4 * KiB, 1000))

    # Calibrate against the actual (flash) device.
    conn.execute("CALIBRATE DATABASE")
    print("After CALIBRATE DATABASE:", server.catalog.dtt_model.name)
    for band in (1, 100, 10_000):
        print("  read 4K @ band %6d: %.0f us"
              % (band, server.catalog.dtt_model.cost_us("read", 4 * KiB, band)))
    print("  (uniform across bands: flash has no seeks, Figure 3)")

    # The CE buffer governor in action: another app squeezes the device.
    other_app = server.os.spawn("camera-app")
    print("\nminute  camera MiB  free MiB  pool MiB  action")
    for minute, camera in enumerate([0, 0, 52 * MiB, 52 * MiB, 0, 0]):
        other_app.set_allocation(camera)
        for i in range(60):  # lookups generating pool traffic (and misses)
            conn.execute(
                "SELECT notes FROM visit WHERE id = %d"
                % ((minute * 5323 + i * 379) % 40_000)
            )
        sample = server.buffer_governor.poll_once()
        server.clock.advance(1 * MINUTE)
        print("%6d  %10d  %8d  %8.1f  %s" % (
            minute, camera // MiB, sample.free_memory // MiB,
            sample.new_pool_bytes / MiB, sample.action,
        ))
    conn.close()


if __name__ == "__main__":
    main()
