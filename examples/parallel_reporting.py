#!/usr/bin/env python3
"""Intra-query parallelism from SQL (paper Section 4.4).

A reporting query over a star-ish schema runs serially, then again with
``SET OPTION max_query_tasks = 8``: the hash-join core's build and probe
phases execute on the FCFS worker pipeline while the scans keep their
sequential disk access pattern, and the answer is identical.

Run:  python examples/parallel_reporting.py
"""

from repro import Server, ServerConfig

REPORT = (
    "SELECT c.region, COUNT(*), SUM(o.amount) "
    "FROM customer c JOIN orders o ON o.cust_id = c.id "
    "GROUP BY c.region ORDER BY c.region"
)


def main():
    server = Server(ServerConfig(initial_pool_pages=4096))
    conn = server.connect()
    conn.execute(
        "CREATE TABLE customer (id INT PRIMARY KEY, region VARCHAR(10))"
    )
    conn.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, cust_id INT, amount INT)"
    )
    server.load_table(
        "customer", [(i, "region-%d" % (i % 6)) for i in range(5000)]
    )
    server.load_table(
        "orders", [(i, i % 5000, (i * 37) % 400) for i in range(60000)]
    )

    def timed():
        start = server.clock.now
        result = conn.execute(REPORT)
        return result, (server.clock.now - start) / 1000.0

    serial_result, serial_ms = timed()
    conn.execute("SET OPTION max_query_tasks = 8")
    parallel_result, parallel_ms = timed()

    print("region report (%d orders joined to %d customers):" % (60000, 5000))
    for row in parallel_result:
        print("  %-10s %6d orders   %9d total" % row)
    print()
    print("serial:    %7.1f ms of simulated time" % serial_ms)
    print("8 workers: %7.1f ms  (%.2fx speedup, wall %s us on the pipeline)"
          % (parallel_ms, serial_ms / parallel_ms,
             parallel_result.notes.get("parallel_wall_us")))
    print("answers identical:", serial_result.rows == parallel_result.rows)
    conn.close()


if __name__ == "__main__":
    main()
