#!/usr/bin/env python3
"""Quickstart: the embedded, zero-administration workflow.

The paper's opening example: "a SQL Anywhere database can be started by a
simple client API call from the application, and can shut down
automatically when the last connection disconnects."  No tuning knobs are
set anywhere in this script — the self-managing machinery (buffer
governor, automatic statistics, adaptive execution) runs underneath.

Run:  python examples/quickstart.py
"""

from repro import connect


def main():
    # One call starts the server (simulated machine included).
    conn = connect()

    conn.execute(
        "CREATE TABLE product ("
        "  id INT PRIMARY KEY,"
        "  name VARCHAR(40),"
        "  category VARCHAR(20),"
        "  price DOUBLE)"
    )
    conn.execute(
        "INSERT INTO product VALUES "
        "(1, 'anvil', 'hardware', 35.0), "
        "(2, 'rocket skates', 'transport', 120.0), "
        "(3, 'dehydrated boulders', 'hardware', 8.5), "
        "(4, 'tornado seeds', 'garden', 99.0), "
        "(5, 'earthquake pills', 'pharmacy', 12.0)"
    )

    print("All products over $10, cheapest first:")
    result = conn.execute(
        "SELECT name, price FROM product WHERE price > 10 ORDER BY price"
    )
    for name, price in result:
        print("  %-22s $%7.2f" % (name, price))

    print("\nSpending by category:")
    result = conn.execute(
        "SELECT category, COUNT(*), SUM(price) FROM product "
        "GROUP BY category ORDER BY SUM(price) DESC"
    )
    for category, count, total in result:
        print("  %-10s %d item(s), $%7.2f" % (category, count, total))

    print("\nThe optimizer's plan for a filtered query:")
    result = conn.execute("SELECT name FROM product WHERE id = 3")
    print(result.explain())

    # Closing the last connection shuts the server down automatically.
    server = conn.server
    conn.close()
    print("\nserver still running after last disconnect? %s" % server.running)


if __name__ == "__main__":
    main()
