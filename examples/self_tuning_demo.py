#!/usr/bin/env python3
"""Watching the statistics feedback loop tune itself (Section 3).

A table is populated behind the statistics manager's back (no LOAD TABLE,
no CREATE STATISTICS) with a heavily skewed distribution.  Every query the
application runs doubles as a statistics-gathering probe: the histogram
for the filtered column assembles itself out of observed predicate
selectivities, and the optimizer's estimates converge on the truth.

Run:  python examples/self_tuning_demo.py
"""

import random

from repro import Server, ServerConfig
from repro.sql import Binder, parse_statement


def estimated_rows(server, sql):
    binder = Binder(server.catalog)
    block = binder.bind(parse_statement(sql))
    estimator = server._make_estimator()
    quantifier = block.quantifiers[0]
    selectivity = 1.0
    for conjunct in block.conjuncts:
        selectivity *= estimator.local_selectivity(conjunct.expr, quantifier)
    return selectivity * quantifier.schema.row_count


def main():
    server = Server(ServerConfig())
    conn = server.connect()
    conn.execute("CREATE TABLE events (id INT PRIMARY KEY, severity INT)")

    # Rows arrive through a path the histogram machinery never saw.
    rng = random.Random(11)
    table = server.catalog.table("events")
    for i in range(10_000):
        severity = rng.randrange(0, 10) if rng.random() < 0.9 else rng.randrange(10, 1000)
        row = (i, severity)
        row_id = table.storage.insert(row)
        server._index_insert(table, row, row_id)

    print("10,000 events: 90%% have severity < 10, a thin tail to 1000.\n")
    queries = [
        "SELECT COUNT(*) FROM events WHERE severity BETWEEN 0 AND 9",
        "SELECT COUNT(*) FROM events WHERE severity BETWEEN 10 AND 99",
        "SELECT COUNT(*) FROM events WHERE severity BETWEEN 100 AND 999",
    ]
    print("%-55s %10s %10s" % ("query", "estimated", "actual"))
    for round_number in range(3):
        print("--- application round %d %s" % (
            round_number + 1,
            "(optimizer has never seen this column)" if round_number == 0 else "",
        ))
        for sql in queries:
            estimate = estimated_rows(server, sql)
            actual = conn.execute(sql).rows[0][0]
            print("%-55s %10.0f %10d" % (sql[30:], estimate, actual))
    hist = server.stats.histogram("events", 1)
    print("\nhistogram state: %d buckets, %d singletons, "
          "%d feedback updates" % (
              hist.bucket_count, hist.singleton_count, hist.feedback_updates))
    conn.close()


if __name__ == "__main__":
    main()
