#!/usr/bin/env python
"""Differential batch-vs-row execution lane.

For every seed given on the command line (default: the CI chaos seeds),
a seeded query matrix — filters, LIKE/BETWEEN/IN predicates, arithmetic,
joins, grouped aggregates with HAVING, DISTINCT, ORDER BY, LIMIT, NULL
handling — runs against the same seeded data in **both** execution modes
(``ServerConfig(batch_execution=False)`` row-at-a-time, ``=True``
vectorized batches).
The two modes must produce **byte-identical result sets** for every
query: the batch engine's contract is that vectorization changes per-row
CPU accounting, never row values or row order.

Each mode also runs **twice**, and the two runs' statement traces
(template, result rows, pool hits/misses, simulated elapsed time) must
be byte-identical — determinism within a mode, on top of equivalence
across modes.  Run under ``REPRO_SANITIZE=1`` so the runtime sanitizers
are live while both paths execute.

Usage::

    REPRO_SANITIZE=1 python scripts/batch_differential.py 101 202 303
"""

import random
import sys

sys.path.insert(0, "src")

from repro import Server, ServerConfig  # noqa: E402
from repro.profiling import Tracer  # noqa: E402

DEFAULT_SEEDS = (101, 202, 303)
T1_ROWS = 500
T2_ROWS = 300
#: Small pool so scans miss and page accounting shows up in the trace.
POOL_PAGES = 128


def build_dataset(seed):
    """Seeded rows for the two tables (deterministic per seed)."""
    rng = random.Random(seed)
    names = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta")
    t1 = []
    for i in range(T1_ROWS):
        v = None if rng.random() < 0.1 else round(rng.uniform(0, 100), 2)
        name = None if rng.random() < 0.05 else (
            rng.choice(names) + str(rng.randrange(10))
        )
        t1.append((i, rng.randrange(20), v, name))
    t2 = [
        (i, rng.randrange(T1_ROWS), rng.randrange(50))
        for i in range(T2_ROWS)
    ]
    return t1, t2


def query_matrix(seed):
    """The seeded queries; constants vary per seed, shapes do not."""
    rng = random.Random(seed * 7919)
    grp = rng.randrange(20)
    lo, hi = sorted((rng.randrange(100), rng.randrange(100)))
    limit = rng.randrange(5, 25)
    in_list = ", ".join(str(rng.randrange(20)) for __ in range(4))
    pattern = rng.choice(("al%", "%ta%", "_e%", "%a_"))
    return [
        # Vectorized scan + filter over mixed predicates.
        "SELECT id, v FROM t1 WHERE grp = %d AND v > %d ORDER BY id" % (grp, lo),
        "SELECT id, name FROM t1 WHERE name LIKE '%s' ORDER BY id" % pattern,
        "SELECT id FROM t1 WHERE v BETWEEN %d AND %d ORDER BY id" % (lo, hi),
        "SELECT id, grp FROM t1 WHERE grp IN (%s) ORDER BY id" % in_list,
        "SELECT id FROM t1 WHERE v IS NULL ORDER BY id",
        # Arithmetic and scalar functions through the vectorized evaluator.
        "SELECT id, v * 2 + 1 FROM t1 WHERE ABS(v - 50) < %d ORDER BY id"
        % (hi // 2 + 1),
        "SELECT id, COALESCE(v, -1), LENGTH(name) FROM t1 "
        "WHERE grp < 5 ORDER BY id",
        # Hash join, with and without extra residual filtering.
        "SELECT t1.id, t2.w FROM t1 JOIN t2 ON t1.id = t2.ref "
        "ORDER BY t1.id, t2.id",
        "SELECT t1.grp, t2.w FROM t1 JOIN t2 ON t1.id = t2.ref "
        "WHERE t2.w < %d AND t1.v > %d ORDER BY t1.grp, t2.w, t2.id"
        % (hi // 2 + 5, lo),
        # Grouped aggregation, HAVING, sort, limit.
        "SELECT grp, COUNT(*), SUM(v), MIN(v), MAX(v) FROM t1 "
        "GROUP BY grp ORDER BY grp",
        "SELECT grp, COUNT(*) FROM t1 GROUP BY grp "
        "HAVING COUNT(*) > %d ORDER BY grp" % (T1_ROWS // 40),
        "SELECT grp, AVG(v) FROM t1 WHERE v IS NOT NULL "
        "GROUP BY grp ORDER BY grp LIMIT %d" % limit,
        # Distinct and aggregate-distinct.
        "SELECT DISTINCT grp FROM t1 ORDER BY grp",
        "SELECT COUNT(DISTINCT grp) FROM t1",
        # Join feeding an aggregate (batch boundaries cross operators).
        "SELECT t1.grp, COUNT(*), SUM(t2.w) FROM t1 JOIN t2 "
        "ON t1.id = t2.ref GROUP BY t1.grp ORDER BY t1.grp",
        "SELECT id, v FROM t1 ORDER BY id LIMIT %d" % limit,
    ]


def run_matrix(seed, batch_mode):
    """One full pass of the matrix; returns (results bytes, trace lines)."""
    server = Server(ServerConfig(
        start_buffer_governor=False,
        initial_pool_pages=POOL_PAGES,
        batch_execution=batch_mode,
    ))
    server.tracer = Tracer()
    connection = server.connect()
    connection.execute(
        "CREATE TABLE t1 (id INT PRIMARY KEY, grp INT, v DOUBLE, "
        "name VARCHAR(20))"
    )
    connection.execute(
        "CREATE TABLE t2 (id INT PRIMARY KEY, ref INT, w INT)"
    )
    t1, t2 = build_dataset(seed)
    server.load_table("t1", t1)
    server.load_table("t2", t2)
    results = []
    for sql in query_matrix(seed):
        rows = connection.execute(sql).rows
        results.append("%s\n%r" % (sql, rows))
    trace = [
        "%s rows=%d misses=%d hits=%d elapsed=%d" % (
            event.template, event.rows, event.pool_misses,
            event.pool_hits, event.elapsed_us,
        )
        for event in server.tracer.events
    ]
    return "\n".join(results).encode(), trace


def differential(seed):
    problems = []
    row_results, row_trace = run_matrix(seed, batch_mode=False)
    batch_results, batch_trace = run_matrix(seed, batch_mode=True)
    if row_results != batch_results:
        # Name the first diverging query so the failure is actionable.
        for row_chunk, batch_chunk in zip(
            row_results.decode().split("\n"), batch_results.decode().split("\n")
        ):
            if row_chunk != batch_chunk:
                problems.append(
                    "seed %d: batch and row result sets diverge at %r"
                    % (seed, row_chunk[:120])
                )
                break
        else:
            problems.append(
                "seed %d: batch and row result sets diverge in length" % seed
            )
    # Determinism within each mode: a second run must replay the same
    # results and the same statement trace, byte for byte.
    row_again, row_trace_again = run_matrix(seed, batch_mode=False)
    batch_again, batch_trace_again = run_matrix(seed, batch_mode=True)
    if (row_again, row_trace_again) != (row_results, row_trace):
        problems.append("seed %d: row mode is not deterministic" % seed)
    if (batch_again, batch_trace_again) != (batch_results, batch_trace):
        problems.append("seed %d: batch mode is not deterministic" % seed)
    print(
        "seed %d: %d queries, %d result bytes, traces %d/%d statements%s"
        % (
            seed, len(query_matrix(seed)), len(batch_results),
            len(row_trace), len(batch_trace),
            " [FAIL]" if problems else " [ok]",
        )
    )
    return problems


def main(argv):
    seeds = [int(arg) for arg in argv] or list(DEFAULT_SEEDS)
    problems = []
    for seed in seeds:
        problems.extend(differential(seed))
    for problem in problems:
        print("FAIL %s" % problem)
    if problems:
        return 1
    print(
        "batch differential: %d seeds, batch == row, both deterministic"
        % len(seeds)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
