#!/usr/bin/env python
"""Benchmark regression gate for CI.

Compares a freshly generated pytest-benchmark JSON against the newest
*committed* ``BENCH_*.json`` baseline and fails (exit 1) when any gated
experiment regressed by more than the threshold.

For each gated experiment the preferred measure is the **simulated**
statement time — ``extra_info.metrics["statements.elapsed_us"]["sum"]``,
deterministic across machines because it comes off the SimClock — with
the wall-clock median as a fallback for rig-style experiments that never
build a server.  Wall medians vary across runners and between single
rounds on the *same* runner (cold-start effects swing them ±40%), so
wall comparisons use their own, much wider band (``--wall-threshold``,
default 50%) while simulated comparisons keep the tight default.

With ``--expect-improvement`` the gate flips direction: instead of
guarding against regressions it *requires* the fresh run to beat the
baseline by at least the given factor — used once per optimization PR to
prove the claimed speedup against the previous PR's committed baseline.
Per experiment, pairs where both sides carry the simulated measure are
preferred (and wall-only siblings of a simulated pair are skipped as
cross-machine noise); wall medians are compared only when the experiment
has no simulated measure at all, and those pairs get the required factor
scaled down by half the wall band (a 3x claim checks as 2.25x at the
default ``--wall-threshold`` 0.50) — the same noise allowance the
regression direction already grants wall comparisons.

Usage::

    python scripts/bench_gate.py BENCH_PR5.json            # auto-baseline
    python scripts/bench_gate.py fresh.json --baseline BENCH_PR4.json
    python scripts/bench_gate.py fresh.json --threshold 0.20 --gate e5,e9
    python scripts/bench_gate.py fresh.json --baseline BENCH_PR7.json \\
        --expect-improvement e5:3,e9:3,e14:3
"""

import argparse
import glob
import json
import os
import sys

#: Experiments whose regression fails the bench job.
DEFAULT_GATED = ("e5", "e9", "e14", "e18", "e19", "e20", "e21")
DEFAULT_THRESHOLD = 0.15
#: Single-round wall medians are noisy even on one machine; only a
#: drastic regression is signal.
DEFAULT_WALL_THRESHOLD = 0.50

SIMULATED_KEY = "statements.elapsed_us"


def load_benchmarks(path):
    """Map ``test name -> (experiment token, benchmark entry)`` from a
    pytest-benchmark JSON file; the token is the ``eN``/``figN`` piece
    of the test name (``test_e9a_speedup`` -> ``e9a``)."""
    with open(path) as handle:
        data = json.load(handle)
    entries = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        for token in name.replace("test_", "").split("_"):
            if token and token[0] in "ef" and any(
                ch.isdigit() for ch in token
            ):
                entries[name] = (token, bench)
                break
    return entries


def token_matches(token, key):
    """``e9`` gates ``e9``, ``e9a``..``e9c`` but not ``e90``."""
    if token == key:
        return True
    return token.startswith(key) and token[len(key):][0].isalpha()


def measure(bench):
    """(value, kind): simulated µs when available, else wall median s."""
    metrics = bench.get("extra_info", {}).get("metrics", {})
    simulated = metrics.get(SIMULATED_KEY)
    if isinstance(simulated, dict) and simulated.get("sum", 0) > 0:
        return float(simulated["sum"]), "simulated-us"
    return float(bench["stats"]["median"]), "wall-median-s"


def find_baseline(fresh_path):
    """Newest committed ``BENCH_*.json`` that is not the fresh file."""
    root = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.dirname(root)
    candidates = sorted(
        path
        for path in glob.glob(os.path.join(repo, "BENCH_*.json"))
        if os.path.abspath(path) != os.path.abspath(fresh_path)
    )
    return candidates[-1] if candidates else None


def compare(baseline, fresh, gated, threshold, wall_threshold=None):
    """Returns (rows, failures) comparing the gated experiments."""
    if wall_threshold is None:
        wall_threshold = threshold
    rows = []
    failures = []
    for key in gated:
        names = sorted(
            name for name, (token, __) in fresh.items()
            if token_matches(token, key)
        )
        if not names:
            rows.append((key, "-", "-", "-", "missing from fresh run"))
            failures.append("%s: missing from the fresh run" % key)
            continue
        for name in names:
            label = name.replace("test_", "")
            __, fresh_bench = fresh[name]
            base_entry = baseline.get(name)
            if base_entry is None:
                rows.append((label, "-", "-", "-", "new (no baseline)"))
                continue
            __, base_bench = base_entry
            base_value, base_kind = measure(base_bench)
            fresh_value, fresh_kind = measure(fresh_bench)
            if base_kind != fresh_kind:
                # One side gained/lost the simulated metric: compare walls.
                base_value = float(base_bench["stats"]["median"])
                fresh_value = float(fresh_bench["stats"]["median"])
                base_kind = "wall-median-s"
            delta = (
                (fresh_value - base_value) / base_value if base_value else 0.0
            )
            limit = (
                wall_threshold if base_kind == "wall-median-s" else threshold
            )
            verdict = "ok"
            if delta > limit:
                verdict = "REGRESSED"
                failures.append(
                    "%s: %s %.4g -> %.4g (%+.1f%% > %.0f%% threshold)"
                    % (
                        label, base_kind, base_value, fresh_value,
                        100 * delta, 100 * limit,
                    )
                )
            rows.append(
                (label, base_kind, "%.4g" % base_value, "%.4g" % fresh_value,
                 "%+.1f%% %s" % (100 * delta, verdict))
            )
    return rows, failures


def parse_expectations(spec):
    """``"e5:3,e9:3.5"`` -> [("e5", 3.0), ("e9", 3.5)]."""
    expectations = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, factor = item.partition(":")
        if not sep or not key.strip():
            raise ValueError("bad expectation %r (want EXPT:FACTOR)" % item)
        expectations.append((key.strip(), float(factor)))
    return expectations


def check_improvements(baseline, fresh, expectations,
                       wall_threshold=DEFAULT_WALL_THRESHOLD):
    """Returns (rows, failures) requiring base/fresh >= factor.

    Per experiment: pairs where baseline *and* fresh carry the simulated
    measure are compared on it; when any simulated pair exists, wall-only
    siblings are skipped (their medians are cross-machine noise next to a
    deterministic SimClock sum).  Only an experiment with no simulated
    pair anywhere falls back to wall medians, and then the required
    factor is relaxed by half the wall band — single-round wall medians
    swing run to run even on one machine.
    """
    rows = []
    failures = []
    for key, factor in expectations:
        names = sorted(
            name for name, (token, __) in fresh.items()
            if token_matches(token, key) and name in baseline
        )
        if not names:
            rows.append((key, "-", "-", "-", "missing from fresh run"))
            failures.append("%s: no paired benchmarks to check" % key)
            continue
        pairs = []
        for name in names:
            base_value, base_kind = measure(baseline[name][1])
            fresh_value, fresh_kind = measure(fresh[name][1])
            if base_kind == fresh_kind == "simulated-us":
                pairs.append((name, base_value, fresh_value, base_kind))
        simulated_only = bool(pairs)
        if not pairs:
            for name in names:
                base_value = float(baseline[name][1]["stats"]["median"])
                fresh_value = float(fresh[name][1]["stats"]["median"])
                pairs.append((name, base_value, fresh_value, "wall-median-s"))
        for name, base_value, fresh_value, kind in pairs:
            label = name.replace("test_", "")
            required = factor
            if kind == "wall-median-s":
                required = factor * (1 - wall_threshold / 2)
            ratio = base_value / fresh_value if fresh_value else float("inf")
            verdict = "ok" if ratio >= required else "TOO SLOW"
            if ratio < required:
                failures.append(
                    "%s: %s %.4g -> %.4g (%.2fx < required %.2gx)"
                    % (label, kind, base_value, fresh_value, ratio, required)
                )
            rows.append(
                (label, kind, "%.4g" % base_value, "%.4g" % fresh_value,
                 "%.2fx (need %.2gx) %s" % (ratio, required, verdict))
            )
        if simulated_only and len(pairs) < len(names):
            skipped = len(names) - len(pairs)
            rows.append(
                (key, "wall-median-s", "-", "-",
                 "%d wall-only sibling(s) skipped" % skipped)
            )
    return rows, failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="freshly generated benchmark JSON")
    parser.add_argument(
        "--baseline",
        help="committed baseline JSON (default: newest BENCH_*.json "
        "in the repo root other than the fresh file)",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="relative regression that fails the gate (default 0.15)",
    )
    parser.add_argument(
        "--wall-threshold", type=float, default=DEFAULT_WALL_THRESHOLD,
        help="regression band for wall-median comparisons (default 0.50)",
    )
    parser.add_argument(
        "--gate", default=",".join(DEFAULT_GATED),
        help="comma-separated experiment keys to gate (default %s)"
        % ",".join(DEFAULT_GATED),
    )
    parser.add_argument(
        "--expect-improvement", metavar="EXPT:FACTOR[,...]",
        help="require fresh to beat the baseline by FACTOR on each "
        "experiment (e.g. e5:3,e9:3,e14:3); replaces the regression gate",
    )
    args = parser.parse_args(argv)

    baseline_path = args.baseline or find_baseline(args.fresh)
    if baseline_path is None:
        print("bench gate: no committed BENCH_*.json baseline; passing")
        return 0
    baseline = load_benchmarks(baseline_path)
    fresh = load_benchmarks(args.fresh)
    if args.expect_improvement:
        expectations = parse_expectations(args.expect_improvement)
        rows, failures = check_improvements(
            baseline, fresh, expectations, args.wall_threshold
        )
        print(
            "bench gate: %s (fresh) must improve on %s (baseline): %s"
            % (args.fresh, baseline_path, args.expect_improvement)
        )
    else:
        gated = [key.strip() for key in args.gate.split(",") if key.strip()]
        rows, failures = compare(
            baseline, fresh, gated, args.threshold, args.wall_threshold
        )
        print(
            "bench gate: %s (fresh) vs %s (baseline), threshold %.0f%%"
            % (args.fresh, baseline_path, 100 * args.threshold)
        )
    header = ("exp", "measure", "baseline", "fresh", "delta")
    widths = [
        max(len(str(header[i])), max(len(str(row[i])) for row in rows))
        for i in range(len(header))
    ] if rows else [len(h) for h in header]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))

    if failures:
        print()
        for failure in failures:
            print("FAIL %s" % failure)
        return 1
    if args.expect_improvement:
        print("bench gate: all expected improvements met")
    else:
        print("bench gate: all gated experiments within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
