#!/usr/bin/env python
"""Concurrency soak: seeded scheduler stress with determinism checks.

For every seed given on the command line (default: the CI chaos seeds),
the same multi-session workload runs **twice** on a fresh server — small
buffer pool (page-miss yields), chaos-rate fault injection, group commit
on — and the two runs must produce byte-identical scheduler traces,
identical per-session statement counts, and identical table contents.
Any divergence is a determinism bug; any unabsorbed error is a
robustness bug.  Run under ``REPRO_SANITIZE=1`` so the scheduler and
group-commit invariant checks are live.

Usage::

    REPRO_SANITIZE=1 python scripts/concurrency_soak.py 101 202 303
"""

import sys

sys.path.insert(0, "src")

from repro import Server, ServerConfig  # noqa: E402
from repro.engine import WorkloadScheduler  # noqa: E402
from repro.faults import FaultPlan, FaultRates  # noqa: E402

DEFAULT_SEEDS = (101, 202, 303)
N_SESSIONS = 5
STATEMENTS = 8
TABLE_ROWS = 4000
POOL_PAGES = 24

#: Chaos defaults, cranked ~10× so this short workload still draws
#: faults on every seed; the retry budgets keep them all absorbable.
SOAK_RATES = FaultRates(
    disk_read_error=0.03,
    disk_write_error=0.03,
    disk_latency=0.02,
    log_force_error=0.02,
    spill_write_error=0.03,
)


def build_server(seed):
    return Server(ServerConfig(
        start_buffer_governor=False,
        initial_pool_pages=POOL_PAGES,
        multiprogramming_level=3,
        fault_plan=FaultPlan(seed=seed, rates=SOAK_RATES),
    ))


def session_statements(k):
    def source(connection):
        # First half: scan-heavy mix, commits spaced past the idle
        # threshold (window collapses, force-per-commit path).
        for i in range(STATEMENTS // 2):
            yield (
                "SELECT count(*), sum(v) FROM t WHERE v = %d"
                % ((i + k) % 13)
            )
            yield (
                "INSERT INTO t VALUES (%d, %d)"
                % (100_000 + 1_000 * k + i, (k * 7 + i) % 13)
            )
        # Second half: back-to-back commits from every session — the
        # bursty arrivals that widen the window and batch forces.
        for i in range(STATEMENTS // 2, STATEMENTS):
            yield (
                "INSERT INTO t VALUES (%d, %d)"
                % (100_000 + 1_000 * k + i, (k * 7 + i) % 13)
            )
            yield (
                "INSERT INTO t VALUES (%d, %d)"
                % (200_000 + 1_000 * k + i, (k * 11 + i) % 13)
            )
    return source


def run_once(seed):
    server = build_server(seed)
    connection = server.connect()
    connection.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    server.load_table("t", [(i, i % 13) for i in range(TABLE_ROWS)])
    scheduler = WorkloadScheduler(server, seed=seed, switch_rate=0.5)
    for k in range(N_SESSIONS):
        scheduler.add_session("s%d" % k, session_statements(k))
    report = scheduler.run()
    rows = sorted(
        tuple(row)
        for row in connection.execute("SELECT id, v FROM t").rows
    )
    snapshot = {
        "report": report,
        "trace": scheduler.trace_lines(),
        "per_session": [
            (s.name, s.status, s.statements_run, s.statements_failed)
            for s in scheduler.sessions
        ],
        "rows": rows,
        "batches": server.group_commit.batches,
        "committed": server.group_commit.committed,
        "injected": server.fault_plan.injected,
    }
    return snapshot


#: Hot-row contention: every session hammers the same counter row, so
#: lock queues go deep and wakeup order exercises the seeded LOCK_WAKEUP
#: stream — which must replay byte-identically, like everything else.
HOT_SESSIONS = 4
HOT_STATEMENTS = 6
HOT_ROWS = 200


def hot_row_statements(k):
    def source(connection):
        for i in range(HOT_STATEMENTS):
            yield "UPDATE t SET v = v + 1 WHERE id = 0"
            yield (
                "SELECT count(*), sum(v) FROM t WHERE v >= %d"
                % ((i + k) % 7)
            )
    return source


def run_hot_row(seed):
    server = build_server(seed)
    connection = server.connect()
    connection.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    server.load_table("t", [(i, i % 13) for i in range(HOT_ROWS)])
    scheduler = WorkloadScheduler(server, seed=seed, switch_rate=0.5)
    for k in range(HOT_SESSIONS):
        scheduler.add_session("h%d" % k, hot_row_statements(k))
    report = scheduler.run()
    rows = sorted(
        tuple(row)
        for row in connection.execute("SELECT id, v FROM t").rows
    )
    return {
        "report": report,
        "trace": scheduler.trace_lines(),
        "per_session": [
            (s.name, s.status, s.statements_run, s.statements_failed)
            for s in scheduler.sessions
        ],
        "rows": rows,
        "lock_waits": server.lock_manager.waits,
        "lock_deadlocks": server.lock_manager.deadlocks,
        "injected": server.fault_plan.injected,
    }


def soak_hot_row(seed):
    first = run_hot_row(seed)
    second = run_hot_row(seed)
    problems = []
    for key in ("trace", "per_session", "rows", "report", "lock_waits",
                "lock_deadlocks", "injected"):
        if first[key] != second[key]:
            problems.append(
                "hot-row seed %d: %r differs between runs" % (seed, key)
            )
    if first["lock_waits"] == 0:
        problems.append(
            "hot-row seed %d: no lock waits — the scenario exercised "
            "nothing" % (seed,)
        )
    if first["report"]["aborted_sessions"]:
        problems.append(
            "hot-row seed %d: %d sessions aborted"
            % (seed, first["report"]["aborted_sessions"])
        )
    print(
        "hot-row seed %d: %d statements, %d lock waits, %d deadlocks, "
        "%d faults injected, trace %d bytes%s"
        % (
            seed, first["report"]["statements"], first["lock_waits"],
            first["lock_deadlocks"], first["injected"], len(first["trace"]),
            " [FAIL]" if problems else " [ok]",
        )
    )
    return problems


def soak(seed):
    first = run_once(seed)
    second = run_once(seed)
    problems = []
    for key in ("trace", "per_session", "rows", "report", "batches",
                "committed", "injected"):
        if first[key] != second[key]:
            problems.append("seed %d: %r differs between runs" % (seed, key))
    report = first["report"]
    expected = N_SESSIONS * STATEMENTS * 2
    if report["statements"] + report["statement_errors"] != expected:
        problems.append(
            "seed %d: %d statements + %d errors != %d issued"
            % (
                seed, report["statements"], report["statement_errors"],
                expected,
            )
        )
    if report["aborted_sessions"]:
        problems.append(
            "seed %d: %d sessions aborted" % (seed, report["aborted_sessions"])
        )
    print(
        "seed %d: %d statements, %d absorbed errors, %d switches, "
        "%d faults injected, %d commits in %d batches, trace %d bytes%s"
        % (
            seed, report["statements"], report["statement_errors"],
            report["switches"], first["injected"], first["committed"],
            first["batches"], len(first["trace"]),
            " [FAIL]" if problems else " [ok]",
        )
    )
    return problems


def main(argv):
    seeds = [int(arg) for arg in argv] or list(DEFAULT_SEEDS)
    problems = []
    for seed in seeds:
        problems.extend(soak(seed))
        problems.extend(soak_hot_row(seed))
    for problem in problems:
        print("FAIL %s" % problem)
    if problems:
        return 1
    print("concurrency soak: %d seeds, all deterministic" % len(seeds))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
