#!/usr/bin/env python
"""Metamorphic soak: seeded query generation under TLP + NoREC oracles.

For every seed given on the command line (default: the CI chaos seeds),
two adversarial harness configurations run — a quiescent sweep and a
chaos + scheduler-burst sweep — pushing generated statements through
the ternary-logic-partitioning and plan-variation oracles
(:mod:`repro.testgen`).  Each configuration runs **twice** and must
produce byte-identical run logs (oracle digests included); across both
configurations at least ``MIN_ORACLE_STATEMENTS`` generated statements
per seed must pass the oracles with **zero violations**.

On a violation the shrunken ``(seed, schema_seed, statement_index)``
triple plus the statement trace is written as a JSON artifact under
``REPRO_ARTIFACT_DIR`` (default ``artifacts/metamorphic``) — the CI
lane uploads that directory, and the triple replays locally as::

    PYTHONPATH=src python -c \
        "from repro.testgen import replay_triple; \
         replay_triple(SEED, SCHEMA_SEED, INDEX, raise_on_violation=True)"

Run under ``REPRO_SANITIZE=1`` so the runtime sanitizers are live.

Usage::

    REPRO_SANITIZE=1 python scripts/metamorphic_soak.py 101 202 303
"""

import json
import os
import sys

sys.path.insert(0, "src")

from repro.testgen import AdversarialHarness  # noqa: E402

DEFAULT_SEEDS = (101, 202, 303)

#: The acceptance floor: generated statements through the oracles, per
#: seed, summed over both configurations (each counted once — the
#: byte-identical second run re-checks the same statements).
MIN_ORACLE_STATEMENTS = 2000

#: Statement-slot budgets per configuration (~35% of slots are DML, the
#: rest oracle checks; sized so the floor clears with margin).
QUIESCENT_STATEMENTS = int(os.environ.get("REPRO_SOAK_STATEMENTS", "2400"))
CHAOS_STATEMENTS = max(200, QUIESCENT_STATEMENTS // 2)

ARTIFACT_DIR = os.environ.get(
    "REPRO_ARTIFACT_DIR", os.path.join("artifacts", "metamorphic")
)


def configurations(seed):
    """The per-seed harness configurations (schema varies across them)."""
    return (
        ("quiescent", dict(
            schema_seed=seed, statements=QUIESCENT_STATEMENTS,
        )),
        ("chaos+bursts", dict(
            schema_seed=seed + 17, statements=CHAOS_STATEMENTS,
            chaos=True, scheduler_bursts=True,
        )),
    )


def write_artifact(name, payload):
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    path = os.path.join(ARTIFACT_DIR, name)
    with open(path, "w") as handle:
        if isinstance(payload, str):
            handle.write(payload)
        else:
            json.dump(payload, handle, indent=2, sort_keys=True)
    return path


def soak(seed):
    problems = []
    oracle_statements = 0
    for label, kwargs in configurations(seed):
        first = AdversarialHarness(seed, **kwargs).run()
        second = AdversarialHarness(seed, **kwargs).run()
        oracle_statements += first.oracle_statements
        if first.log_text() != second.log_text():
            problems.append(
                "seed %d [%s]: run logs differ between runs" % (seed, label)
            )
            write_artifact(
                "log-divergence-seed%d-%s-run1.log"
                % (seed, label.replace("+", "-")),
                first.log_text(),
            )
            write_artifact(
                "log-divergence-seed%d-%s-run2.log"
                % (seed, label.replace("+", "-")),
                second.log_text(),
            )
        for violation in first.violations:
            problems.append(
                "seed %d [%s]: %s" % (seed, label, violation.describe()[:200])
            )
            path = write_artifact(
                "violation-seed%d-schema%d-stmt%d.json" % (
                    violation.seed, violation.schema_seed,
                    violation.statement_index,
                ),
                violation.to_dict(),
            )
            print("artifact: %s" % path)
        print("seed %d [%s]: %s" % (seed, label, first.summary()))
    if oracle_statements < MIN_ORACLE_STATEMENTS:
        problems.append(
            "seed %d: only %d oracle statements (< %d floor)"
            % (seed, oracle_statements, MIN_ORACLE_STATEMENTS)
        )
    return problems


def main(argv):
    seeds = [int(arg) for arg in argv] or list(DEFAULT_SEEDS)
    problems = []
    for seed in seeds:
        problems.extend(soak(seed))
    for problem in problems:
        print("FAIL %s" % problem)
    if problems:
        return 1
    print(
        "metamorphic soak: %d seeds, TLP + NoREC clean, "
        "twice-per-seed logs byte-identical" % len(seeds)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
