#!/usr/bin/env python
"""Replication soak: seeded chaos on a 1-primary/2-replica cluster.

For every seed given on the command line (default: the CI chaos seeds),
two scenarios run — a clean shutdown (every statement must ack and the
promoted replica must equal the abandoned primary row for row) and a
kill inside a batched ``wal.group_force`` (the full replicated crash
oracle: zero acknowledged loss, no invented commits, committed-exactly
against a single-node reference replay).  Each scenario runs **twice**
per seed and the two runs must match byte for byte: scheduler trace,
fault-plan log, promoted node's physical page fingerprint, acked and
surviving statement lists, and the shipping counters.  Run under
``REPRO_SANITIZE=1`` so the scheduler invariant checks are live.

Usage::

    REPRO_SANITIZE=1 python scripts/replication_soak.py 101 202 303
"""

import sys

sys.path.insert(0, "src")

from repro.engine.server import ServerConfig  # noqa: E402
from repro.faults import FaultPlan, FaultRates  # noqa: E402
from repro.recovery import CrashPoint  # noqa: E402
from repro.replication import (  # noqa: E402
    ReplicatedCrashHarness,
    ReplicationConfig,
    state_fingerprint,
)
from repro.storage.log import CRASH_GROUP_FORCE  # noqa: E402

DEFAULT_SEEDS = (101, 202, 303)
N_SESSIONS = 4
STATEMENTS = 6
POOL_PAGES = 24
CRASH_OCCURRENCE = 10

#: Device chaos on the primary plus network chaos on the links; the
#: replicas' own devices stay quiet (the cluster arms them so).
SOAK_RATES = FaultRates(
    disk_read_error=0.03,
    disk_write_error=0.03,
    disk_latency=0.02,
    log_force_error=0.02,
    spill_write_error=0.03,
    net_send_drop=0.10,
    net_partition=0.02,
)

SCHEMA = ["CREATE TABLE t (id INT PRIMARY KEY, v INT)"]
LOADS = [("t", [(i, i % 13) for i in range(400)])]


def make_config(seed):
    return ServerConfig(
        replication=ReplicationConfig(n_replicas=2),
        fault_plan=FaultPlan(seed=seed, rates=SOAK_RATES),
        start_buffer_governor=False,
        start_checkpoint_governor=False,
        initial_pool_pages=POOL_PAGES,
        multiprogramming_level=3,
    )


def make_sessions():
    return [
        (
            "s%d" % k,
            [
                "INSERT INTO t VALUES (%d, %d)"
                % (10_000 + 1_000 * k + i, (k * 7 + i) % 13)
                for i in range(STATEMENTS)
            ],
        )
        for k in range(N_SESSIONS)
    ]


def run_once(seed, crash):
    harness = ReplicatedCrashHarness(
        make_config(seed), SCHEMA, LOADS, make_sessions(),
        crash_point=(
            CrashPoint(CRASH_GROUP_FORCE, CRASH_OCCURRENCE) if crash
            else None
        ),
        seed=seed, tear_spare_tail=crash,
    )
    report = harness.run()
    cluster = harness.cluster
    promoted = cluster.controller.promoted
    return {
        "crashed": report.crashed,
        "promoted": report.promoted_name,
        "torn": report.torn_replica,
        "failover_us": report.failover_us,
        "acked": [sql for sql, __ in report.acked_statements],
        "survivors": sorted(report.survivors),
        "rows_verified": report.rows_verified,
        "trace": harness.scheduler.trace_lines(),
        "fault_log": cluster.primary.fault_plan.log_lines(),
        "fingerprint": state_fingerprint(promoted.server),
        "shipping": (
            cluster.primary.metrics.value("repl.frames_published"),
            cluster.publisher.ship_retries,
            tuple(
                (r.name, r.frames_received, r.records_applied)
                for r in cluster.replicas
            ),
            tuple(
                (link.name, link.delivered, link.drops, link.partitions)
                for link in cluster.network.links
            ),
        ),
        "primary_rows": sorted(
            tuple(row) for __, row in _primary_rows(cluster)
        ),
        "promoted_rows": _promoted_rows(promoted),
    }


def _primary_rows(cluster):
    table = cluster.primary.catalog.table("t")
    return list(table.storage.scan())


def _promoted_rows(promoted):
    conn = promoted.server.connect()
    try:
        return sorted(
            tuple(row) for row in conn.execute("SELECT id, v FROM t").rows
        )
    finally:
        conn.close()


COMPARED = (
    "crashed", "promoted", "torn", "failover_us", "acked", "survivors",
    "rows_verified", "trace", "fault_log", "fingerprint", "shipping",
    "promoted_rows",
)


def soak(seed, crash):
    label = "crash" if crash else "clean"
    first = run_once(seed, crash)
    second = run_once(seed, crash)
    problems = []
    for key in COMPARED:
        if first[key] != second[key]:
            problems.append(
                "%s seed %d: %r differs between runs" % (label, seed, key)
            )
    if crash:
        if not first["crashed"]:
            problems.append(
                "%s seed %d: the crash point never fired" % (label, seed)
            )
    else:
        expected = N_SESSIONS * STATEMENTS
        if len(first["acked"]) != expected:
            problems.append(
                "%s seed %d: %d/%d statements acked on a clean run"
                % (label, seed, len(first["acked"]), expected)
            )
        if first["promoted_rows"] != first["primary_rows"]:
            problems.append(
                "%s seed %d: promoted rows diverge from the abandoned "
                "primary" % (label, seed)
            )
    published, retries, replicas, links = first["shipping"]
    print(
        "%s seed %d: %d acked, %d survivors, %d frames shipped, "
        "%d ship retries, links %s, failover %s us, trace %d bytes%s"
        % (
            label, seed, len(first["acked"]), len(first["survivors"]),
            published, retries,
            "/".join(
                "%s sent=%d drop=%d part=%d" % (n.split(">")[-1], s, d, p)
                for n, s, d, p in links
            ),
            first["failover_us"], len(first["trace"]),
            " [FAIL]" if problems else " [ok]",
        )
    )
    return problems


def main(argv):
    seeds = [int(arg) for arg in argv] or list(DEFAULT_SEEDS)
    problems = []
    for seed in seeds:
        problems.extend(soak(seed, crash=False))
        problems.extend(soak(seed, crash=True))
    for problem in problems:
        print("FAIL %s" % problem)
    if problems:
        return 1
    print("replication soak: %d seeds, all deterministic" % len(seeds))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
