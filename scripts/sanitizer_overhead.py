#!/usr/bin/env python
"""Measure the runtime sanitizers' overhead on the scheduler workload.

Runs the same seeded multi-session workload twice — sanitizers off,
then on (pin-leak, quota, clock, and race-sanitizer taps all live) —
and reports the wall-clock ratio.  The sanitizers read no clock and
draw no randomness, so the two runs must also produce **byte-identical
scheduler traces**: enabling checking may cost time, but it must never
change behaviour.

Exit codes: 0 on success, 1 when the traces diverge or the overhead
exceeds ``--max-overhead`` (default 3.0x — the sanitized run may take
at most 3x the plain run's wall time).

Usage::

    python scripts/sanitizer_overhead.py            # default seed 101
    python scripts/sanitizer_overhead.py 202 --max-overhead 4
"""

import argparse
import sys
import time

sys.path.insert(0, "src")

from repro import Server, ServerConfig  # noqa: E402
from repro.engine import WorkloadScheduler  # noqa: E402

N_SESSIONS = 5
STATEMENTS = 10
TABLE_ROWS = 2000
POOL_PAGES = 24


def session_statements(k):
    def source(connection):
        for i in range(STATEMENTS):
            yield "UPDATE t SET v = v + 1 WHERE id = %d" % ((k + i) % 3)
            yield (
                "SELECT count(*), sum(v) FROM t WHERE v = %d"
                % ((i + k) % 13)
            )
            yield (
                "INSERT INTO t VALUES (%d, %d)"
                % (100_000 + 1_000 * k + i, (k * 7 + i) % 13)
            )
    return source


def run_workload(seed, sanitize):
    server = Server(ServerConfig(
        start_buffer_governor=False,
        initial_pool_pages=POOL_PAGES,
        multiprogramming_level=3,
    ), sanitize=sanitize)
    connection = server.connect()
    connection.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    server.load_table("t", [(i, i % 13) for i in range(TABLE_ROWS)])
    scheduler = WorkloadScheduler(server, seed=seed, switch_rate=0.5)
    for k in range(N_SESSIONS):
        scheduler.add_session("s%d" % k, session_statements(k))
    started = time.perf_counter()
    report = scheduler.run()
    elapsed = time.perf_counter() - started
    race_checks = server.races.checks if server.races is not None else 0
    return elapsed, scheduler.trace_lines(), report, race_checks


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("seed", nargs="?", type=int, default=101)
    parser.add_argument(
        "--max-overhead", type=float, default=3.0,
        help="fail when sanitized wall time exceeds this multiple of "
        "the plain run (default 3.0)",
    )
    args = parser.parse_args(argv)

    # Warm-up run so both measured runs see warm bytecode and caches.
    run_workload(args.seed, sanitize=False)
    plain_s, plain_trace, plain_report, __ = run_workload(
        args.seed, sanitize=False
    )
    checked_s, checked_trace, checked_report, race_checks = run_workload(
        args.seed, sanitize=True
    )

    ratio = checked_s / plain_s if plain_s > 0 else float("inf")
    print(
        "sanitizer overhead: seed %d, %d statements, %d race checks"
        % (args.seed, plain_report["statements"], race_checks)
    )
    print(
        "  plain     %.3fs\n  sanitized %.3fs  (%.2fx)"
        % (plain_s, checked_s, ratio)
    )

    failures = []
    if checked_trace != plain_trace:
        failures.append(
            "scheduler traces diverge between sanitized and plain runs"
        )
    if checked_report != plain_report:
        failures.append("run reports diverge between sanitized and plain runs")
    if race_checks == 0:
        failures.append("race sanitizer performed no checks — taps are dead")
    if ratio > args.max_overhead:
        failures.append(
            "overhead %.2fx exceeds the %.2fx budget"
            % (ratio, args.max_overhead)
        )
    for failure in failures:
        print("FAIL %s" % failure)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
