"""repro: a reproduction of *SQL Anywhere: A Holistic Approach to Database
Self-management* (Bowman et al., ICDE 2007).

A complete, self-managing relational database engine on a simulated
machine (virtual clock, DTT-modelled disks, simulated OS memory), built so
every self-management mechanism of the paper can be exercised and
measured:

>>> from repro import connect
>>> conn = connect()
>>> conn.execute("CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(20))")
>>> conn.execute("INSERT INTO t VALUES (1, 'hello')")
>>> list(conn.execute("SELECT name FROM t WHERE id = 1"))
[('hello',)]

See :mod:`repro.engine` for the server facade, and DESIGN.md in the
repository root for the full system inventory.
"""

from repro.engine import (
    Result,
    Server,
    ServerConfig,
    StatementOverrides,
    connect,
)

__version__ = "1.0.0"

__all__ = ["connect", "Server", "ServerConfig", "StatementOverrides",
           "Result", "__version__"]
