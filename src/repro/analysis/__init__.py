"""Correctness tooling: static invariant lints + runtime sanitizers.

``python -m repro.analysis src/`` runs the SIM lint suite; see
:mod:`repro.analysis.lint` for the framework, :mod:`repro.analysis.rules`
for the rules, and :mod:`repro.analysis.sanitizers` for the runtime
debug-mode checks wired into :class:`repro.engine.server.Server`.
"""

from repro.analysis.lint import Linter, Violation, main

__all__ = ["Linter", "Violation", "main"]
