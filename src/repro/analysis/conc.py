"""Interprocedural yield-safety and lockset analysis (SIM010–SIM013).

The workload scheduler made the engine cooperatively concurrent: the
only places a session can lose the baton are its yield points (buffer
pool misses, spill flushes, statement boundaries, lock and commit
parks).  Those points are therefore the engine's atomicity boundaries —
any multi-step mutation of shared state that straddles one without
protection is a latent race that the deterministic scheduler will
eventually interleave.  Generic linters cannot see this; these rules
can, because they run over a :class:`ProjectIndex` — a project-wide
call graph with two transitive reachability sets:

* **may-yield** — functions that can reach a baton *offer*
  (``yield_point`` / the pool's ``yield_hook`` / ``spill_yield`` or any
  park), directly or transitively.  Offers are suppressed inside
  ``critical_section()``.
* **may-park** — the strict subset that can reach an unconditional
  *park* (``wait_for_lock`` / ``wait_for_commit`` / ``_park``).  Parks
  hand the baton even inside a critical section, which is what makes
  them dangerous there.

Call resolution is name-based (a call ``x.f(...)`` resolves to every
project function named ``f``), deliberately over-approximate: a linter
would rather ask for a ``# noqa`` on safe code than miss a torn write.
Two damping heuristics keep the noise down: calls to plain-container
mutator methods (``append``/``pop``/…) and any method call on a
designated shared attribute are never treated as yield candidates —
those are builtin dict/list/set operations, not engine calls.

The rules:

* **SIM010** — no may-*park* call lexically inside a
  ``critical_section()`` / ``_critical()`` block.  A critical section
  suppresses switch offers, but a park hands the baton anyway — with
  suppression still armed, the resumed sibling can double-grant the
  lock table.
* **SIM011** — two writes to the same designated shared structure (lock
  table, version chains, dirty-page table, admission queue, pending
  commit tickets) must not straddle a may-yield call unless the call is
  critical-covered.  Coverage is interprocedural: a function whose
  every call site sits inside a critical block (or inside a covered
  function) is covered — this is how ``_grant_next``/``_install`` are
  recognised as safe.
* **SIM012** — lock-release discipline: a function that both acquires
  and releases locks must release on the unwind path (``finally``), and
  table-intention locks must be taken before row locks.
* **SIM013** — snapshot read paths take no row locks: a function that
  opens a snapshot must not acquire row locks, and ``repro.exec``
  operators must not touch the lock manager at all.

Suppression: ``# noqa: SIM01x`` on the reported line, or a ``--baseline``
file for the CLI (see :mod:`repro.analysis.lint`).  The runtime
counterpart of these rules is :mod:`repro.analysis.races`.
"""

import ast
import collections

from repro.analysis.lint import Rule, register

# --------------------------------------------------------------------- #
# the may-yield model
# --------------------------------------------------------------------- #

#: Attribute calls that *offer* the baton (a switch may happen).
YIELD_SEED_ATTRS = frozenset({
    "yield_point", "yield_hook", "spill_yield",
    "wait_for_lock", "wait_for_commit",
})

#: Attribute calls that *park* unconditionally — they hand the baton
#: even while a critical section suppresses switch offers.
PARK_SEED_ATTRS = frozenset({"wait_for_lock", "wait_for_commit", "_park"})

#: Context managers that open a critical section.
CRITICAL_ATTRS = frozenset({"critical_section", "_critical"})

#: Designated shared structures (attribute name -> human label): the
#: states whose multi-step mutations SIM011 and the runtime race
#: sanitizer guard.
SHARED_STRUCTURES = {
    "_waiters": "lock table",
    "_waits_for": "lock table",
    "_held": "lock table",
    "_table_locks": "lock table",
    "_held_tables": "lock table",
    "_versions": "version chains",
    "_snapshots": "version chains",
    "_pending": "pending-commit bookkeeping",
    "_dirty_rec_lsn": "dirty-page table",
    "_admitted": "admission queue",
    "_queue": "admission queue",
}

#: Builtin container mutators: a call to one of these counts as a
#: *write* when its receiver is a designated attribute, and is never a
#: yield candidate (dict/list/set/deque methods cannot reach the
#: scheduler).
CONTAINER_MUTATORS = frozenset({
    "append", "appendleft", "pop", "popleft", "remove", "clear", "add",
    "discard", "setdefault", "update", "insert", "extend",
})


def _last_name(node):
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _with_is_critical(node):
    for item in node.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Call)
            and _last_name(expr.func) in CRITICAL_ATTRS
        ):
            return True
    return False


class _CallRec:
    """One call site inside a function body."""

    __slots__ = ("name", "node", "pos", "critical", "in_finally",
                 "receiver", "on_designated", "is_mutator")

    def __init__(self, name, node, critical, in_finally, receiver):
        self.name = name
        self.node = node
        self.pos = (node.lineno, node.col_offset)
        self.critical = critical
        self.in_finally = in_finally
        self.receiver = receiver  # last identifier of the receiver chain
        #: Method call on a designated shared attribute — a builtin
        #: container operation, never an engine call.
        self.on_designated = False
        self.is_mutator = name in CONTAINER_MUTATORS

    def yield_candidate(self):
        return not self.on_designated and not self.is_mutator


class _WriteRec:
    """One mutation of a designated shared attribute."""

    __slots__ = ("attr", "group", "node", "pos", "critical")

    def __init__(self, attr, node, critical):
        self.attr = attr
        self.group = SHARED_STRUCTURES[attr]
        self.node = node
        self.pos = (node.lineno, node.col_offset)
        self.critical = critical


class FunctionScan:
    """Lexical facts about one function body (nested defs excluded)."""

    def __init__(self, node):
        self.node = node
        self.calls = []
        self.writes = []
        self._scan_body(node.body, critical=0, in_finally=False)

    # -- collection ---------------------------------------------------- #

    def _scan_body(self, stmts, critical, in_finally):
        for stmt in stmts:
            self._scan(stmt, critical, in_finally)

    def _scan(self, node, critical, in_finally):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return  # nested scopes are indexed as their own functions
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = critical + (1 if _with_is_critical(node) else 0)
            for item in node.items:
                self._scan(item, critical, in_finally)
            self._scan_body(node.body, inner, in_finally)
            return
        if isinstance(node, ast.Try):
            self._scan_body(node.body, critical, in_finally)
            for handler in node.handlers:
                self._scan(handler, critical, in_finally)
            self._scan_body(node.orelse, critical, in_finally)
            self._scan_body(node.finalbody, critical, True)
            return
        if isinstance(node, ast.Call):
            self._record_call(node, critical, in_finally)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                self._record_store(target, critical)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._record_store(target, critical)
        for child in ast.iter_child_nodes(node):
            self._scan(child, critical, in_finally)

    def _record_call(self, node, critical, in_finally):
        name = _last_name(node.func)
        if name is None:
            return
        receiver = None
        if isinstance(node.func, ast.Attribute):
            receiver = _last_name(node.func.value)
        rec = _CallRec(name, node, critical > 0, in_finally, receiver)
        if (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Attribute)
            and node.func.value.attr in SHARED_STRUCTURES
        ):
            rec.on_designated = True
            if rec.is_mutator:
                self.writes.append(
                    _WriteRec(node.func.value.attr, node, critical > 0)
                )
        self.calls.append(rec)

    def _record_store(self, target, critical):
        """``self._x = ...`` / ``self._x[k] = ...`` / ``del self._x[k]``."""
        node = target
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute) and node.attr in SHARED_STRUCTURES:
            self.writes.append(_WriteRec(node.attr, target, critical))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_store(elt, critical)


class FunctionInfo:
    """Project-index entry for one function definition."""

    __slots__ = ("qualname", "name", "calls")

    def __init__(self, qualname, name, calls):
        self.qualname = qualname
        self.name = name
        #: [(callee name, yield-candidate, critical)] — enough for the
        #: reachability and coverage fixpoints.
        self.calls = calls


class ProjectIndex:
    """Call graph + transitive may-yield / may-park / coverage sets."""

    def __init__(self):
        self.functions = {}                       # qualname -> FunctionInfo
        self.by_name = collections.defaultdict(list)   # name -> [qualname]
        #: name -> [(caller qualname, call is critical-lexical)]
        self.call_sites = collections.defaultdict(list)
        self.may_yield = set()
        self.may_park = set()
        self.covered = set()

    # -- construction --------------------------------------------------- #

    @classmethod
    def build(cls, modules):
        """``modules`` is an iterable of ``(module_name, ast_tree)``."""
        index = cls()
        for module_name, tree in modules:
            index._index_scope(tree.body, module_name)
        index._propagate()
        return index

    def _index_scope(self, stmts, prefix):
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = "%s.%s" % (prefix, stmt.name)
                scan = FunctionScan(stmt)
                calls = [
                    (c.name, c.yield_candidate(), c.critical)
                    for c in scan.calls
                ]
                info = FunctionInfo(qualname, stmt.name, calls)
                self.functions[qualname] = info
                self.by_name[stmt.name].append(qualname)
                for name, candidate, critical in calls:
                    if candidate:
                        self.call_sites[name].append((qualname, critical))
                self._index_scope(stmt.body, qualname)
            elif isinstance(stmt, ast.ClassDef):
                self._index_scope(stmt.body, "%s.%s" % (prefix, stmt.name))
            elif hasattr(stmt, "body"):
                for body in ("body", "orelse", "finalbody"):
                    inner = getattr(stmt, body, None)
                    if isinstance(inner, list):
                        self._index_scope(inner, prefix)

    def _propagate(self):
        self.may_yield = self._reach(YIELD_SEED_ATTRS)
        self.may_park = self._reach(PARK_SEED_ATTRS)
        self._fix_coverage()

    def _reach(self, seeds):
        """Functions that can transitively reach a seed attribute call."""
        reached = {
            q for q, info in self.functions.items() if info.name in seeds
        }
        changed = True
        while changed:
            changed = False
            for qualname, info in self.functions.items():
                if qualname in reached:
                    continue
                for name, candidate, __ in info.calls:
                    if not candidate:
                        continue
                    if name in seeds or any(
                        callee in reached for callee in self.by_name[name]
                    ):
                        reached.add(qualname)
                        changed = True
                        break
        return reached

    def _fix_coverage(self):
        """Greatest fixpoint: a function is critical-covered when every
        call site of its name is lexically critical or inside a covered
        function.  Functions with no known call sites (entry points)
        are never covered."""
        covered = {
            q for q, info in self.functions.items()
            if self.call_sites[info.name]
        }
        changed = True
        while changed:
            changed = False
            for qualname in list(covered):
                info = self.functions[qualname]
                for caller, critical in self.call_sites[info.name]:
                    if not critical and caller not in covered:
                        covered.discard(qualname)
                        changed = True
                        break
        self.covered = covered

    # -- queries -------------------------------------------------------- #

    def name_may_yield(self, name):
        return name in YIELD_SEED_ATTRS or any(
            q in self.may_yield for q in self.by_name.get(name, ())
        )

    def name_may_park(self, name):
        return name in PARK_SEED_ATTRS or any(
            q in self.may_park for q in self.by_name.get(name, ())
        )

    def is_covered(self, qualname):
        return qualname in self.covered


def build_index(modules):
    return ProjectIndex.build(modules)


# --------------------------------------------------------------------- #
# rule plumbing
# --------------------------------------------------------------------- #


def _qualname_of(context, node):
    """Dotted project name of a function node (parents are linked by the
    linter's walk before function nodes are dispatched)."""
    parts = [node.name]
    current = getattr(node, "parent", None)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef)):
            parts.append(current.name)
        current = getattr(current, "parent", None)
    parts.append(context.module_name)
    return ".".join(reversed(parts))


def _is_lock_receiver(call):
    """Whether a call's receiver looks like the lock manager."""
    return call.receiver is not None and "lock" in call.receiver


class ConcRule(Rule):
    """Base for the interprocedural rules: per-function dispatch with a
    :class:`FunctionScan` and the shared :class:`ProjectIndex`."""

    def _check(self, node):
        project = self.context.project
        if project is None:
            return
        self.check_function(
            node, FunctionScan(node), project,
            _qualname_of(self.context, node),
        )

    visit_FunctionDef = _check
    visit_AsyncFunctionDef = _check

    def check_function(self, node, scan, project, qualname):
        raise NotImplementedError


# --------------------------------------------------------------------- #
# SIM010 — no park inside a critical section
# --------------------------------------------------------------------- #


@register
class NoParkInCriticalRule(ConcRule):
    rule_id = "SIM010"
    summary = (
        "no may-park call inside critical_section(): a park hands the "
        "baton with switch suppression armed (lock-table double grant)"
    )

    def check_function(self, node, scan, project, qualname):
        for call in scan.calls:
            if not call.critical or not call.yield_candidate():
                continue
            if project.name_may_park(call.name):
                self.report(
                    call.node,
                    "call to %r inside a critical section may park the "
                    "session; the resumed sibling runs with switch "
                    "suppression armed and can double-grant the lock "
                    "table" % (call.name,),
                )


# --------------------------------------------------------------------- #
# SIM011 — shared-structure mutations must not straddle a yield
# --------------------------------------------------------------------- #


@register
class TornSharedWriteRule(ConcRule):
    rule_id = "SIM011"
    summary = (
        "multi-step mutations of designated shared structures must not "
        "straddle an uncovered may-yield call"
    )

    def check_function(self, node, scan, project, qualname):
        if len(scan.writes) < 2 or project.is_covered(qualname):
            return
        reported = set()
        for call in scan.calls:
            if call.critical or not call.yield_candidate():
                continue
            if not (
                call.name in YIELD_SEED_ATTRS
                or project.name_may_yield(call.name)
            ):
                continue
            for group in self._straddled_groups(scan.writes, call.pos):
                if (group, call.pos) in reported:
                    continue
                reported.add((group, call.pos))
                before, after = self._bracketing_writes(
                    scan.writes, call.pos, group
                )
                self.report(
                    call.node,
                    "writes to the %s (lines %d and %d) straddle this "
                    "may-yield call to %r without critical-section "
                    "coverage; a baton switch here leaves the structure "
                    "torn" % (group, before, after, call.name),
                )

    def _straddled_groups(self, writes, pos):
        groups = set()
        for w1 in writes:
            if w1.pos >= pos:
                continue
            for w2 in writes:
                if w2.pos > pos and w2.group == w1.group:
                    groups.add(w1.group)
        return sorted(groups)

    def _bracketing_writes(self, writes, pos, group):
        before = max(w.pos for w in writes if w.pos < pos and w.group == group)
        after = min(w.pos for w in writes if w.pos > pos and w.group == group)
        return before[0], after[0]


# --------------------------------------------------------------------- #
# SIM012 — lock release and ordering discipline
# --------------------------------------------------------------------- #


@register
class LockDisciplineRule(ConcRule):
    rule_id = "SIM012"
    summary = (
        "lock acquire/release pairs must release in a finally; table "
        "intention locks come before row locks"
    )

    def check_function(self, node, scan, project, qualname):
        acquires = [
            c for c in scan.calls
            if (c.name == "acquire" and _is_lock_receiver(c))
            or c.name == "acquire_table"
        ]
        releases = [c for c in scan.calls if c.name == "release_all"]
        if acquires and releases and not any(
            c.in_finally for c in releases
        ):
            self.report(
                releases[0].node,
                "release_all is not on the unwind path: an error between "
                "acquire and release leaks the locks — release in a "
                "finally block",
            )
        row = [
            c for c in scan.calls
            if c.name == "acquire" and _is_lock_receiver(c)
        ]
        table = [c for c in scan.calls if c.name == "acquire_table"]
        if row and table and min(c.pos for c in row) < min(
            c.pos for c in table
        ):
            self.report(
                row[0].node,
                "row lock acquired before the table intention lock; the "
                "multi-granularity protocol requires the IX table lock "
                "first so DDL drains see in-flight writers",
            )


# --------------------------------------------------------------------- #
# SIM013 — snapshot read paths take no row locks
# --------------------------------------------------------------------- #


@register
class SnapshotReadLockRule(ConcRule):
    rule_id = "SIM013"
    summary = (
        "snapshot read paths must not acquire row locks (readers never "
        "queue behind writers)"
    )

    def check_function(self, node, scan, project, qualname):
        lock_calls = [
            c for c in scan.calls
            if c.name in ("acquire", "acquire_table")
            and _is_lock_receiver(c)
        ]
        if self.context.in_package("repro.exec"):
            for call in lock_calls:
                self.report(
                    call.node,
                    "operator code must not touch the lock manager: the "
                    "read path is snapshot-resolved and lock-free",
                )
            return
        opens = [c for c in scan.calls if c.name == "open_snapshot"]
        rows = [c for c in lock_calls if c.name == "acquire"]
        if opens and rows:
            self.report(
                rows[0].node,
                "function opens a snapshot and acquires a row lock; "
                "snapshot readers must stay lock-free or they queue "
                "behind the writers the snapshot exists to avoid",
            )
