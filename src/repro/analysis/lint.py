"""A pyflakes-style AST lint framework for engine invariants.

The paper's thesis is that self-management works only when every
subsystem obeys shared accounting invariants — pinned frames, governor
quotas, one simulated clock.  Generic linters cannot see those
conventions, so this module provides a small visitor framework on which
repo-specific rules (:mod:`repro.analysis.rules`) are registered:

* each rule is a class with ``visit_<NodeType>`` methods, exactly like
  :class:`ast.NodeVisitor`, registered through :func:`register`;
* one walk of each module's AST dispatches every node to every active
  rule (pyflakes-style: rules never re-walk the tree themselves);
* nodes carry ``.parent`` links and rules receive a
  :class:`ModuleContext` (dotted module name, source lines), so checks
  like "the next sibling statement must be a ``try/finally``" are cheap;
* ``# noqa`` / ``# noqa: SIM003`` comments suppress findings per line.

Run it as ``python -m repro.analysis src/`` — output is
``file:line:col: RULE message`` and the exit code is 0 only on a clean
tree, so it slots next to ruff in CI.
"""

import ast
import os
import re

#: rule_id -> rule class, in registration order.
RULE_REGISTRY = {}

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)


def register(cls):
    """Class decorator adding a rule to the global registry."""
    rule_id = cls.rule_id
    if rule_id in RULE_REGISTRY:
        raise ValueError("duplicate rule id %r" % (rule_id,))
    RULE_REGISTRY[rule_id] = cls
    return cls


class Violation:
    """One finding: where, which rule, and why."""

    __slots__ = ("path", "line", "col", "rule_id", "message")

    def __init__(self, path, line, col, rule_id, message):
        self.path = path
        self.line = line
        self.col = col
        self.rule_id = rule_id
        self.message = message

    def render(self):
        return "%s:%d:%d: %s %s" % (
            self.path, self.line, self.col, self.rule_id, self.message
        )

    def fingerprint(self):
        """Position-independent identity used by ``--baseline`` files:
        line/col drift as code moves, path+rule+message do not."""
        return "%s:%s:%s" % (self.path, self.rule_id, self.message)

    def __repr__(self):
        return "Violation(%s)" % (self.render(),)


class ModuleContext:
    """What a rule may know about the module being checked."""

    def __init__(self, path, module_name, source, project=None):
        self.path = path
        self.module_name = module_name
        self.source = source
        self.lines = source.splitlines()
        #: :class:`repro.analysis.conc.ProjectIndex` when linting a whole
        #: tree; a single-module index otherwise (interprocedural rules
        #: then only see this module's call graph).
        self.project = project

    def in_package(self, *prefixes):
        """Whether the module lives under any of the dotted ``prefixes``."""
        for prefix in prefixes:
            if self.module_name == prefix or self.module_name.startswith(
                prefix + "."
            ):
                return True
        return False


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id`` and ``summary`` and define
    ``visit_<NodeType>`` methods; :meth:`report` records a violation at a
    node.  A rule may opt out of whole modules by overriding
    :meth:`applies_to`.
    """

    rule_id = None
    summary = None

    def __init__(self, context, reporter):
        self.context = context
        self._reporter = reporter

    @classmethod
    def applies_to(cls, context):
        return True

    def report(self, node, message):
        self._reporter(
            Violation(
                self.context.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0) + 1,
                self.rule_id,
                message,
            )
        )


class Linter:
    """Walks one module's AST, dispatching nodes to every active rule."""

    def __init__(self, select=None, project=None):
        self.select = set(select) if select is not None else None
        self.project = project

    def _active_rules(self, context, reporter):
        rules = []
        for rule_id, cls in RULE_REGISTRY.items():
            if self.select is not None and rule_id not in self.select:
                continue
            if cls.applies_to(context):
                rules.append(cls(context, reporter))
        return rules

    def check_source(self, source, path="<string>", module_name=None):
        """Lint one source string; returns a list of :class:`Violation`."""
        if module_name is None:
            module_name = module_name_for(path)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Violation(
                    path, exc.lineno or 1, (exc.offset or 0) + 1, "E901",
                    "syntax error: %s" % (exc.msg,),
                )
            ]
        project = self.project
        if project is None:
            # Standalone check (tests, snippets): the module is its own
            # interprocedural universe.
            from repro.analysis import conc

            project = conc.build_index([(module_name, tree)])
        context = ModuleContext(path, module_name, source, project=project)
        violations = []
        rules = self._active_rules(context, violations.append)
        if not rules:
            return []
        # One walk: set parent links and dispatch to per-type handlers.
        handlers = {}

        def handlers_for(node_type):
            cached = handlers.get(node_type)
            if cached is None:
                method = "visit_%s" % (node_type.__name__,)
                cached = [
                    getattr(rule, method)
                    for rule in rules
                    if hasattr(rule, method)
                ]
                handlers[node_type] = cached
            return cached

        stack = [tree]
        tree.parent = None
        while stack:
            node = stack.pop()
            for handler in handlers_for(type(node)):
                handler(node)
            for child in ast.iter_child_nodes(node):
                child.parent = node
                stack.append(child)
        return self._apply_noqa(context, violations)

    def check_file(self, path):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        return self.check_source(source, path=path)

    def check_paths(self, paths):
        """Lint files and directories (recursively); returns violations
        sorted by (path, line, col, rule).  All files are indexed first
        so the interprocedural rules see the whole tree's call graph."""
        files = []
        for path in paths:
            if os.path.isdir(path):
                for root, dirs, names in os.walk(path):
                    dirs.sort()
                    for name in sorted(names):
                        if name.endswith(".py"):
                            files.append(os.path.join(root, name))
            else:
                files.append(path)
        if self.project is None:
            self.project = self._build_project(files)
        violations = []
        for path in files:
            violations.extend(self.check_file(path))
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
        return violations

    @staticmethod
    def _build_project(files):
        from repro.analysis import conc

        modules = []
        for path in files:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    tree = ast.parse(handle.read(), filename=path)
            except (OSError, SyntaxError):
                continue  # check_file reports these per-file
            modules.append((module_name_for(path), tree))
        return conc.build_index(modules)

    # ------------------------------------------------------------------ #
    # suppression
    # ------------------------------------------------------------------ #

    def _apply_noqa(self, context, violations):
        kept = []
        for violation in violations:
            if violation.line <= len(context.lines):
                match = _NOQA_RE.search(context.lines[violation.line - 1])
                if match is not None:
                    codes = match.group("codes")
                    if codes is None:
                        continue  # bare noqa: suppress everything
                    suppressed = {
                        code.strip().upper()
                        for code in codes.split(",")
                        if code.strip()
                    }
                    if violation.rule_id in suppressed:
                        continue
            kept.append(violation)
        return kept


def module_name_for(path):
    """Dotted module name for ``path`` (rooted at the ``repro`` package,
    when the file lives under one)."""
    normalized = os.path.normpath(path).replace(os.sep, "/")
    parts = normalized.split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    return ".".join(parts) if parts else "<module>"


def main(argv=None):
    """CLI: ``python -m repro.analysis [--select RULES] [--list-rules]
    paths...`` — prints findings, returns the exit code (0 clean, 1
    violations found, 2 usage error)."""
    import argparse

    # The imports register the rules as a side effect.
    from repro.analysis import conc as _conc  # noqa
    from repro.analysis import rules as _rules  # noqa

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Engine-invariant lint suite (SIM rules).",
    )
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument(
        "--select",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    parser.add_argument(
        "--baseline",
        help="file of accepted violation fingerprints to suppress "
        "(one per line, '#' comments allowed)",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule_id, cls in sorted(RULE_REGISTRY.items()):
            print("%s  %s" % (rule_id, cls.summary))
        return 0
    if not args.paths:
        parser.print_usage()
        return 2
    for path in args.paths:
        if not os.path.exists(path):
            print("error: no such path: %s" % (path,))
            return 2
    select = None
    if args.select:
        select = [code.strip().upper() for code in args.select.split(",")]
        unknown = [code for code in select if code not in RULE_REGISTRY]
        if unknown:
            print("error: unknown rule(s): %s" % (", ".join(unknown),))
            return 2
    baseline = set()
    if args.baseline:
        if not os.path.exists(args.baseline):
            print("error: no such baseline file: %s" % (args.baseline,))
            return 2
        with open(args.baseline, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line and not line.startswith("#"):
                    baseline.add(line)
    linter = Linter(select=select)
    violations = linter.check_paths(args.paths)
    stale = []
    if baseline:
        # Drift guard: a baseline entry matching no current violation is
        # stale — the finding was fixed (or its message changed) and the
        # suppression must be retired, or it will silently mask a future
        # reintroduction at the same spot.  Only entries this run could
        # have produced count: the rule must be selected and the path
        # under one of the scanned roots.
        current = {v.fingerprint() for v in violations}
        active = select if select else sorted(RULE_REGISTRY)
        roots = tuple(path.rstrip("/") for path in args.paths)
        stale = sorted(
            entry for entry in baseline
            if entry not in current
            and entry.startswith(roots)
            and any(":%s:" % rule_id in entry for rule_id in active)
        )
        violations = [
            v for v in violations if v.fingerprint() not in baseline
        ]
    for violation in violations:
        print(violation.render())
    if violations:
        print(
            "%d violation%s found"
            % (len(violations), "" if len(violations) == 1 else "s")
        )
    if stale:
        print(
            "stale baseline: %d fingerprint%s in %s match no current "
            "violation (fixed or reworded); remove %s:"
            % (
                len(stale), "" if len(stale) == 1 else "s", args.baseline,
                "it" if len(stale) == 1 else "them",
            )
        )
        for entry in stale:
            print("  - %s" % entry)
    if violations or stale:
        return 1
    return 0
