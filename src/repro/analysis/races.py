"""Deterministic lockset/interleaving race sanitizer (``REPRO_SANITIZE=1``).

The runtime counterpart of the SIM010–SIM013 static rules
(:mod:`repro.analysis.conc`).  The cooperative scheduler makes races
exactly reproducible: there is one baton, sessions interleave only at
yield points, and the interleaving is seeded.  So instead of the happens-
before machinery a preemptive detector needs, this sanitizer only has to
track *open access spans*:

* engine code brackets each multi-step mutation of a designated shared
  structure (lock table, version chains, dirty-page table, admission
  queue, group-commit tickets) in a span — ``begin(structure, key, mode,
  ...)`` / ``end(span)``;
* a span records its **lockset**: the guard tokens protecting the
  mutation — an implicit ``critical`` token while the scheduler is in a
  ``critical_section()``, plus the lock keys the owning transaction
  holds (via the lock manager's ``guard_tokens``);
* because the engine is single-baton, a *foreign* span that is still
  open when we begin ours proves the owner yielded mid-mutation.  If
  either span writes and the locksets are disjoint, that is a race: two
  sessions interleaved inside the same structure with nothing ordering
  them.  :class:`RaceInterleavingError` is raised at the second access —
  deterministically, on the same statement, for the same seed.

The sanitizer is inert unless an armed scheduler with a running session
stands behind it, draws no randomness and reads no clock, so enabling it
preserves byte-identical scheduler traces.
"""

import contextlib

from repro.analysis.sanitizer_base import SanitizerError

#: Implicit guard token held while the scheduler is in a critical section.
CRITICAL_TOKEN = "critical"


class RaceInterleavingError(SanitizerError):
    """Two sessions interleaved inside a shared structure with disjoint
    locksets — a torn multi-step mutation."""


class AccessSpan:
    """One open access to ``(structure, key)`` by one session."""

    __slots__ = ("structure", "key", "mode", "guards", "session")

    def __init__(self, structure, key, mode, guards, session):
        self.structure = structure
        self.key = key
        self.mode = mode          # "r" or "w"
        self.guards = guards      # frozenset of lockset tokens
        self.session = session    # owning session name

    def describe(self):
        guards = ",".join(sorted(str(g) for g in self.guards)) or "none"
        return "%s[%r] %s by %s (guards: %s)" % (
            self.structure, self.key, self.mode, self.session, guards
        )


class RaceSanitizer:
    """Span-based race detector over the designated shared structures."""

    def __init__(self, scheduler_fn, lock_guards_fn=None):
        self._scheduler_fn = scheduler_fn
        self._lock_guards_fn = lock_guards_fn
        self._open = {}           # (structure, key) -> [AccessSpan]
        self.checks = 0

    # -- span lifecycle ------------------------------------------------- #

    def begin(self, structure, key, mode, txn_id=None, guards=()):
        """Open an access span; returns ``None`` (inert) when no armed
        scheduler session stands behind the call."""
        scheduler = self._scheduler_fn()
        if scheduler is None:
            return None
        session = scheduler.running_session()
        if session is None:
            return None
        tokens = set(guards)
        if scheduler.in_critical_section():
            tokens.add(CRITICAL_TOKEN)
        if txn_id is not None and self._lock_guards_fn is not None:
            tokens.update(self._lock_guards_fn(txn_id))
        span = AccessSpan(structure, key, mode, frozenset(tokens),
                          session.name)
        self._check(span)
        self._open.setdefault((structure, key), []).append(span)
        return span

    def end(self, span):
        if span is None:
            return
        spans = self._open.get((span.structure, span.key))
        if spans is not None:
            try:
                spans.remove(span)
            except ValueError:
                pass
            if not spans:
                del self._open[(span.structure, span.key)]

    @contextlib.contextmanager
    def access(self, structure, key, mode, txn_id=None, guards=()):
        span = self.begin(structure, key, mode, txn_id=txn_id, guards=guards)
        try:
            yield span
        finally:
            self.end(span)

    def open_spans(self):
        return sum(len(spans) for spans in self._open.values())

    # -- detection ------------------------------------------------------ #

    def _check(self, span):
        self.checks += 1
        for other in self._open.get((span.structure, span.key), ()):
            if other.session == span.session:
                continue
            if other.mode == "r" and span.mode == "r":
                continue
            if other.guards & span.guards:
                continue
            # The foreign span is still open, so its owner yielded
            # mid-mutation; disjoint locksets mean nothing ordered the
            # two accesses.
            raise RaceInterleavingError(
                "race on %s[%r]: %s interleaves with open %s"
                % (span.structure, span.key, span.describe(),
                   other.describe())
            )


def tap(races, structure, key, mode, txn_id=None, guards=()):
    """Null-safe span context: engine call sites use this so disabled
    sanitizers cost one ``is None`` check."""
    if races is None:
        return contextlib.nullcontext()
    return races.access(structure, key, mode, txn_id=txn_id, guards=guards)
