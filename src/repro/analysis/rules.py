"""Repo-specific lint rules (the SIM suite).

Each rule encodes one engine invariant that otherwise holds only by
convention:

* **SIM001** — engine code must not read the wall clock or use the
  process-global random generator.  All time flows through
  :class:`repro.common.clock.SimClock` and all randomness through seeded
  ``random.Random(seed)`` instances, or determinism (and experiment
  reproducibility, and resume) silently breaks.
* **SIM002** — no ``==``/``!=`` on float costs and selectivities: cost
  arithmetic accumulates rounding error, so exact comparison is always a
  latent bug.  Compare with tolerances or inequalities.
* **SIM003** — in ``repro.exec``, ``repro.storage``, and
  ``repro.engine``, every call that
  pins a buffer-pool frame (``fetch``/``new_page``/…) must be guarded:
  the pinned frame is either wrapped in ``pool.pin_guard(...)`` or the
  pinning assignment is immediately followed by a ``try/finally`` whose
  ``finally`` unpins.  Unguarded pins leak when an error (e.g.
  :class:`MemoryQuotaExceededError` mid-join) unwinds the stack.
* **SIM004** — metric names must be registered as literals matching the
  ``subsystem.counter_name`` convention of
  :mod:`repro.profiling.metrics`, so the registry's namespace stays
  greppable and collision-checked.
* **SIM005** — operator classes must implement the full operator
  protocol: every ``Operator`` subclass defines ``execute``, and any
  class exposing ``memory_pages`` must also implement
  ``relinquish_memory`` (and vice versa) — a consumer that advertises
  memory but cannot relinquish starves the memory governor's reclaim.
  During the batch migration the two protocols must not mix: a class
  implementing ``execute_batches`` must keep a row ``execute`` (the
  cursor and snapshot-resolution surfaces stay row-at-a-time), and an
  ``execute_batches`` body must not call ``.execute()`` directly except
  through the explicit ``rows_to_batches`` shim.
* **SIM006** — no mutable default arguments.
* **SIM007** — no silently swallowed broad exceptions
  (``except:``/``except Exception:`` with a body of only ``pass``).
* **SIM008** — ``except`` blocks that catch injected-fault errors
  (:class:`repro.common.errors.FaultError` and friends) must either
  re-raise or account the fault (a counter ``inc``, a plan
  ``record``/``note_retry``/…).  A fault silently absorbed never shows
  up in ``faults.*`` metrics, which breaks both the chaos-CI accounting
  and same-seed replay comparisons.
* **SIM009** — catalog lock discipline: in ``repro.engine``, a function
  that mutates the catalog (``add_table``/``drop_table``/``add_index``/
  ``drop_index``) must take the table-exclusive DDL lock in the same
  function (a call to ``acquire_table`` or the ``_ddl_lock`` helper).
  Unlocked catalog mutations race in-flight DML under the workload
  scheduler: a writer parked at a yield point resumes into a schema that
  changed underneath it.
"""

import ast
import re

from repro.analysis.lint import Rule, register

# --------------------------------------------------------------------- #
# shared helpers
# --------------------------------------------------------------------- #


def _rightmost_name(node):
    """The trailing identifier of a Name/Attribute chain, or None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _enclosing_statement(node):
    """Climb parent links to the nearest statement node."""
    current = node
    while current is not None and not isinstance(current, ast.stmt):
        current = getattr(current, "parent", None)
    return current


def _next_sibling(stmt):
    """The statement following ``stmt`` in its enclosing body, or None."""
    parent = getattr(stmt, "parent", None)
    if parent is None:
        return None
    for field in ("body", "orelse", "finalbody"):
        body = getattr(parent, field, None)
        if isinstance(body, list):
            for index, candidate in enumerate(body):
                if candidate is stmt:
                    if index + 1 < len(body):
                        return body[index + 1]
                    return None
    return None


# --------------------------------------------------------------------- #
# SIM001 — simulated time and seeded randomness only
# --------------------------------------------------------------------- #


@register
class NoWallClockRule(Rule):
    rule_id = "SIM001"
    summary = (
        "no wall-clock or process-global randomness in engine code; use "
        "SimClock and seeded random.Random instances"
    )

    #: random functions allowed: only constructing a seeded generator.
    ALLOWED_RANDOM = ("Random",)
    #: method names that read the wall clock when called.
    WALL_CLOCK_CALLS = ("now", "utcnow", "today")

    def visit_Import(self, node):
        for alias in node.names:
            if alias.name == "time" or alias.name.startswith("time."):
                self.report(
                    node,
                    "import of wall-clock module 'time'; engine time must "
                    "flow through repro.common.clock.SimClock",
                )

    def visit_ImportFrom(self, node):
        if node.module == "time":
            self.report(
                node,
                "import from wall-clock module 'time'; engine time must "
                "flow through repro.common.clock.SimClock",
            )
        elif node.module == "random":
            for alias in node.names:
                if alias.name not in self.ALLOWED_RANDOM:
                    self.report(
                        node,
                        "'from random import %s' uses the process-global "
                        "generator; construct a seeded random.Random(seed)"
                        % (alias.name,),
                    )

    def visit_Call(self, node):
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        receiver = func.value
        if isinstance(receiver, ast.Name):
            if receiver.id == "time":
                self.report(
                    node,
                    "time.%s() reads the wall clock; charge the SimClock "
                    "instead" % (func.attr,),
                )
                return
            if receiver.id == "random" and func.attr not in self.ALLOWED_RANDOM:
                self.report(
                    node,
                    "random.%s() uses the unseeded process-global "
                    "generator; use a seeded random.Random(seed) instance"
                    % (func.attr,),
                )
                return
        if func.attr in self.WALL_CLOCK_CALLS:
            self.report(
                node,
                "%s.%s() reads the wall clock; simulated components must "
                "use SimClock.now" % (_rightmost_name(receiver) or "?",
                                      func.attr),
            )


# --------------------------------------------------------------------- #
# SIM002 — no float equality on costs/selectivities
# --------------------------------------------------------------------- #


@register
class NoFloatEqualityRule(Rule):
    rule_id = "SIM002"
    summary = "no == / != against float literals or cost/selectivity values"

    NAME_RE = re.compile(r"(^|_)(cost|costs|selectivity|selectivities)($|_)")

    def visit_Compare(self, node):
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        for operand in [node.left] + list(node.comparators):
            if isinstance(operand, ast.Constant) and isinstance(
                operand.value, float
            ):
                self.report(
                    node,
                    "equality comparison against float literal %r; float "
                    "costs/fractions accumulate rounding error — use an "
                    "inequality or tolerance" % (operand.value,),
                )
                return
            name = _rightmost_name(operand)
            if name is not None and self.NAME_RE.search(name):
                self.report(
                    node,
                    "equality comparison on %r; costs and selectivities "
                    "are floats — use an inequality or tolerance" % (name,),
                )
                return


# --------------------------------------------------------------------- #
# SIM003 — pinned frames must be guarded
# --------------------------------------------------------------------- #


@register
class GuardedPinRule(Rule):
    rule_id = "SIM003"
    summary = (
        "in repro.exec/repro.storage, frame pins must be released via "
        "pool.pin_guard(...) or an immediate try/finally unpin"
    )

    #: Pool methods that return a *pinned* frame; receiver must look like
    #: a buffer pool.
    PIN_METHODS = (
        "fetch", "new_page", "allocate_heap_frame", "unspill_heap_frame",
        "repin",
    )
    #: Module-conventional wrapper helpers that also return pinned frames.
    WRAPPER_METHODS = ("_read", "_fetch")
    #: Calls that release a pin inside a finally block.
    RELEASE_METHODS = ("unpin", "release_frame")

    @classmethod
    def applies_to(cls, context):
        return context.in_package(
            "repro.exec", "repro.storage", "repro.engine"
        )

    def _is_pin_call(self, node):
        if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Attribute
        ):
            return False
        attr = node.func.attr
        if attr in self.WRAPPER_METHODS:
            return True
        if attr in self.PIN_METHODS:
            receiver = _rightmost_name(node.func.value)
            return receiver is not None and receiver.endswith("pool")
        return False

    def _finally_releases(self, try_node):
        for stmt in try_node.finalbody:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in self.RELEASE_METHODS
                ):
                    return True
        return False

    def visit_Call(self, node):
        if not self._is_pin_call(node):
            return
        parent = getattr(node, "parent", None)
        # pool.pin_guard(pool.new_page(...)) — guarded by construction.
        if (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Attribute)
            and parent.func.attr == "pin_guard"
        ):
            return
        # ``return self.pool.fetch(...)`` — a wrapper helper; its callers
        # are checked at their own call sites.
        if isinstance(parent, ast.Return):
            return
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            follower = _next_sibling(parent)
            if isinstance(follower, ast.Try) and self._finally_releases(
                follower
            ):
                return
            self.report(
                node,
                "pinned frame is not guarded: follow the assignment with "
                "try/finally unpin, or use pool.pin_guard(...)",
            )
            return
        # Any other position (discarded expression, nested arithmetic...)
        # cannot be proven to release the pin.
        self.report(
            node,
            "pin-returning call in an unguarded position; bind the frame "
            "and release it via pin_guard or try/finally",
        )


# --------------------------------------------------------------------- #
# SIM004 — metric names are literal and follow the naming convention
# --------------------------------------------------------------------- #


@register
class MetricNameRule(Rule):
    rule_id = "SIM004"
    summary = (
        "metric names must be string literals matching "
        "'subsystem.counter_name'"
    )

    REGISTRATION_METHODS = ("counter", "gauge", "histogram", "register_probe")
    NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")
    PREFIX_RE = re.compile(r"^[a-z][a-z0-9_]*\.")
    TEMPLATE_RE = re.compile(r"^[a-z0-9_.%s]+$")

    def _is_metrics_receiver(self, node):
        name = _rightmost_name(node)
        return name is not None and (
            "metrics" in name or "registry" in name
        )

    def visit_Call(self, node):
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in self.REGISTRATION_METHODS:
            return
        if not self._is_metrics_receiver(func.value):
            return
        if not node.args:
            return
        name_arg = node.args[0]
        if isinstance(name_arg, ast.Constant) and isinstance(
            name_arg.value, str
        ):
            if not self.NAME_RE.match(name_arg.value):
                self.report(
                    name_arg,
                    "metric name %r does not match the "
                    "'subsystem.counter_name' convention"
                    % (name_arg.value,),
                )
            return
        # ``"pool.%s" % name`` / ``"plancache." + name`` — a literal
        # template with a literal subsystem prefix is acceptable (the
        # registry still sees one namespace per subsystem).
        if (
            isinstance(name_arg, ast.BinOp)
            and isinstance(name_arg.op, (ast.Mod, ast.Add))
            and isinstance(name_arg.left, ast.Constant)
            and isinstance(name_arg.left.value, str)
        ):
            template = name_arg.left.value
            well_formed = self.PREFIX_RE.match(template) and (
                isinstance(name_arg.op, ast.Add)
                or self.TEMPLATE_RE.match(template)
            )
            if not well_formed:
                self.report(
                    name_arg,
                    "metric name template %r must start with a literal "
                    "'subsystem.' prefix" % (template,),
                )
            return
        if isinstance(name_arg, ast.JoinedStr):
            head = name_arg.values[0] if name_arg.values else None
            if (
                isinstance(head, ast.Constant)
                and isinstance(head.value, str)
                and self.PREFIX_RE.match(head.value)
            ):
                return
            self.report(
                name_arg,
                "f-string metric name must start with a literal "
                "'subsystem.' prefix",
            )
            return
        self.report(
            name_arg,
            "metric name must be a string literal (or a literal template "
            "with a 'subsystem.' prefix), not a computed expression",
        )


# --------------------------------------------------------------------- #
# SIM005 — the full operator protocol
# --------------------------------------------------------------------- #


@register
class OperatorProtocolRule(Rule):
    rule_id = "SIM005"
    summary = (
        "Operator subclasses must define execute(); execute_batches "
        "requires a row execute and must not call .execute() directly; "
        "memory_pages and relinquish_memory must be implemented together"
    )

    OPERATOR_BASES = ("Operator",)

    def _defined_names(self, node):
        defined = set()
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defined.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        defined.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                defined.add(stmt.target.id)
        return defined

    def visit_ClassDef(self, node):
        defined = self._defined_names(node)
        base_names = {_rightmost_name(base) for base in node.bases}
        if base_names & set(self.OPERATOR_BASES):
            if "execute" not in defined:
                self.report(
                    node,
                    "operator class %r does not implement execute(); the "
                    "operator protocol (execute/memory/observability) "
                    "must be complete" % (node.name,),
                )
        if "execute_batches" in defined and "execute" not in defined:
            self.report(
                node,
                "class %r implements execute_batches without a row "
                "execute(); the cursor and snapshot-resolution surfaces "
                "stay row-at-a-time, so the row protocol must survive the "
                "batch migration" % (node.name,),
            )
        for stmt in node.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "execute_batches"
            ):
                self._check_batch_body(stmt)
        has_pages = "memory_pages" in defined
        has_relinquish = "relinquish_memory" in defined
        if has_pages and not has_relinquish:
            self.report(
                node,
                "class %r exposes memory_pages without relinquish_memory; "
                "the memory governor cannot reclaim from it" % (node.name,),
            )
        elif has_relinquish and not has_pages and node.name != "Operator":
            self.report(
                node,
                "class %r implements relinquish_memory without exposing "
                "memory_pages; the governor cannot account it"
                % (node.name,),
            )

    def _check_batch_body(self, func):
        """Flag direct ``.execute()`` calls inside an ``execute_batches``
        body — a silent per-row detour mid-batch-pipeline.  The explicit
        shim, ``rows_to_batches(<child>.execute(ctx), ...)``, is the one
        sanctioned crossing."""
        shimmed = set()
        for call in ast.walk(func):
            if isinstance(call, ast.Call) and (
                _rightmost_name(call.func) == "rows_to_batches"
            ):
                for arg in call.args:
                    shimmed.add(id(arg))
        for call in ast.walk(func):
            if (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "execute"
                and id(call) not in shimmed
            ):
                self.report(
                    call,
                    "execute_batches calls .execute() directly, mixing the "
                    "row and batch protocols; consume children through "
                    "execute_batches or wrap the row stream in "
                    "rows_to_batches",
                )


# --------------------------------------------------------------------- #
# SIM006 — mutable default arguments
# --------------------------------------------------------------------- #


@register
class MutableDefaultRule(Rule):
    rule_id = "SIM006"
    summary = "no mutable default arguments"

    MUTABLE_CALLS = ("list", "dict", "set", "bytearray")

    def _check(self, node):
        defaults = list(node.args.defaults) + [
            default
            for default in node.args.kw_defaults
            if default is not None
        ]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in self.MUTABLE_CALLS
            ):
                self.report(
                    default,
                    "mutable default argument is shared across calls; "
                    "default to None and construct inside the function",
                )

    visit_FunctionDef = _check
    visit_AsyncFunctionDef = _check


# --------------------------------------------------------------------- #
# SIM007 — swallowed exceptions
# --------------------------------------------------------------------- #


@register
class SwallowedExceptionRule(Rule):
    rule_id = "SIM007"
    summary = "no bare/broad except with a body of only pass"

    BROAD = ("Exception", "BaseException")

    def _is_broad(self, type_node):
        if type_node is None:
            return True
        if isinstance(type_node, ast.Tuple):
            return any(self._is_broad(elt) for elt in type_node.elts)
        return _rightmost_name(type_node) in self.BROAD

    def visit_ExceptHandler(self, node):
        if not self._is_broad(node.type):
            return
        for stmt in node.body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring or ellipsis
            return
        self.report(
            node,
            "broad exception handler silently swallows errors; handle a "
            "specific exception or record why it is safe to ignore",
        )


# --------------------------------------------------------------------- #
# SIM008 — fault handlers must re-raise or count
# --------------------------------------------------------------------- #


@register
class FaultHandlingRule(Rule):
    rule_id = "SIM008"
    summary = (
        "except blocks catching injected-fault errors must re-raise or "
        "account the fault (counter inc / plan record / note_retry)"
    )

    #: The typed fault family (plus the ossim probe-outage, which the
    #: governor handles), and anything whose name starts with "Fault".
    FAULT_NAMES = (
        "FaultError",
        "TransientIOError",
        "IOFaultError",
        "SpillWriteError",
        "WorkingSetProbeOutage",
    )
    #: A call to any of these inside the handler counts as accounting.
    COUNT_METHODS = (
        "inc",
        "observe",
        "record",
        "record_fault",
        "note",
        "note_retry",
        "note_statement_abort",
    )

    def _caught_names(self, type_node):
        if type_node is None:
            return []
        if isinstance(type_node, ast.Tuple):
            names = []
            for elt in type_node.elts:
                names.extend(self._caught_names(elt))
            return names
        name = _rightmost_name(type_node)
        return [name] if name is not None else []

    def _catches_fault(self, type_node):
        return any(
            name in self.FAULT_NAMES or name.startswith("Fault")
            for name in self._caught_names(type_node)
        )

    def _body_accounts(self, node):
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Raise):
                    return True
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in self.COUNT_METHODS
                ):
                    return True
        return False

    def visit_ExceptHandler(self, node):
        if not self._catches_fault(node.type):
            return
        if self._body_accounts(node):
            return
        self.report(
            node,
            "fault-typed exception handler neither re-raises nor counts "
            "the fault; absorbed faults break the faults.* accounting "
            "and seed-replay comparisons",
        )


# --------------------------------------------------------------------- #
# SIM009 — catalog mutations hold the DDL table lock
# --------------------------------------------------------------------- #


@register
class CatalogLockDisciplineRule(Rule):
    rule_id = "SIM009"
    summary = (
        "functions mutating the catalog must take the DDL table lock "
        "(acquire_table / _ddl_lock) in the same function"
    )

    #: Catalog mutators; the receiver must look like a catalog.
    MUTATOR_METHODS = ("add_table", "drop_table", "add_index", "drop_index")
    #: Either of these in the same function satisfies the discipline.
    LOCK_CALLS = ("acquire_table", "_ddl_lock")

    @classmethod
    def applies_to(cls, context):
        return context.in_package("repro.engine")

    def _is_catalog_mutation(self, node):
        if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Attribute
        ):
            return False
        if node.func.attr not in self.MUTATOR_METHODS:
            return False
        receiver = _rightmost_name(node.func.value)
        return receiver is not None and "catalog" in receiver

    def _check(self, node):
        mutation = None
        locked = False
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            if self._is_catalog_mutation(sub):
                mutation = mutation or sub
            elif (
                isinstance(sub.func, ast.Attribute)
                and sub.func.attr in self.LOCK_CALLS
            ):
                locked = True
        if mutation is not None and not locked:
            self.report(
                mutation,
                "catalog mutation %r without the DDL lock discipline; "
                "wrap it in _ddl_lock(...) or acquire_table(..., X) in "
                "this function so in-flight DML is drained first"
                % (mutation.func.attr,),
            )

    visit_FunctionDef = _check
    visit_AsyncFunctionDef = _check
