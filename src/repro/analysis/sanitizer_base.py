"""Sanitizer enablement flag and base error, dependency-free.

Split out of :mod:`repro.analysis.sanitizers` so low-level modules (the
buffer pool, the race sanitizer) can share the flag and the error
hierarchy without importing the sanitizer classes — those subclass the
engine types and would close an import cycle.
"""

import os

_enabled = os.environ.get("REPRO_SANITIZE", "") not in ("", "0", "false", "no")


def sanitizers_enabled():
    """Whether debug-mode sanitizers default to on (``REPRO_SANITIZE``)."""
    return _enabled


def set_sanitizers_enabled(value):
    """Flip the process-wide default; returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(value)
    return previous


class SanitizerError(AssertionError):
    """An engine invariant was observed broken at runtime."""
