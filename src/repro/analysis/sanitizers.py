"""Runtime sanitizers: debug-mode invariant checks for the engine.

The static SIM rules (:mod:`repro.analysis.rules`) prove what the AST can
show; these sanitizers check the invariants only execution can reach:

* **pin leaks** — :class:`SanitizedBufferPool` records the call site of
  every pin and the server asserts zero pinned frames at each statement
  boundary, reporting where the leaked pins were taken;
* **governor accounting** — :class:`SanitizedTask` cross-checks
  ``used_pages`` against the registered consumers' ``memory_pages`` after
  every allocate/release, and :class:`SanitizedMemoryGovernor` asserts a
  finished task holds nothing;
* **one clock** — :class:`SanitizedSimClock` asserts monotonicity;
* **replacement sanity** — :class:`SanitizedGClockPolicy` asserts hand
  validity on every sweep (the exact invariant whose violation caused the
  PR 1 hand-drift bug).

Enable them with ``Server(sanitize=True)``, the ``REPRO_SANITIZE``
environment variable, or :func:`set_sanitizers_enabled` (the pytest
fixture in ``tests/conftest.py`` turns them on for the whole suite).
They are assertions, not recovery: a failure raises
:class:`SanitizerError` at the first observation of a broken invariant.
"""

import os
import sys

from repro.analysis.sanitizer_base import (  # noqa: F401  (re-exports)
    SanitizerError,
    sanitizers_enabled,
    set_sanitizers_enabled,
)
from repro.buffer.governor import GROW, SHRINK, BufferGovernor
from repro.buffer.pool import BufferPool
from repro.buffer.replacement import GClockPolicy
from repro.common.clock import SimClock
from repro.exec.memory import MemoryGovernor, Task

# --------------------------------------------------------------------- #
# errors (base class in repro.analysis.sanitizer_base)
# --------------------------------------------------------------------- #


class PinLeakError(SanitizerError):
    """Frames were still pinned at a statement boundary."""


class QuotaAccountingError(SanitizerError):
    """Task page accounting and consumer registry disagree."""


class ClockError(SanitizerError):
    """The simulated clock moved backwards."""


class ReplacementError(SanitizerError):
    """The GClock hand or victim left its valid range."""


class GovernorDriftError(SanitizerError):
    """The buffer governor's pool size drifted from the OS allocation."""


class LockInvariantError(SanitizerError):
    """Lock bookkeeping diverged: a release missed the lock table or a
    grant would overwrite a live holder."""


class RecoveryIdempotenceError(SanitizerError):
    """A second redo pass changed page images (redo is not idempotent)."""


class SchedulerInvariantError(SanitizerError):
    """A session ran a statement while the admission queue held it."""


class GroupCommitInvariantError(SanitizerError):
    """A commit was acknowledged before its LSN was durable."""


def _call_site():
    """The innermost caller outside the pool/sanitizer plumbing."""
    frame = sys._getframe(1)
    skip = (os.sep + "pool.py", os.sep + "sanitizers.py")
    while frame is not None:
        filename = frame.f_code.co_filename
        if not filename.endswith(skip):
            return "%s:%d in %s" % (
                filename, frame.f_lineno, frame.f_code.co_name
            )
        frame = frame.f_back
    return "<unknown>"


# --------------------------------------------------------------------- #
# pin-leak detector
# --------------------------------------------------------------------- #


class SanitizedBufferPool(BufferPool):
    """A BufferPool that remembers who pinned what.

    Every pin-acquiring call records its (non-pool) call site; unpins pop
    them.  :meth:`assert_no_pins` raises :class:`PinLeakError` naming the
    origin sites of any surviving pins — the statement-boundary check the
    server runs after every execute/fetch when sanitizing.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._pin_sites = {}  # frame key -> [call site, ...]

    def _record_pin(self, frame):
        self._pin_sites.setdefault(frame.key, []).append(_call_site())

    def fetch(self, file, page_no, kind=None):
        if kind is None:
            frame = super().fetch(file, page_no)
        else:
            frame = super().fetch(file, page_no, kind)
        self._record_pin(frame)
        return frame

    def new_page(self, file, kind=None, payload=None):
        if kind is None:
            frame = super().new_page(file, payload=payload)
        else:
            frame = super().new_page(file, kind, payload=payload)
        self._record_pin(frame)
        return frame

    def allocate_heap_frame(self, heap_ref, payload=None):
        frame = super().allocate_heap_frame(heap_ref, payload)
        self._record_pin(frame)
        return frame

    def unspill_heap_frame(self, heap_ref, temp_page):
        frame = super().unspill_heap_frame(heap_ref, temp_page)
        self._record_pin(frame)
        return frame

    def repin(self, frame):
        super().repin(frame)
        self._record_pin(frame)

    def unpin(self, frame, dirty=False):
        super().unpin(frame, dirty=dirty)
        sites = self._pin_sites.get(frame.key)
        if sites:
            sites.pop()
        if frame.pin_count == 0:
            self._pin_sites.pop(frame.key, None)

    def release_frame(self, frame):
        super().release_frame(frame)
        self._pin_sites.pop(frame.key, None)

    def discard(self, file):
        super().discard(file)
        for key in list(self._pin_sites):
            if key not in self._frames:
                del self._pin_sites[key]

    def drop_all(self):
        super().drop_all()
        self._pin_sites.clear()

    # -- the statement-boundary check ---------------------------------- #

    def pin_origins(self):
        """``{frame key: [origin site, ...]}`` for every pinned frame."""
        origins = {}
        for key, frame in self._frames.items():
            if frame.pinned:
                origins[key] = list(self._pin_sites.get(key, []))
        return origins

    def assert_no_pins(self, context="statement end"):
        pinned = [f for f in self._frames.values() if f.pinned]
        if not pinned:
            return
        details = []
        for frame in pinned:
            sites = self._pin_sites.get(frame.key) or ["<unrecorded>"]
            details.append(
                "%r held %d pin%s, taken at: %s"
                % (
                    frame.key,
                    frame.pin_count,
                    "" if frame.pin_count == 1 else "s",
                    "; ".join(sites),
                )
            )
        raise PinLeakError(
            "pin leak at %s: %d frame%s still pinned — %s"
            % (
                context,
                len(pinned),
                "" if len(pinned) == 1 else "s",
                " | ".join(details),
            )
        )


# --------------------------------------------------------------------- #
# governor accounting cross-check
# --------------------------------------------------------------------- #


class SanitizedTask(Task):
    """A Task that audits its page accounting after every transition.

    Registered consumers' ``memory_pages`` must never exceed
    ``used_pages`` (unregistered allocations — spill buffers, sort runs in
    flight — legitimately make the task total larger, never smaller), and
    a release may not return more pages than the task holds: both are the
    signatures of double-release / lost-registration bugs that
    ``Task.release``'s clamp would otherwise silently absorb.
    """

    def _audit(self, event):
        consumer_pages = sum(
            consumer.memory_pages for __, consumer in self._consumers
        )
        if consumer_pages > self.used_pages:
            raise QuotaAccountingError(
                "task %d accounting mismatch after %s: registered consumers"
                " hold %d pages but used_pages=%d (origin: %s)"
                % (
                    self.task_id, event, consumer_pages, self.used_pages,
                    _call_site(),
                )
            )

    def allocate(self, pages):
        super().allocate(pages)
        self._audit("allocate(%d)" % (pages,))

    def release(self, pages):
        if int(pages) > self.used_pages:
            raise QuotaAccountingError(
                "task %d over-release: release(%d) with used_pages=%d "
                "(origin: %s)"
                % (self.task_id, int(pages), self.used_pages, _call_site())
            )
        super().release(pages)
        self._audit("release(%d)" % (pages,))

    def unregister_consumer(self, consumer):
        super().unregister_consumer(consumer)
        self._audit("unregister_consumer")


class SanitizedMemoryGovernor(MemoryGovernor):
    """Issues :class:`SanitizedTask` and audits task teardown.

    A statement that finishes — normally or by unwinding through
    ``MemoryQuotaExceededError`` — must leave its task with zero pages
    and no registered consumers, or the governor's ``active_requests``
    and quota formulas drift for every later statement.
    """

    def begin_task(self):
        task = SanitizedTask(self, self._next_task_id)
        self._tasks[task.task_id] = task
        self._next_task_id += 1
        self._window_peak_concurrency = max(
            self._window_peak_concurrency, len(self._tasks)
        )
        return task

    def end_task(self, task):
        stale = [
            type(consumer).__name__ for __, consumer in task._consumers
        ]
        if task.used_pages != 0 or stale:
            raise QuotaAccountingError(
                "task %d torn down dirty: used_pages=%d, stale consumers=%r"
                % (task.task_id, task.used_pages, stale)
            )
        super().end_task(task)


# --------------------------------------------------------------------- #
# buffer-governor drift check
# --------------------------------------------------------------------- #


class SanitizedBufferGovernor(BufferGovernor):
    """Asserts the pool size and the OS allocation agree after a resize.

    The governor's control law reads the working set *through* the
    process allocation it maintains itself; if a resize forgets
    ``_sync_process_allocation`` the two drift apart and every later
    poll steers on a stale reference input.  The check runs only when
    the poll itself resized (GROW/SHRINK) — tests legitimately call
    ``pool.set_capacity`` directly, which the governor only observes at
    its next poll.
    """

    def poll_once(self):
        sample = super().poll_once()
        if sample.action in (GROW, SHRINK):
            expected = self.pool.size_bytes() + self._heap_size_fn()
            allocated = self.server_process.allocated
            if allocated != expected:
                raise GovernorDriftError(
                    "governor drift after %s: process allocation %d != "
                    "pool %d + heap %d"
                    % (
                        sample.action, allocated,
                        self.pool.size_bytes(), self._heap_size_fn(),
                    )
                )
        return sample


# --------------------------------------------------------------------- #
# clock and replacement-policy sanitizers
# --------------------------------------------------------------------- #


class SanitizedSimClock(SimClock):
    """Asserts the virtual clock never observes time moving backwards."""

    def __init__(self, start=0):
        super().__init__(start)
        self._watermark = self._now

    def advance(self, delta_us):
        if self._now < self._watermark:
            raise ClockError(
                "clock moved backwards: now=%d < watermark=%d"
                % (self._now, self._watermark)
            )
        super().advance(delta_us)
        if self._now < self._watermark:
            raise ClockError(
                "advance(%r) moved the clock backwards: now=%d < "
                "watermark=%d" % (delta_us, self._now, self._watermark)
            )
        self._watermark = self._now


class SanitizedGClockPolicy(GClockPolicy):
    """Asserts the clock hand and chosen victims stay valid.

    The PR 1 hand-drift bug (`on_remove` forgetting to shift the hand)
    produced exactly the states these checks reject: a hand past the end
    of the ring, or a victim that is pinned or no longer resident.
    """

    def _check_hand(self, event):
        if not (0 <= self._hand <= len(self._ring)):
            raise ReplacementError(
                "GClock hand out of range after %s: hand=%d, ring size=%d"
                % (event, self._hand, len(self._ring))
            )

    def on_insert(self, frame, tick):
        super().on_insert(frame, tick)
        self._check_hand("on_insert")

    def on_remove(self, frame):
        super().on_remove(frame)
        self._check_hand("on_remove")
        if frame in self._ring:
            raise ReplacementError(
                "removed frame %r still in the GClock ring" % (frame,)
            )

    def choose_victim(self, frames, tick):
        self._check_hand("sweep start")
        victim = super().choose_victim(frames, tick)
        self._check_hand("sweep end")
        if victim.pinned:
            raise ReplacementError(
                "GClock chose a pinned victim: %r" % (victim,)
            )
        if victim not in frames:
            raise ReplacementError(
                "GClock chose a non-resident victim: %r" % (victim,)
            )
        return victim
