"""The heterogeneous buffer pool and its self-managing governor (Section 2).

The pool is "a single heterogeneous pool of all types of pages: table
pages, index pages, undo and redo log pages, bitmaps, free pages, and heap
pages", with uniform frame sizes.  Replacement is a modified generalized
clock with eight reference-time segments, exponential score decay, and a
lookaside queue of immediately reusable (heap/temporary) pages.

Query-processing memory lives in :class:`~repro.buffer.heap.Heap` objects
whose pages can be *stolen* while the heap is unlocked — swapped to the
temporary file and swizzled back in on re-lock.

The pool's size is driven by :class:`~repro.buffer.governor.BufferGovernor`,
the paper's feedback controller over OS working-set size and free memory.
"""

from repro.buffer.frames import Frame, PageKind
from repro.buffer.replacement import FIFOPolicy, GClockPolicy, LRUPolicy
from repro.buffer.pool import BufferPool
from repro.buffer.heap import Heap
from repro.buffer.governor import BufferGovernor, GovernorConfig

__all__ = [
    "Frame",
    "PageKind",
    "GClockPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "BufferPool",
    "Heap",
    "BufferGovernor",
    "GovernorConfig",
]
