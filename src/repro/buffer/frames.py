"""Buffer frames and page kinds."""

import enum


class PageKind(enum.Enum):
    """Every page type shares the one pool (paper Section 2.1)."""

    TABLE = "table"
    INDEX = "index"
    UNDO = "undo"
    REDO = "redo"
    BITMAP = "bitmap"
    FREE = "free"
    HEAP = "heap"
    TEMP = "temp"

    @property
    def is_immediately_reusable(self):
        """Kinds eligible for the lookaside queue.

        "Typically, pages in this queue are heap and temporary table
        pages."
        """
        return self in (PageKind.HEAP, PageKind.TEMP)


class Frame:
    """One page frame in the buffer pool.

    A frame is either *disk-backed* (``owner`` is a PagedFile and
    ``page_no`` its file-local page) or a *heap* frame (``owner`` is None
    and ``heap_ref`` identifies the owning heap allocation).  Payload is an
    arbitrary Python object; the simulation accounts size in whole pages.
    """

    __slots__ = (
        "owner",
        "page_no",
        "heap_ref",
        "kind",
        "payload",
        "dirty",
        "pin_count",
        "score",
        "last_ref_tick",
        "insert_tick",
    )

    def __init__(self, kind, owner=None, page_no=None, heap_ref=None, payload=None):
        self.kind = kind
        self.owner = owner
        self.page_no = page_no
        self.heap_ref = heap_ref
        self.payload = payload
        self.dirty = False
        self.pin_count = 0
        self.score = 0.0
        self.last_ref_tick = 0
        self.insert_tick = 0

    @property
    def key(self):
        """Hashable identity used by the pool's frame table."""
        if self.owner is not None:
            return ("file", self.owner.file_id, self.page_no)
        return ("heap", self.heap_ref)

    @property
    def pinned(self):
        return self.pin_count > 0

    def __repr__(self):
        return "Frame(%r, kind=%s, pins=%d, dirty=%s, score=%.2f)" % (
            self.key,
            self.kind.value,
            self.pin_count,
            self.dirty,
            self.score,
        )
