"""The buffer-pool sizing governor (paper Section 2, Figure 1).

A feedback controller that polls the operating system and retargets the
buffer pool:

* reference inputs: the server's OS **working-set size** and the amount of
  **free physical memory** (plus the pool's own miss counter);
* target: working set + free memory, keeping 5 MB in reserve for the OS;
* a 64 KB deadband suppresses micro-adjustments;
* the target is clamped to fixed lower/upper bounds, and to the *soft*
  upper bound ``min(database size + main heap size, upper bound)``
  (eq. 1) — database size includes temporary files, so large intermediate
  results automatically unconstrain the pool;
* growth is gated on buffer misses having occurred since the last poll
  (an idle or fully-resident server gains nothing from growth); shrinking
  is always allowed;
* resizes are damped: ``0.9 * ideal + 0.1 * current`` (eq. 2);
* polling is nominally one minute, dropping to 20 seconds at startup and
  after significant database growth;
* on CE-like systems without working-set reporting, the controller falls
  back to using the current pool size as its reference input: it grows
  only when free memory increases and shrinks under memory pressure.
"""

import collections
import dataclasses

from repro.common.errors import IOFaultError
from repro.common.units import KiB, MiB, MINUTE, SECOND, bytes_to_pages
from repro.ossim.memory import WorkingSetProbeOutage, WorkingSetUnavailable

GovernorSample = collections.namedtuple(
    "GovernorSample",
    [
        "time_us",
        "working_set",
        "free_memory",
        "misses",
        "ideal_bytes",
        "new_pool_bytes",
        "action",
        "interval_us",
    ],
)

#: Actions recorded in the sample history.
GROW = "grow"
SHRINK = "shrink"
HOLD_DEADBAND = "hold-deadband"
HOLD_NO_MISSES = "hold-no-misses"
HOLD = "hold"


@dataclasses.dataclass
class GovernorConfig:
    """Tunables, defaulted to the paper's constants."""

    poll_interval_us: int = 1 * MINUTE
    fast_poll_interval_us: int = 20 * SECOND
    deadband_bytes: int = 64 * KiB
    os_reserve_bytes: int = 5 * MiB
    lower_bound_bytes: int = 2 * MiB
    upper_bound_bytes: int = 1024 * MiB
    damping_new: float = 0.9
    damping_old: float = 0.1
    #: Database growth (fractional, between polls) considered "significant",
    #: which switches the controller into fast polling.
    significant_growth_fraction: float = 0.25
    #: Number of fast polls performed at startup.
    startup_fast_polls: int = 5


class BufferGovernor:
    """Drives :class:`~repro.buffer.pool.BufferPool` sizing from OS inputs."""

    def __init__(
        self,
        clock,
        os,
        server_process,
        pool,
        database_size_fn,
        heap_size_fn=None,
        config=None,
        metrics=None,
    ):
        self.clock = clock
        self.os = os
        self.server_process = server_process
        self.pool = pool
        self._database_size_fn = database_size_fn
        self._heap_size_fn = heap_size_fn if heap_size_fn is not None else lambda: 0
        self.config = config if config is not None else GovernorConfig()
        self.history = []
        self._miss_mark = pool.mark()
        self._fast_polls_left = self.config.startup_fast_polls
        self._last_database_size = database_size_fn()
        self._last_free_memory = None
        #: Last successful working-set probe, used to ride out injected
        #: probe outages without falling back to the CE control law.
        self._last_working_set = None
        self._running = False
        self._metrics = metrics
        self._m_ws_outages = None
        self._m_resize_faults = None
        if metrics is not None:
            self._m_polls = metrics.counter("governor.polls")
            self._m_actions = {
                action: metrics.counter("governor.action.%s" % action)
                for action in (GROW, SHRINK, HOLD_DEADBAND, HOLD_NO_MISSES,
                               HOLD)
            }
            self._m_pool_bytes = metrics.gauge("governor.pool_bytes")
            self._m_ws_outages = metrics.counter("governor.ws_probe_outages")
            self._m_resize_faults = metrics.counter("governor.resize_io_faults")
        self._sync_process_allocation()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self):
        """Begin periodic polling on the simulated clock."""
        if self._running:
            return
        self._running = True
        self.clock.call_after(self._next_interval(), self._on_timer)

    def stop(self):
        """Stop scheduling further polls (pending timers become no-ops)."""
        self._running = False

    def _on_timer(self):
        if not self._running:
            return
        sample = self.poll_once()
        self.clock.call_after(sample.interval_us, self._on_timer)

    # ------------------------------------------------------------------ #
    # the control loop body
    # ------------------------------------------------------------------ #

    def poll_once(self):
        """One controller iteration; returns the recorded sample."""
        config = self.config
        misses = self.pool.misses_since(self._miss_mark)
        self._miss_mark = self.pool.mark()

        free = self.os.free_memory()
        current = self.pool.size_bytes()
        try:
            working_set = self.os.working_set(self.server_process)
            self._last_working_set = working_set
            ideal = working_set + free - config.os_reserve_bytes
        except WorkingSetUnavailable:
            working_set = None
            ideal = self._ce_ideal(current, free)
        except WorkingSetProbeOutage:
            # Injected transient outage: ride it out on the last good
            # reading rather than degrading to the CE control law.
            if self._m_ws_outages is not None:
                self._m_ws_outages.inc()
            working_set = self._last_working_set
            if working_set is not None:
                ideal = working_set + free - config.os_reserve_bytes
            else:
                ideal = self._ce_ideal(current, free)

        ideal = self._clamp(ideal)
        action, new_size = self._decide(current, ideal, misses)
        if new_size != current:
            try:
                self.pool.set_capacity(
                    bytes_to_pages(new_size, self.pool.page_size)
                )
            except IOFaultError:
                # A shrink's dirty-page writeback kept failing.  The pool
                # stays at whatever size the partial eviction reached;
                # count it and let the next poll try again — a governor
                # timer must never kill the statement whose clock advance
                # happened to fire it.
                if self._m_resize_faults is not None:
                    self._m_resize_faults.inc()
            self._sync_process_allocation()

        interval = self._next_interval()
        sample = GovernorSample(
            time_us=self.clock.now,
            working_set=working_set,
            free_memory=free,
            misses=misses,
            ideal_bytes=ideal,
            new_pool_bytes=self.pool.size_bytes(),
            action=action,
            interval_us=interval,
        )
        self.history.append(sample)
        if self._metrics is not None:
            self._m_polls.inc()
            self._m_actions[action].inc()
            self._m_pool_bytes.set(self.pool.size_bytes())
        if self._fast_polls_left > 0:
            self._fast_polls_left -= 1
        self._note_database_growth()
        self._last_free_memory = free
        return sample

    # ------------------------------------------------------------------ #
    # pieces of the control law
    # ------------------------------------------------------------------ #

    def _ce_ideal(self, current, free):
        """CE variant: reference input is the current buffer-pool size.

        Grow only by the *increase* in free memory since the last poll;
        shrink when free memory has fallen below the OS reserve (other
        applications allocated memory).
        """
        if self._last_free_memory is None:
            return current
        delta_free = free - self._last_free_memory
        if delta_free > 0:
            return current + delta_free
        if free < self.config.os_reserve_bytes:
            return current - (self.config.os_reserve_bytes - free)
        return current

    def _clamp(self, ideal):
        config = self.config
        soft_cap = min(
            self._database_size_fn() + self._heap_size_fn(),
            config.upper_bound_bytes,
        )
        ideal = min(ideal, soft_cap)
        ideal = max(ideal, config.lower_bound_bytes)
        return ideal

    def _decide(self, current, ideal, misses):
        config = self.config
        if abs(ideal - current) < config.deadband_bytes:
            return HOLD_DEADBAND, current
        damped = int(config.damping_new * ideal + config.damping_old * current)
        if damped > current:
            if misses == 0:
                # "If there are no buffer pool misses between polling
                # times, the buffer pool governor will not permit the
                # buffer pool to grow."
                return HOLD_NO_MISSES, current
            return GROW, damped
        if damped < current:
            # "the buffer pool is always allowed to shrink"
            return SHRINK, damped
        return HOLD, current

    def _next_interval(self):
        if self._fast_polls_left > 0:
            return self.config.fast_poll_interval_us
        return self.config.poll_interval_us

    def _note_database_growth(self):
        size = self._database_size_fn()
        previous = max(1, self._last_database_size)
        if (size - self._last_database_size) / previous >= (
            self.config.significant_growth_fraction
        ):
            # "the server will decrease its sampling period to 20 seconds
            # ... when the database grows significantly"
            self._fast_polls_left = max(
                self._fast_polls_left, self.config.startup_fast_polls
            )
        self._last_database_size = size

    def _sync_process_allocation(self):
        """Reflect the pool size in the server's OS allocation so the
        working-set feedback observes the resize."""
        overhead = self._heap_size_fn()
        self.server_process.set_allocation(self.pool.size_bytes() + overhead)
