"""Connection heaps (paper Section 2.1).

"In-memory data structures created and utilized for query processing,
including hash tables, prepared statements, cursors, and similar
structures, are allocated within heaps.  When a heap is not in use ... the
heap is 'unlocked'.  Pages in unlocked heaps can be stolen and used by the
buffer pool manager for other purposes ... the stolen pages are swapped out
to the temporary file.  To resume the processing of the request, the heap
is re-locked, pinning its pages in physical memory.  A pointer swizzling
technique is used to reset pointers in pages relocated during re-locking."

In this simulation payloads are Python objects, so references survive
relocation for free; :attr:`Heap.swizzle_count` counts the page reloads
where a real engine would have had to reset pointers.
"""

from repro.common.errors import ReproError


class _Slot:
    __slots__ = ("frame", "temp_page")

    def __init__(self, frame):
        self.frame = frame
        self.temp_page = None


class Heap:
    """A lockable bag of buffer-pool pages owned by one request/connection."""

    def __init__(self, pool, name="heap"):
        self._pool = pool
        self.name = name
        self._slots = []
        self._locked = True
        self.swizzle_count = 0
        self._freed = False

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #

    @property
    def locked(self):
        return self._locked

    @property
    def page_count(self):
        """Pages owned by this heap (resident or spilled)."""
        return len(self._slots)

    def size_bytes(self):
        return self.page_count * self._pool.page_size

    def resident_count(self):
        """Pages currently in the buffer pool (not spilled)."""
        return sum(1 for slot in self._slots if slot.frame is not None)

    # ------------------------------------------------------------------ #
    # page access (only while locked)
    # ------------------------------------------------------------------ #

    def allocate_page(self, payload=None):
        """Allocate a new heap page; returns its slot handle."""
        self._require_locked("allocate")
        slot_index = len(self._slots)
        frame = self._pool.allocate_heap_frame((self, slot_index), payload)
        self._slots.append(_Slot(frame))
        return slot_index

    def read(self, slot_index):
        """The payload of a heap page."""
        self._require_locked("read")
        return self._slot(slot_index).frame.payload

    def write(self, slot_index, payload):
        """Replace the payload of a heap page."""
        self._require_locked("write")
        self._slot(slot_index).frame.payload = payload

    # ------------------------------------------------------------------ #
    # lock / unlock
    # ------------------------------------------------------------------ #

    def unlock(self):
        """Release pins so the pool may steal this heap's pages."""
        if not self._locked:
            return
        self._locked = False
        for slot in self._slots:
            if slot.frame is not None:
                self._pool.unpin(slot.frame)

    def lock(self):
        """Re-pin every page, swapping spilled pages back from temp.

        Reloaded pages land in fresh frames; each reload bumps
        :attr:`swizzle_count` (the pointer-swizzling events of the paper).
        """
        if self._locked:
            return
        self._locked = True
        for slot_index, slot in enumerate(self._slots):
            if slot.frame is not None:
                self._pool.repin(slot.frame)
            else:
                slot.frame = self._pool.unspill_heap_frame(
                    (self, slot_index), slot.temp_page
                )
                slot.temp_page = None
                self.swizzle_count += 1

    def free(self):
        """Release every page permanently (request finished)."""
        if self._freed:
            return
        for slot in self._slots:
            if slot.frame is not None:
                if self._locked:
                    self._pool.unpin(slot.frame)
                self._pool.release_frame(slot.frame)
                slot.frame = None
            elif slot.temp_page is not None:
                self._pool.temp_file.free_page(slot.temp_page)
                slot.temp_page = None
        self._slots = []
        self._freed = True

    # ------------------------------------------------------------------ #
    # pool callback
    # ------------------------------------------------------------------ #

    def note_spilled(self, slot_index, temp_page):
        """Called by the pool when it steals one of our unlocked pages."""
        slot = self._slots[slot_index]
        slot.frame = None
        slot.temp_page = temp_page

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _slot(self, slot_index):
        slot = self._slots[slot_index]
        if slot.frame is None:
            raise ReproError(
                "heap %r slot %d is spilled; lock() must reload it first"
                % (self.name, slot_index)
            )
        return slot

    def _require_locked(self, action):
        if self._freed:
            raise ReproError("heap %r has been freed" % (self.name,))
        if not self._locked:
            raise ReproError(
                "cannot %s on unlocked heap %r; call lock() first"
                % (action, self.name)
            )
