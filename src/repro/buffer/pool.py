"""The heterogeneous buffer pool."""

import contextlib

from repro.buffer.frames import Frame, PageKind
from repro.buffer.replacement import GClockPolicy
from repro.common.errors import BufferPoolExhaustedError


class BufferPool:
    """A single pool of uniform-size frames for every page type.

    The pool's *capacity* (in frames) is dynamic — the buffer governor
    resizes it as system memory conditions change.  Shrinking evicts
    unpinned frames (writing dirty ones back to their file, or spilling
    unlocked heap pages to the temporary file); growth simply raises the
    ceiling.

    I/O time is charged to the simulated clock through the PagedFiles.
    """

    def __init__(self, temp_file, capacity_pages, policy=None):
        if capacity_pages < 1:
            raise ValueError("pool needs at least one frame")
        self.temp_file = temp_file
        self.capacity_pages = int(capacity_pages)
        self.policy = policy if policy is not None else GClockPolicy()
        self._frames = {}  # key -> Frame
        self._tick = 0
        # Counters (cumulative).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.heap_spills = 0
        self.heap_unspills = 0

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    #: Cumulative counters published through the metrics registry.
    METRIC_COUNTERS = (
        "hits", "misses", "evictions", "writebacks", "heap_spills",
        "heap_unspills",
    )

    def attach_metrics(self, registry):
        """Publish the pool's counters and levels as ``pool.*`` probes.

        Probes read the live attributes at snapshot time, so the hot
        fetch path stays free of metric bookkeeping.
        """
        for name in self.METRIC_COUNTERS:
            registry.register_probe(
                "pool.%s" % name, lambda n=name: getattr(self, n)
            )
        registry.register_probe(
            "pool.capacity_pages", lambda: self.capacity_pages
        )
        registry.register_probe("pool.used_pages", lambda: self.used_pages)
        registry.register_probe("pool.pinned_frames", self.pinned_count)
        registry.register_probe(
            "pool.lookaside_depth",
            lambda: getattr(self.policy, "lookaside_depth", lambda: 0)(),
        )

    @property
    def used_pages(self):
        """Frames currently resident."""
        return len(self._frames)

    @property
    def page_size(self):
        return self.temp_file.volume.disk.page_size

    def size_bytes(self):
        """Capacity in bytes (what the server's process allocation tracks)."""
        return self.capacity_pages * self.page_size

    def pinned_count(self):
        return sum(1 for frame in self._frames.values() if frame.pinned)

    def resident(self, file, page_no):
        """Whether a disk page is currently buffered (no I/O charged)."""
        return ("file", file.file_id, page_no) in self._frames

    def resident_fraction(self, file):
        """Fraction of ``file``'s pages in the pool — the per-table statistic
        the cost model consumes ("the percentage of a table resident in the
        buffer pool ... maintained in real time", Section 3.2)."""
        if file.page_count == 0:
            return 0.0
        resident = sum(
            1
            for frame in self._frames.values()
            if frame.owner is file
        )
        return min(1.0, resident / file.page_count)

    def mark(self):
        """Snapshot of the miss counter, for the governor's polling."""
        return self.misses

    def misses_since(self, mark):
        return self.misses - mark

    # ------------------------------------------------------------------ #
    # disk-backed pages
    # ------------------------------------------------------------------ #

    def fetch(self, file, page_no, kind=PageKind.TABLE):
        """Pin and return the frame for ``(file, page_no)``, reading it from
        the device on a miss."""
        self._tick += 1
        key = ("file", file.file_id, page_no)
        frame = self._frames.get(key)
        if frame is not None:
            self.hits += 1
            frame.pin_count += 1
            self.policy.on_reference(frame, self._tick)
            return frame
        self.misses += 1
        self._make_room(1)
        frame = Frame(kind, owner=file, page_no=page_no)
        frame.payload = file.read(page_no)
        frame.pin_count = 1
        self._frames[key] = frame
        self.policy.on_insert(frame, self._tick)
        return frame

    def new_page(self, file, kind=PageKind.TABLE, payload=None):
        """Allocate a fresh page in ``file`` and return its pinned frame.

        The page is born dirty (it exists only in memory until evicted or
        flushed).
        """
        self._tick += 1
        page_no = file.allocate_page()
        self._make_room(1)
        frame = Frame(kind, owner=file, page_no=page_no, payload=payload)
        frame.pin_count = 1
        frame.dirty = True
        self._frames[frame.key] = frame
        self.policy.on_insert(frame, self._tick)
        return frame

    @contextlib.contextmanager
    def pin_guard(self, frame, dirty=False):
        """Scope a pinned frame: the pin is released on exit, error paths
        included.  ``with pool.pin_guard(pool.fetch(...)) as frame: ...``"""
        try:
            yield frame
        finally:
            self.unpin(frame, dirty=dirty)

    def unpin(self, frame, dirty=False):
        """Release one pin; ``dirty`` marks the payload as modified."""
        if frame.pin_count <= 0:
            raise ValueError("frame %r is not pinned" % (frame,))
        frame.pin_count -= 1
        if dirty:
            frame.dirty = True
        if frame.pin_count == 0:
            self.policy.note_reusable(frame)

    def flush_all(self):
        """Write every dirty disk-backed frame to its file."""
        for frame in list(self._frames.values()):
            if frame.dirty and frame.owner is not None:
                frame.owner.write(frame.page_no, frame.payload)
                frame.dirty = False
                self.writebacks += 1

    def discard(self, file):
        """Drop every frame of ``file`` without writing back (file dropped)."""
        for key, frame in list(self._frames.items()):
            if frame.owner is file:
                self.policy.on_remove(frame)
                del self._frames[key]

    # ------------------------------------------------------------------ #
    # heap frames (query-processing memory, Section 2.1)
    # ------------------------------------------------------------------ #

    def allocate_heap_frame(self, heap_ref, payload=None):
        """Allocate a pinned HEAP frame on behalf of a heap."""
        self._tick += 1
        self._make_room(1)
        frame = Frame(PageKind.HEAP, heap_ref=heap_ref, payload=payload)
        frame.pin_count = 1
        frame.dirty = True
        self._frames[frame.key] = frame
        self.policy.on_insert(frame, self._tick)
        return frame

    def release_frame(self, frame):
        """Return a heap/temp frame to the pool permanently (heap freed)."""
        if frame.key in self._frames:
            self.policy.on_remove(frame)
            del self._frames[frame.key]

    def repin(self, frame):
        """Pin an already-resident frame (heap re-lock fast path)."""
        if frame.key not in self._frames:
            raise KeyError("frame %r is not resident" % (frame,))
        self._tick += 1
        frame.pin_count += 1
        self.policy.on_reference(frame, self._tick)

    # ------------------------------------------------------------------ #
    # resizing (driven by the buffer governor)
    # ------------------------------------------------------------------ #

    def set_capacity(self, n_pages):
        """Resize the pool.  Shrinking evicts unpinned frames; if pins keep
        the pool above the requested size, capacity settles at the pinned
        floor.  Returns the actual new capacity."""
        n_pages = max(1, int(n_pages))
        while len(self._frames) > n_pages:
            try:
                victim = self.policy.choose_victim(
                    set(self._frames.values()), self._tick
                )
            except BufferPoolExhaustedError:
                break
            self._evict(victim)
        self.capacity_pages = max(n_pages, len(self._frames))
        return self.capacity_pages

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _make_room(self, needed):
        while len(self._frames) + needed > self.capacity_pages:
            victim = self.policy.choose_victim(set(self._frames.values()), self._tick)
            self._evict(victim)

    def _evict(self, frame):
        self.evictions += 1
        if frame.owner is not None:
            if frame.dirty:
                frame.owner.write(frame.page_no, frame.payload)
                self.writebacks += 1
        elif frame.heap_ref is not None:
            # An unlocked heap page is stolen: swap it to the temporary
            # file so the heap can swizzle it back in on re-lock.
            self._spill_heap_frame(frame)
        self.policy.on_remove(frame)
        del self._frames[frame.key]

    def _spill_heap_frame(self, frame):
        heap, slot = frame.heap_ref
        temp_page = self.temp_file.allocate_page()
        self.temp_file.write(temp_page, frame.payload)
        self.heap_spills += 1
        heap.note_spilled(slot, temp_page)

    def unspill_heap_frame(self, heap_ref, temp_page):
        """Read a spilled heap page back from the temporary file into a
        fresh pinned frame (heap re-lock slow path)."""
        self._tick += 1
        self._make_room(1)
        payload = self.temp_file.read(temp_page)
        self.temp_file.free_page(temp_page)
        self.heap_unspills += 1
        frame = Frame(PageKind.HEAP, heap_ref=heap_ref, payload=payload)
        frame.pin_count = 1
        frame.dirty = True
        self._frames[frame.key] = frame
        self.policy.on_insert(frame, self._tick)
        return frame
