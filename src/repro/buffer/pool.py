"""The heterogeneous buffer pool."""

import contextlib

from repro.analysis.races import tap as _race_tap
from repro.buffer.frames import Frame, PageKind
from repro.buffer.replacement import GClockPolicy
from repro.common.errors import BufferPoolExhaustedError


class BufferPool:
    """A single pool of uniform-size frames for every page type.

    The pool's *capacity* (in frames) is dynamic — the buffer governor
    resizes it as system memory conditions change.  Shrinking evicts
    unpinned frames (writing dirty ones back to their file, or spilling
    unlocked heap pages to the temporary file); growth simply raises the
    ceiling.

    I/O time is charged to the simulated clock through the PagedFiles.
    """

    def __init__(self, temp_file, capacity_pages, policy=None):
        if capacity_pages < 1:
            raise ValueError("pool needs at least one frame")
        self.temp_file = temp_file
        self.capacity_pages = int(capacity_pages)
        self.policy = policy if policy is not None else GClockPolicy()
        self._frames = {}  # key -> Frame
        self._tick = 0
        #: Dirty-page table (ARIES): key -> recLSN, the end-of-log LSN at
        #: the moment a clean disk-backed frame first went dirty.  Its
        #: snapshot travels in every fuzzy-checkpoint BEGIN record.
        self._dirty_rec_lsn = {}
        #: End-of-log LSN source (the server wires the transaction log's
        #: ``peek_next_lsn``); None degrades recLSNs to zero.
        self.lsn_fn = None
        #: Write-ahead hook: called before any dirty disk-backed frame is
        #: written back, so the log is always forced first (the server
        #: wires the transaction log's ``force``).
        self.wal_fn = None
        #: Workload-scheduler yield point: ``fn(file, page_no)`` fired on
        #: a fetch miss, before the device read, so concurrent sessions
        #: interleave at page-I/O boundaries.
        self.yield_hook = None
        #: Race sanitizer (attached by the server under REPRO_SANITIZE).
        self.races = None
        # Counters (cumulative).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self.heap_spills = 0
        self.heap_unspills = 0

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    #: Cumulative counters published through the metrics registry.
    METRIC_COUNTERS = (
        "hits", "misses", "evictions", "writebacks", "heap_spills",
        "heap_unspills",
    )

    def attach_metrics(self, registry):
        """Publish the pool's counters and levels as ``pool.*`` probes.

        Probes read the live attributes at snapshot time, so the hot
        fetch path stays free of metric bookkeeping.
        """
        for name in self.METRIC_COUNTERS:
            registry.register_probe(
                "pool.%s" % name, lambda n=name: getattr(self, n)
            )
        registry.register_probe(
            "pool.capacity_pages", lambda: self.capacity_pages
        )
        registry.register_probe("pool.used_pages", lambda: self.used_pages)
        registry.register_probe(
            "pool.dirty_pages", lambda: len(self._dirty_rec_lsn)
        )
        registry.register_probe("pool.pinned_frames", self.pinned_count)
        registry.register_probe(
            "pool.lookaside_depth",
            lambda: getattr(self.policy, "lookaside_depth", lambda: 0)(),
        )

    @property
    def used_pages(self):
        """Frames currently resident."""
        return len(self._frames)

    @property
    def page_size(self):
        return self.temp_file.volume.disk.page_size

    def size_bytes(self):
        """Capacity in bytes (what the server's process allocation tracks)."""
        return self.capacity_pages * self.page_size

    def pinned_count(self):
        return sum(1 for frame in self._frames.values() if frame.pinned)

    def resident(self, file, page_no):
        """Whether a disk page is currently buffered (no I/O charged)."""
        return ("file", file.file_id, page_no) in self._frames

    def resident_fraction(self, file):
        """Fraction of ``file``'s pages in the pool — the per-table statistic
        the cost model consumes ("the percentage of a table resident in the
        buffer pool ... maintained in real time", Section 3.2)."""
        if file.page_count == 0:
            return 0.0
        resident = sum(
            1
            for frame in self._frames.values()
            if frame.owner is file
        )
        return min(1.0, resident / file.page_count)

    def mark(self):
        """Snapshot of the miss counter, for the governor's polling."""
        return self.misses

    def misses_since(self, mark):
        return self.misses - mark

    # ------------------------------------------------------------------ #
    # disk-backed pages
    # ------------------------------------------------------------------ #

    def fetch(self, file, page_no, kind=PageKind.TABLE):
        """Pin and return the frame for ``(file, page_no)``, reading it from
        the device on a miss."""
        self._tick += 1
        key = ("file", file.file_id, page_no)
        frame = self._frames.get(key)
        if frame is not None:
            self.hits += 1
            frame.pin_count += 1
            self.policy.on_reference(frame, self._tick)
            return frame
        self.misses += 1
        if self.yield_hook is not None:
            self.yield_hook(file, page_no)
            # Another session may have faulted the page in while this one
            # was suspended: re-check so we never overwrite its frame.
            frame = self._frames.get(key)
            if frame is not None:
                self.misses -= 1
                self.hits += 1
                frame.pin_count += 1
                self.policy.on_reference(frame, self._tick)
                return frame
        self._make_room(1)
        frame = Frame(kind, owner=file, page_no=page_no)
        frame.payload = file.read(page_no)
        frame.pin_count = 1
        self._frames[key] = frame
        self.policy.on_insert(frame, self._tick)
        return frame

    def new_page(self, file, kind=PageKind.TABLE, payload=None):
        """Allocate a fresh page in ``file`` and return its pinned frame.

        The page is born dirty (it exists only in memory until evicted or
        flushed).
        """
        self._tick += 1
        page_no = file.allocate_page()
        self._make_room(1)
        frame = Frame(kind, owner=file, page_no=page_no, payload=payload)
        frame.pin_count = 1
        frame.dirty = True
        self._note_dirty(frame)
        self._frames[frame.key] = frame
        self.policy.on_insert(frame, self._tick)
        return frame

    @contextlib.contextmanager
    def pin_guard(self, frame, dirty=False):
        """Scope a pinned frame: the pin is released on exit, error paths
        included.  ``with pool.pin_guard(pool.fetch(...)) as frame: ...``"""
        try:
            yield frame
        finally:
            self.unpin(frame, dirty=dirty)

    def unpin(self, frame, dirty=False):
        """Release one pin; ``dirty`` marks the payload as modified."""
        if frame.pin_count <= 0:
            raise ValueError("frame %r is not pinned" % (frame,))
        frame.pin_count -= 1
        if dirty:
            frame.dirty = True
            self._note_dirty(frame)
        if frame.pin_count == 0:
            self.policy.note_reusable(frame)

    def _note_dirty(self, frame):
        """First dirtying of a disk-backed frame records its recLSN."""
        if frame.owner is None:
            return
        key = frame.key
        if key not in self._dirty_rec_lsn:
            with _race_tap(self.races, "dpt", key, "w"):
                self._dirty_rec_lsn[key] = (
                    self.lsn_fn() if self.lsn_fn is not None else 0
                )

    def dirty_page_table(self):
        """Snapshot of ``{(file_id, page_no): recLSN}`` for checkpoint
        BEGIN records."""
        return {
            (key[1], key[2]): rec_lsn
            for key, rec_lsn in self._dirty_rec_lsn.items()
        }

    def dirty_page_count(self):
        return len(self._dirty_rec_lsn)

    def flush_all(self):
        """Write every dirty disk-backed frame to its file (WAL: the log
        is forced first).  Returns the number of pages written."""
        dirty = [
            frame for frame in self._frames.values()
            if frame.dirty and frame.owner is not None
        ]
        if dirty and self.wal_fn is not None:
            self.wal_fn()
        for frame in dirty:
            frame.owner.write(frame.page_no, frame.payload)
            frame.dirty = False
            self._dirty_rec_lsn.pop(frame.key, None)
            self.writebacks += 1
        return len(dirty)

    def discard(self, file):
        """Drop every frame of ``file`` without writing back (file dropped)."""
        for key, frame in list(self._frames.items()):
            if frame.owner is file:
                self.policy.on_remove(frame)
                self._dirty_rec_lsn.pop(key, None)
                del self._frames[key]

    def drop_all(self):
        """Lose every frame without writeback — a process crash.

        The volume keeps only what earlier writebacks made durable;
        restart recovery rebuilds the rest from the log.
        """
        for frame in list(self._frames.values()):
            self.policy.on_remove(frame)
        self._frames.clear()
        self._dirty_rec_lsn.clear()

    # ------------------------------------------------------------------ #
    # heap frames (query-processing memory, Section 2.1)
    # ------------------------------------------------------------------ #

    def allocate_heap_frame(self, heap_ref, payload=None):
        """Allocate a pinned HEAP frame on behalf of a heap."""
        self._tick += 1
        self._make_room(1)
        frame = Frame(PageKind.HEAP, heap_ref=heap_ref, payload=payload)
        frame.pin_count = 1
        frame.dirty = True
        self._frames[frame.key] = frame
        self.policy.on_insert(frame, self._tick)
        return frame

    def release_frame(self, frame):
        """Return a heap/temp frame to the pool permanently (heap freed)."""
        if frame.key in self._frames:
            self.policy.on_remove(frame)
            del self._frames[frame.key]

    def repin(self, frame):
        """Pin an already-resident frame (heap re-lock fast path)."""
        if frame.key not in self._frames:
            raise KeyError("frame %r is not resident" % (frame,))
        self._tick += 1
        frame.pin_count += 1
        self.policy.on_reference(frame, self._tick)

    # ------------------------------------------------------------------ #
    # resizing (driven by the buffer governor)
    # ------------------------------------------------------------------ #

    def set_capacity(self, n_pages):
        """Resize the pool.  Shrinking evicts unpinned frames; if pins keep
        the pool above the requested size, capacity settles at the pinned
        floor.  Returns the actual new capacity."""
        n_pages = max(1, int(n_pages))
        while len(self._frames) > n_pages:
            try:
                victim = self.policy.choose_victim(
                    set(self._frames.values()), self._tick
                )
            except BufferPoolExhaustedError:
                break
            self._evict(victim)
        self.capacity_pages = max(n_pages, len(self._frames))
        return self.capacity_pages

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _make_room(self, needed):
        while len(self._frames) + needed > self.capacity_pages:
            victim = self.policy.choose_victim(set(self._frames.values()), self._tick)
            self._evict(victim)

    def _evict(self, frame):
        self.evictions += 1
        if frame.owner is not None:
            if frame.dirty:
                if self.wal_fn is not None:
                    self.wal_fn()
                frame.owner.write(frame.page_no, frame.payload)
                self.writebacks += 1
            self._dirty_rec_lsn.pop(frame.key, None)
        elif frame.heap_ref is not None:
            # An unlocked heap page is stolen: swap it to the temporary
            # file so the heap can swizzle it back in on re-lock.
            self._spill_heap_frame(frame)
        self.policy.on_remove(frame)
        del self._frames[frame.key]

    def _spill_heap_frame(self, frame):
        heap, slot = frame.heap_ref
        temp_page = self.temp_file.allocate_page()
        self.temp_file.write(temp_page, frame.payload)
        self.heap_spills += 1
        heap.note_spilled(slot, temp_page)

    def unspill_heap_frame(self, heap_ref, temp_page):
        """Read a spilled heap page back from the temporary file into a
        fresh pinned frame (heap re-lock slow path)."""
        self._tick += 1
        self._make_room(1)
        payload = self.temp_file.read(temp_page)
        self.temp_file.free_page(temp_page)
        self.heap_unspills += 1
        frame = Frame(PageKind.HEAP, heap_ref=heap_ref, payload=payload)
        frame.pin_count = 1
        frame.dirty = True
        self._frames[frame.key] = frame
        self.policy.on_insert(frame, self._tick)
        return frame
