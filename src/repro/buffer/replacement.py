"""Page replacement policies.

The paper's pool uses "a modified generalized 'clock' algorithm": the pool
is conceptually ordered by time of last reference and divided into eight
segments; a page's *score* is incremented as it moves from segment to
segment (i.e. as it keeps being re-referenced after aging), scores decay
exponentially so every page eventually becomes a candidate, and a
*lookaside queue* of immediately reusable pages (heap/temp) short-circuits
the clock entirely.  The paper implements the queue with a lock-free array
to avoid semaphores; in this single-threaded simulation a deque carries the
same semantics.

LRU and FIFO are provided as baselines for the replacement-policy
experiment (E13).
"""

import collections
import math

from repro.common.errors import BufferPoolExhaustedError

#: Number of reference-time segments (from the paper).
SEGMENTS = 8

#: Cap on a page's score: a page can climb at most one increment per
#: segment boundary it crosses, so SEGMENTS is the natural ceiling.
MAX_SCORE = float(SEGMENTS)

#: Multiplier applied when the clock hand passes a surviving page.  A
#: gentle decay preserves the score gap between re-referenced pages and
#: scan pages across many hand rotations (scan resistance).
DECAY = 0.9

#: Scores below this make a page a replacement candidate: a freshly
#: inserted scan page (score 1.0) survives roughly five hand rotations,
#: a fully promoted page (score 8.0) about twenty-five.
_EPSILON = 0.6


class ReplacementPolicy:
    """Interface: the pool tells the policy about frame lifecycle events."""

    def on_insert(self, frame, tick):
        raise NotImplementedError

    def on_reference(self, frame, tick):
        raise NotImplementedError

    def on_remove(self, frame):
        raise NotImplementedError

    def choose_victim(self, frames, tick):
        """Pick an unpinned frame to evict, or raise."""
        raise NotImplementedError

    def note_reusable(self, frame):
        """Hint that ``frame`` can be reused immediately (no-op by default)."""


class GClockPolicy(ReplacementPolicy):
    """The paper's modified generalized clock with a lookaside queue."""

    def __init__(self):
        self._ring = []  # frames in insertion order; hand cycles this list
        self._hand = 0
        self._lookaside = collections.deque()

    # -- lifecycle ------------------------------------------------------- #

    def on_insert(self, frame, tick):
        frame.score = 1.0
        frame.last_ref_tick = tick
        frame.insert_tick = tick
        self._ring.append(frame)

    def on_reference(self, frame, tick):
        # A re-reference bumps the score only if the page has aged out of
        # the newest segment since its last reference — the "moves from
        # segment to segment" rule, which keeps a tight re-reference loop
        # (e.g. repeated hits during one table scan) from inflating scores.
        if self._segment_of(frame, tick) > 0:
            frame.score = min(MAX_SCORE, frame.score + 1.0)
        frame.last_ref_tick = tick

    def on_remove(self, frame):
        try:
            index = self._ring.index(frame)
        except ValueError:
            return
        del self._ring[index]
        # Removing a frame below the hand shifts the ring left under it;
        # follow the shift or the hand silently skips the next frame.
        if index < self._hand:
            self._hand -= 1
        if self._hand >= len(self._ring):
            self._hand = 0

    def note_reusable(self, frame):
        if frame.kind.is_immediately_reusable and not frame.pinned:
            self._lookaside.append(frame)

    # -- victim selection -------------------------------------------------- #

    def choose_victim(self, frames, tick):
        # Fast path: the lookaside queue is checked before the clock runs.
        while self._lookaside:
            frame = self._lookaside.popleft()
            if frame in frames and not frame.pinned:
                return frame
        if not self._ring:
            raise BufferPoolExhaustedError("empty pool has no victim")
        # Generalized clock: sweep, decaying survivors exponentially,
        # until an unpinned page scores below the threshold.  The bound is
        # the rotations needed to decay MAX_SCORE under the threshold,
        # plus slack.
        rotations = math.ceil(
            math.log(_EPSILON / (MAX_SCORE * 2)) / math.log(DECAY)
        ) + 2
        max_steps = len(self._ring) * rotations
        for __ in range(max_steps):
            if self._hand >= len(self._ring):
                self._hand = 0
            frame = self._ring[self._hand]
            self._hand += 1
            if frame.pinned:
                continue
            if frame.score < _EPSILON:
                return frame
            frame.score *= DECAY
        raise BufferPoolExhaustedError(
            "no replaceable frame among %d (all pinned?)" % (len(self._ring),)
        )

    # -- internals -------------------------------------------------------- #

    def _segment_of(self, frame, tick):
        """Which of the 8 reference-time segments the frame occupies.

        Segment 0 is the newest eighth of the reference-time span; 7 the
        oldest.
        """
        if not self._ring:
            return 0
        oldest = min(f.last_ref_tick for f in self._ring)
        span = max(1, tick - oldest)
        age = tick - frame.last_ref_tick
        return min(SEGMENTS - 1, (age * SEGMENTS) // span)

    def lookaside_depth(self):
        """Number of queued immediately-reusable frames (diagnostics)."""
        return len(self._lookaside)


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used baseline."""

    def on_insert(self, frame, tick):
        frame.last_ref_tick = tick
        frame.insert_tick = tick

    def on_reference(self, frame, tick):
        frame.last_ref_tick = tick

    def on_remove(self, frame):
        pass

    def choose_victim(self, frames, tick):
        candidates = [frame for frame in frames if not frame.pinned]
        if not candidates:
            raise BufferPoolExhaustedError("all frames pinned")
        return min(candidates, key=lambda frame: frame.last_ref_tick)


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out baseline."""

    def on_insert(self, frame, tick):
        frame.insert_tick = tick

    def on_reference(self, frame, tick):
        pass

    def on_remove(self, frame):
        pass

    def choose_victim(self, frames, tick):
        candidates = [frame for frame in frames if not frame.pinned]
        if not candidates:
            raise BufferPoolExhaustedError("all frames pinned")
        return min(candidates, key=lambda frame: frame.insert_tick)
