"""The database catalog: schemas, indexes, procedures, options, DTT model.

Self-managing state the paper keeps "persistently in the database" — column
histograms, procedure statistics, the DTT cost model — hangs off catalog
objects so it survives across statements exactly as it would in the
product.
"""

from repro.catalog.schema import (
    Catalog,
    Column,
    ForeignKey,
    IndexSchema,
    ProcedureSchema,
    TableSchema,
)
from repro.catalog.types import (
    normalize_type,
    python_value_matches,
    estimated_value_bytes,
)

__all__ = [
    "Catalog",
    "Column",
    "ForeignKey",
    "IndexSchema",
    "ProcedureSchema",
    "TableSchema",
    "normalize_type",
    "python_value_matches",
    "estimated_value_bytes",
]
