"""Catalog objects: tables, columns, indexes, procedures, options."""

from repro.catalog.types import estimated_value_bytes, normalize_type
from repro.common.errors import CatalogError


class Column:
    """One column of a table."""

    def __init__(self, name, type_name, nullable=True, declared_length=None):
        self.name = name
        self.type_name = normalize_type(type_name)
        self.nullable = nullable
        self.declared_length = declared_length

    def estimated_bytes(self):
        return estimated_value_bytes(self.type_name, self.declared_length)

    def __repr__(self):
        return "Column(%s %s%s)" % (
            self.name,
            self.type_name,
            "" if self.nullable else " NOT NULL",
        )


class ForeignKey:
    """A referential-integrity constraint.

    The statistics subsystem uses these when estimating multi-column join
    selectivity ("a combination of existing referential integrity
    constraints, index statistics, and density values", Section 3.2).
    """

    def __init__(self, columns, ref_table, ref_columns):
        self.columns = tuple(columns)
        self.ref_table = ref_table
        self.ref_columns = tuple(ref_columns)

    def __repr__(self):
        return "ForeignKey(%s -> %s(%s))" % (
            ",".join(self.columns),
            self.ref_table,
            ",".join(self.ref_columns),
        )


class TableSchema:
    """Schema (and runtime hooks) for one base table."""

    def __init__(self, name, columns, primary_key=(), foreign_keys=()):
        self.name = name
        self.columns = list(columns)
        self.primary_key = tuple(primary_key)
        self.foreign_keys = list(foreign_keys)
        self._by_name = {}
        for index, column in enumerate(self.columns):
            if column.name in self._by_name:
                raise CatalogError(
                    "duplicate column %r in table %r" % (column.name, name)
                )
            self._by_name[column.name] = index
        for key_column in self.primary_key:
            if key_column not in self._by_name:
                raise CatalogError(
                    "primary key column %r missing from table %r"
                    % (key_column, name)
                )
        #: Set by the engine: the TableStorage backing this table.
        self.storage = None
        #: Set by the stats manager: per-column statistics holders.
        self.column_stats = {}

    def column_index(self, name):
        try:
            return self._by_name[name]
        except KeyError:
            raise CatalogError(
                "no column %r in table %r" % (name, self.name)
            ) from None

    def has_column(self, name):
        return name in self._by_name

    def column(self, name):
        return self.columns[self.column_index(name)]

    def row_bytes(self):
        """Estimated stored width of one row (plus a small row header)."""
        return 8 + sum(column.estimated_bytes() for column in self.columns)

    @property
    def row_count(self):
        return self.storage.row_count if self.storage is not None else 0

    def __repr__(self):
        return "TableSchema(%s: %s)" % (
            self.name,
            ", ".join(column.name for column in self.columns),
        )


class IndexSchema:
    """Schema for one (B+-tree) index."""

    def __init__(self, name, table_name, column_names, unique=False):
        self.name = name
        self.table_name = table_name
        self.column_names = tuple(column_names)
        self.unique = unique
        #: Set by the engine: the BTree instance.
        self.btree = None
        #: LSN stamp of the last DML/DDL that touched this index's
        #: entries (observability; fallback decisions use the narrower
        #: per-key state below).
        self.last_dml_lsn = 0
        #: Per-key delete stamps: ``key tuple -> LSN`` of the mutation
        #: that removed the entry.  Only *removals* can blind a snapshot
        #: index scan (an entry inserted after the snapshot is filtered
        #: by the visibility check; an entry deleted after it is simply
        #: gone from the tree), so only keys stamped here — and only when
        #: the stamp postdates the snapshot and the key falls inside the
        #: scan's bounds — force the heap fallback.  Pruned against the
        #: oldest open snapshot by the engine.
        self.delete_stamps = {}
        #: LSN horizon of the last full rebuild (CREATE INDEX, restart
        #: recovery, REORGANIZE): the whole tree reflects this committed
        #: horizon, so snapshots older than it cannot use the index.
        self.rebuild_lsn = 0
        #: Standby mode (replication): the tree is not maintained at all
        #: while shipped WAL is applied heap-only; every snapshot scan
        #: falls back until promotion rebuilds the index.
        self.always_fallback = False

    def __repr__(self):
        return "IndexSchema(%s ON %s(%s)%s)" % (
            self.name,
            self.table_name,
            ",".join(self.column_names),
            " UNIQUE" if self.unique else "",
        )


class ProcedureSchema:
    """A stored procedure: a named, parameterized statement.

    Procedures drive two of the paper's mechanisms: per-procedure execution
    statistics (moving averages of CPU time and result cardinality,
    Section 3.2) and the plan cache with its training period (Section 4.1).
    """

    def __init__(self, name, parameters, body_sql):
        self.name = name
        self.parameters = tuple(parameters)
        self.body_sql = body_sql
        #: Set by the stats manager: ProcedureStats.
        self.stats = None

    def __repr__(self):
        return "ProcedureSchema(%s(%s))" % (self.name, ", ".join(self.parameters))


class Catalog:
    """All schema objects of one database."""

    def __init__(self):
        self._tables = {}
        self._indexes = {}
        self._procedures = {}
        #: Server/database options ("incorrect database option settings"
        #: are one of the design flaws Application Profiling detects).
        self.options = {}
        #: The DTT model used by the cost model; set by the engine.
        self.dtt_model = None

    # -- tables ---------------------------------------------------------- #

    def add_table(self, schema):
        if schema.name in self._tables:
            raise CatalogError("table %r already exists" % (schema.name,))
        self._tables[schema.name] = schema
        return schema

    def table(self, name):
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError("no table named %r" % (name,)) from None

    def has_table(self, name):
        return name in self._tables

    def drop_table(self, name):
        self.table(name)  # raises if missing
        del self._tables[name]
        for index_name in [
            index.name for index in self._indexes.values() if index.table_name == name
        ]:
            del self._indexes[index_name]

    def tables(self):
        return list(self._tables.values())

    # -- indexes ---------------------------------------------------------- #

    def add_index(self, schema):
        if schema.name in self._indexes:
            raise CatalogError("index %r already exists" % (schema.name,))
        self.table(schema.table_name)  # must exist
        self._indexes[schema.name] = schema
        return schema

    def index(self, name):
        try:
            return self._indexes[name]
        except KeyError:
            raise CatalogError("no index named %r" % (name,)) from None

    def drop_index(self, name):
        self.index(name)
        del self._indexes[name]

    def indexes_on(self, table_name):
        return [
            index
            for index in self._indexes.values()
            if index.table_name == table_name
        ]

    def indexes(self):
        return list(self._indexes.values())

    # -- procedures ------------------------------------------------------- #

    def add_procedure(self, schema):
        if schema.name in self._procedures:
            raise CatalogError("procedure %r already exists" % (schema.name,))
        self._procedures[schema.name] = schema
        return schema

    def procedure(self, name):
        try:
            return self._procedures[name]
        except KeyError:
            raise CatalogError("no procedure named %r" % (name,)) from None

    def has_procedure(self, name):
        return name in self._procedures

    def procedures(self):
        return list(self._procedures.values())
