"""SQL type handling.

Types are kept as normalized uppercase names (``INT``, ``DOUBLE``,
``VARCHAR``, ``DATE``, ``BOOLEAN``); VARCHAR carries an optional declared
length used only for row-width estimation.  Values are plain Python objects
(int, float, str, datetime.date, bool, None).
"""

import datetime

from repro.common.errors import SqlTypeError

#: Canonical names and their accepted aliases.
_ALIASES = {
    "INT": "INT",
    "INTEGER": "INT",
    "BIGINT": "INT",
    "SMALLINT": "INT",
    "DOUBLE": "DOUBLE",
    "REAL": "DOUBLE",
    "FLOAT": "DOUBLE",
    "DECIMAL": "DOUBLE",
    "NUMERIC": "DOUBLE",
    "VARCHAR": "VARCHAR",
    "CHAR": "VARCHAR",
    "TEXT": "VARCHAR",
    "STRING": "VARCHAR",
    "LONG VARCHAR": "LONG VARCHAR",
    "DATE": "DATE",
    "BOOLEAN": "BOOLEAN",
    "BOOL": "BOOLEAN",
}

#: Fixed per-value storage estimates (bytes), used for page packing.
_FIXED_WIDTHS = {
    "INT": 8,
    "DOUBLE": 8,
    "DATE": 8,
    "BOOLEAN": 1,
}

_DEFAULT_VARCHAR_BYTES = 24


def normalize_type(name):
    """Canonical type name for ``name`` (case-insensitive, alias-aware)."""
    try:
        return _ALIASES[name.strip().upper()]
    except KeyError:
        raise SqlTypeError("unknown SQL type %r" % (name,)) from None


def python_value_matches(type_name, value):
    """Whether a Python value is storable in a column of ``type_name``.

    NULL (None) matches every type; nullability is enforced separately.
    """
    if value is None:
        return True
    checks = {
        "INT": lambda v: isinstance(v, int) and not isinstance(v, bool),
        "DOUBLE": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
        "VARCHAR": lambda v: isinstance(v, str),
        "LONG VARCHAR": lambda v: isinstance(v, str),
        "DATE": lambda v: isinstance(v, datetime.date),
        "BOOLEAN": lambda v: isinstance(v, bool),
    }
    try:
        return checks[type_name](value)
    except KeyError:
        raise SqlTypeError("unknown SQL type %r" % (type_name,)) from None


def coerce_value(type_name, value):
    """Coerce a literal to the column type where natural (int -> double)."""
    if value is None:
        return None
    if type_name == "DOUBLE" and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    if not python_value_matches(type_name, value):
        raise SqlTypeError(
            "value %r is not valid for type %s" % (value, type_name)
        )
    return value


def estimated_value_bytes(type_name, declared_length=None):
    """Storage estimate for one value, used to pack rows into pages."""
    if type_name in _FIXED_WIDTHS:
        return _FIXED_WIDTHS[type_name]
    if type_name in ("VARCHAR", "LONG VARCHAR"):
        if declared_length:
            # Assume half-full variable strings plus a small header.
            return max(8, declared_length // 2 + 4)
        return _DEFAULT_VARCHAR_BYTES
    raise SqlTypeError("unknown SQL type %r" % (type_name,))
