"""Shared substrate: simulated clock, errors, units, and value coding.

Everything in the reproduction runs against a single virtual clock
(:class:`~repro.common.clock.SimClock`) so that controller behaviour that
spans "minutes" of server time (Section 2 of the paper) can be reproduced
deterministically in milliseconds of wall time.
"""

from repro.common.clock import SimClock, Timer
from repro.common.errors import (
    BufferPoolExhaustedError,
    CalibrationError,
    CatalogError,
    ExecutionError,
    MemoryQuotaExceededError,
    OptimizerError,
    ReproError,
    SqlParseError,
    SqlTypeError,
    TransactionError,
)
from repro.common.hashing import (
    order_preserving_hash,
    string_hash,
    value_width,
    word_tokens,
)
from repro.common.units import (
    DEFAULT_PAGE_SIZE,
    GiB,
    KiB,
    MiB,
    MICROSECOND,
    MILLISECOND,
    MINUTE,
    SECOND,
    bytes_to_pages,
    pages_to_bytes,
)

__all__ = [
    "SimClock",
    "Timer",
    "ReproError",
    "BufferPoolExhaustedError",
    "CalibrationError",
    "CatalogError",
    "ExecutionError",
    "MemoryQuotaExceededError",
    "OptimizerError",
    "SqlParseError",
    "SqlTypeError",
    "TransactionError",
    "order_preserving_hash",
    "string_hash",
    "value_width",
    "word_tokens",
    "DEFAULT_PAGE_SIZE",
    "KiB",
    "MiB",
    "GiB",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "MINUTE",
    "bytes_to_pages",
    "pages_to_bytes",
]
