"""Virtual time.

The paper's buffer-pool governor polls the operating system once a minute
(20 seconds in fast mode).  Reproducing that against a wall clock would make
every experiment take real minutes; instead every component of the engine
shares a :class:`SimClock` whose time only moves when something *charges*
time to it (a disk transfer, a CPU cost, an idle wait).  Experiments that
span hours of server time complete in milliseconds, deterministically.
"""

import heapq
import itertools


class SimClock:
    """A discrete-event virtual clock measured in integer microseconds.

    Components call :meth:`advance` to charge elapsed time and may register
    callbacks that fire when the clock passes a deadline (used by pollers
    such as the buffer-pool governor).
    """

    def __init__(self, start=0):
        if start < 0:
            raise ValueError("clock cannot start before zero")
        self._now = int(start)
        self._pending = []  # heap of (deadline, seq, callback)
        self._seq = itertools.count()

    @property
    def now(self):
        """Current simulated time in microseconds."""
        return self._now

    def advance(self, delta_us):
        """Move time forward by ``delta_us`` microseconds, firing timers.

        Timers fire in deadline order, and a callback that schedules another
        timer inside the advanced window is honoured within the same call.
        """
        if delta_us < 0:
            raise ValueError("time cannot move backwards (delta=%r)" % (delta_us,))
        target = self._now + int(delta_us)
        while self._pending and self._pending[0][0] <= target:
            deadline, _seq, callback = heapq.heappop(self._pending)
            # Jump the clock to the timer's deadline so that the callback
            # observes a consistent "now".
            self._now = max(self._now, deadline)
            callback()
        self._now = target

    def call_at(self, deadline_us, callback):
        """Schedule ``callback()`` to run when time reaches ``deadline_us``.

        A deadline in the past fires on the next :meth:`advance` call (even
        an ``advance(0)``).
        """
        heapq.heappush(self._pending, (int(deadline_us), next(self._seq), callback))

    def call_after(self, delay_us, callback):
        """Schedule ``callback()`` to run ``delay_us`` from now."""
        if delay_us < 0:
            raise ValueError("delay must be non-negative")
        self.call_at(self._now + int(delay_us), callback)

    def pending_timers(self):
        """Number of timers not yet fired (for tests and diagnostics)."""
        return len(self._pending)


class Timer:
    """Accumulates charged time intervals against a :class:`SimClock`.

    Used by the executor to attribute simulated cost to individual
    operators while the shared clock keeps global order.
    """

    def __init__(self, clock):
        self._clock = clock
        self.elapsed_us = 0

    def charge(self, delta_us):
        """Charge ``delta_us`` to this timer and advance the global clock."""
        if delta_us < 0:
            raise ValueError("cannot charge negative time")
        self.elapsed_us += int(delta_us)
        self._clock.advance(delta_us)

    def reset(self):
        """Zero the local accumulator (the global clock is untouched)."""
        self.elapsed_us = 0
