"""Exception hierarchy for the reproduction.

All library errors derive from :class:`ReproError` so callers can catch the
whole family with a single handler while the engine distinguishes the
situations the paper calls out (e.g. a statement exceeding its hard memory
limit is *terminated with an error*, Section 4.3).
"""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SqlParseError(ReproError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message, position=None):
        super().__init__(message)
        self.position = position


class SqlTypeError(ReproError):
    """Semantic analysis failed: unknown name, type mismatch, arity error."""


class CatalogError(ReproError):
    """Catalog violation: duplicate/missing table, column, or index."""


class OptimizerError(ReproError):
    """The optimizer could not produce a plan for a valid statement."""


class ExecutionError(ReproError):
    """Runtime failure while executing a plan."""


class MemoryQuotaExceededError(ExecutionError):
    """A statement exceeded its *hard* memory limit (paper eq. 4).

    The paper: "a hard memory limit: if exceeded, the statement is
    terminated with an error."
    """

    def __init__(self, message, used_pages=None, limit_pages=None):
        super().__init__(message)
        self.used_pages = used_pages
        self.limit_pages = limit_pages


class BufferPoolExhaustedError(ReproError):
    """No replaceable frame exists (every frame pinned)."""


class CalibrationError(ReproError):
    """DTT calibration failed or produced an unusable curve."""


class FaultError(ReproError):
    """Base class for injected-fault errors (:mod:`repro.faults`).

    Every fault the deterministic injection subsystem surfaces to a caller
    is typed under this class, so the engine can distinguish "the
    simulated environment failed" (retry, ride out, or abort the owning
    statement) from its own logic errors (never caught).
    """


class TransientIOError(FaultError):
    """One injected device I/O failure.

    Retryable by construction: the fault plan draws independently per
    attempt, so the bounded retry paths in ``pagedfile`` almost always
    recover.  Carries the injection ``site`` for post-mortems.
    """

    def __init__(self, message, site=None):
        super().__init__(message)
        self.site = site


class IOFaultError(FaultError):
    """Device I/O still failing after the bounded retries.

    Surfaces to — and aborts — the owning statement only; the server,
    its pool accounting, and every other connection survive.
    """


class SpillWriteError(FaultError):
    """A spill-file write kept failing past the operator retry budget.

    The owning statement is terminated; its work memory and pins are
    released by the operators' normal unwind paths.
    """


class TransactionError(ReproError):
    """Transaction misuse: commit/rollback without begin, write after abort."""


class SchedulerError(ReproError):
    """The workload scheduler could not make progress or was misused."""


class SchedulerAborted(SchedulerError):
    """A suspended session was torn down because a sibling session died.

    Raised *from the session's wait site* during the scheduler's abort
    cascade, so each parked statement unwinds through its own operator
    cleanup paths (releasing pins, quota pages, and spill files) before
    the next session is woken.  Never caught by statement-level error
    handling: teardown must reach the top of the session.
    """


class SchedulerDeadlockError(SchedulerError):
    """No session is runnable and no pending event can unblock one."""


class SimulatedCrash(ReproError):
    """The simulated process died at a seeded crash point.

    Raised by the :class:`repro.recovery.harness.CrashHarness` crash hook
    (and the ``wal.checkpoint_crash`` fault site).  Deliberately *not* a
    :class:`FaultError`: a crash is process death, not a statement abort
    the bounded-retry machinery should absorb.
    """
