"""Value coding for the statistics subsystem (paper Section 3.1).

SQL Anywhere funnels every short data type through one histogram
infrastructure by way of an *order-preserving hash* whose range is a
double-precision float:

* numeric types (including date/time) hash to their float value;
* short strings hash to an integer built from the binary values of their
  leading characters;
* each type has a *value width* — the distance between two consecutive
  domain values — used to keep the hashed domain discrete.

Long strings use a separate, *non* order-preserving hash
(:func:`string_hash`) because their buckets key on (hash, predicate) pairs
rather than on range boundaries.
"""

import datetime
import zlib

#: Number of leading characters folded into the order-preserving string
#: hash.  Eight bytes saturate a double's 53-bit mantissa, mirroring the
#: paper's "integer value representing the binary values of characters".
_STRING_PREFIX_CHARS = 7

#: Strings longer than this use the long-string (predicate-cache) statistics
#: infrastructure instead of ordinary histograms.
SHORT_STRING_MAX = 64

_EPOCH = datetime.date(1970, 1, 1)


def order_preserving_hash(value):
    """Map ``value`` to a float such that ordering is preserved per type.

    ``None`` is not hashable here; NULLs are tracked separately by the
    histograms (via Is Null frequent-value statistics).
    """
    if value is None:
        raise ValueError("NULL has no order-preserving hash; track it separately")
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, datetime.datetime):
        return value.timestamp()
    if isinstance(value, datetime.date):
        return float((value - _EPOCH).days)
    if isinstance(value, str):
        return _string_order_hash(value)
    if isinstance(value, (bytes, bytearray)):
        return _bytes_order_hash(bytes(value))
    raise TypeError("unsupported type for order-preserving hash: %r" % (type(value),))


def _string_order_hash(text):
    """Pack the first few characters into an integer, then widen to float."""
    return _bytes_order_hash(text.encode("utf-8", errors="replace"))


def _bytes_order_hash(data):
    acc = 0
    prefix = data[:_STRING_PREFIX_CHARS]
    for byte in prefix:
        acc = (acc << 8) | byte
    # Left-justify so that short strings compare correctly against longer
    # ones sharing the prefix ("ab" < "abc").
    acc <<= 8 * (_STRING_PREFIX_CHARS - len(prefix))
    return float(acc)


def string_hash(text):
    """Non order-preserving 32-bit hash for long string/binary statistics."""
    if isinstance(text, str):
        data = text.encode("utf-8", errors="replace")
    else:
        data = bytes(text)
    return zlib.crc32(data) & 0xFFFFFFFF


def value_width(type_name):
    """Distance between two consecutive domain values of a type.

    The paper gives INT -> 1 and REAL -> 1e-35 as examples; dates step in
    whole days and timestamps in (fractional) seconds.  Strings step by one
    unit of the order-preserving hash's least significant byte position.
    """
    widths = {
        "INT": 1.0,
        "INTEGER": 1.0,
        "BIGINT": 1.0,
        "SMALLINT": 1.0,
        "BOOLEAN": 1.0,
        "REAL": 1e-35,
        "DOUBLE": 1e-35,
        "FLOAT": 1e-35,
        "DECIMAL": 1e-35,
        "NUMERIC": 1e-35,
        "DATE": 1.0,
        "TIME": 1.0,
        "TIMESTAMP": 1e-6,
        "VARCHAR": 1.0,
        "CHAR": 1.0,
        "BINARY": 1.0,
        "LONG VARCHAR": 1.0,
    }
    try:
        return widths[type_name.upper()]
    except KeyError:
        raise ValueError("unknown type name %r" % (type_name,)) from None


def word_tokens(text):
    """Split ``text`` into 'words' for LIKE word-bucket statistics.

    The paper defines a word loosely as "any sequence of characters
    separated by any amount of white space".
    """
    return [token for token in text.split() if token]
