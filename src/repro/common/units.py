"""Byte and time units used throughout the reproduction.

The paper mixes units freely (a 5 MB reserve, a 64 KB deadband, 4 K pages,
one-minute polling).  We keep bytes as plain integers and simulated time in
integer **microseconds**; these constants give the conversions a single home.
"""

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: Default page size for the heterogeneous buffer pool (Section 2.1: all
#: page frames are the same size).
DEFAULT_PAGE_SIZE = 4 * KiB

#: Simulated time is measured in microseconds.
MICROSECOND = 1
MILLISECOND = 1000 * MICROSECOND
SECOND = 1000 * MILLISECOND
MINUTE = 60 * SECOND


def bytes_to_pages(n_bytes, page_size=DEFAULT_PAGE_SIZE):
    """Number of whole pages needed to hold ``n_bytes`` (ceiling division)."""
    if n_bytes < 0:
        raise ValueError("byte count must be non-negative, got %r" % (n_bytes,))
    return -(-n_bytes // page_size)


def pages_to_bytes(n_pages, page_size=DEFAULT_PAGE_SIZE):
    """Size in bytes of ``n_pages`` pages."""
    if n_pages < 0:
        raise ValueError("page count must be non-negative, got %r" % (n_pages,))
    return n_pages * page_size
