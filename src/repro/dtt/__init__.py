"""Disk Transfer Time (DTT) models (paper Section 4.2).

A DTT function summarizes disk-subsystem behaviour as the amortized cost of
reading (or writing) one page randomly over a *band size* area of the disk:
band size 1 is sequential I/O, larger bands are increasingly random.  The
optimizer's I/O cost estimates come entirely from a DTT model; the model is
stored in the catalog and can be replaced via ``CALIBRATE DATABASE``.

This package provides:

* :class:`~repro.dtt.curve.DTTCurve` — a piecewise log-linear curve;
* :class:`~repro.dtt.model.DTTModel` — (operation, page-size) -> curve;
* :func:`~repro.dtt.model.default_dtt_model` — the paper's generic default
  (Figure 2a);
* :func:`~repro.dtt.model.flash_dtt_model` — flat flash/SD behaviour
  (Figure 3);
* :func:`~repro.dtt.calibration.calibrate_read_curve` — measures a device
  and fits a read curve, approximating the write curve from it (Figure 2b).
"""

from repro.dtt.calibration import (
    RetryRecalibrator,
    approximate_write_curve,
    calibrate_device,
    calibrate_read_curve,
    calibrate_write_curve,
)
from repro.dtt.curve import DTTCurve
from repro.dtt.model import DTTModel, default_dtt_model, flash_dtt_model

__all__ = [
    "DTTCurve",
    "DTTModel",
    "default_dtt_model",
    "flash_dtt_model",
    "calibrate_read_curve",
    "calibrate_write_curve",
    "approximate_write_curve",
    "calibrate_device",
    "RetryRecalibrator",
]
