"""DTT calibration (``CALIBRATE DATABASE``, paper Section 4.2).

"For specialized hardware, a CALIBRATE DATABASE statement can determine the
read DTT curve from the actual system.  The write DTT curve is approximated
using the read curve as a baseline."

Calibration drives a *device* — anything with ``size_pages``,
``read_page(page_no) -> cost_us`` and ``write_page(page_no) -> cost_us`` —
through random reads confined to windows of varying band size, averages the
measured per-page cost, and fits a :class:`~repro.dtt.curve.DTTCurve`.
"""

import collections
import random

from repro.common.errors import CalibrationError, IOFaultError, TransientIOError
from repro.dtt.curve import DTTCurve
from repro.dtt.model import DTTModel, READ, WRITE

#: Band sizes probed by default: logarithmically spaced, like Figure 2(b).
DEFAULT_BANDS = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536)

#: Calibration drives the device *directly* (no volume in between), so it
#: carries its own bounded retry for injected transient faults.
_CALIBRATION_RETRIES = 5


def _measured_io(op, page):
    """One calibration transfer, retrying injected transient faults.

    The failed attempts' latency is deliberately excluded from the
    measurement — a DTT curve models the healthy device, not the chaos
    plan — but a persistently failing device aborts calibration typed.
    """
    attempt = 0
    while True:
        try:
            return op(page)
        except TransientIOError as exc:
            attempt += 1
            if attempt > _CALIBRATION_RETRIES:
                raise IOFaultError(
                    "calibration I/O on page %d still failing after %d "
                    "retries (%s)" % (page, _CALIBRATION_RETRIES, exc)
                ) from exc

#: Fraction of the read cost attributed to a write at the same band size
#: when approximating the write curve from the read baseline.  Writes are
#: asynchronous and schedulable, hence cheaper at large bands; at band 1
#: the advantage is small.
_WRITE_FRACTION_SEQUENTIAL = 0.95
_WRITE_FRACTION_RANDOM = 0.60


def calibrate_read_curve(device, bands=DEFAULT_BANDS, samples_per_band=64, seed=0):
    """Measure the device's read DTT curve.

    For each band size, ``samples_per_band`` page reads are issued at
    uniformly random offsets within a window of that many pages, and the
    mean per-page cost becomes the curve's control point.  Band sizes
    larger than the device are clamped to the device size (and
    deduplicated), so small devices still produce a valid curve.
    """
    if samples_per_band < 1:
        raise CalibrationError("need at least one sample per band")
    if device.size_pages < 1:
        raise CalibrationError("cannot calibrate an empty device")
    rng = random.Random(seed)
    points = []
    seen_bands = set()
    for band in sorted(bands):
        band = min(int(band), device.size_pages)
        if band < 1 or band in seen_bands:
            continue
        seen_bands.add(band)
        base = 0
        if device.size_pages > band:
            base = rng.randrange(device.size_pages - band)
        total_us = 0.0
        for _ in range(samples_per_band):
            page = base + rng.randrange(band)
            total_us += _measured_io(device.read_page, page)
        points.append((band, total_us / samples_per_band))
    if not points:
        raise CalibrationError("no band sizes were measurable on this device")
    return DTTCurve(points)


def approximate_write_curve(read_curve):
    """Derive a write curve from a measured read curve.

    The write fraction blends from ~1.0 at band 1 (sequential writes gain
    little) toward :data:`_WRITE_FRACTION_RANDOM` at the largest measured
    band (async writes gain the most where seeks dominate).
    """
    points = read_curve.points
    if len(points) == 1:
        band, cost = points[0]
        return DTTCurve([(band, cost * _WRITE_FRACTION_SEQUENTIAL)])
    first_band = points[0][0]
    last_band = points[-1][0]
    span = last_band - first_band
    write_points = []
    for band, cost in points:
        if span == 0:
            fraction = _WRITE_FRACTION_SEQUENTIAL
        else:
            mix = (band - first_band) / span
            fraction = (
                _WRITE_FRACTION_SEQUENTIAL
                + mix * (_WRITE_FRACTION_RANDOM - _WRITE_FRACTION_SEQUENTIAL)
            )
        write_points.append((band, cost * fraction))
    return DTTCurve(write_points)


def calibrate_write_curve(device, bands=DEFAULT_BANDS, samples_per_band=64,
                          seed=0):
    """Measure the device's write DTT curve directly.

    The paper approximates writes from the read baseline — an assumption
    that holds for rotational disks (async, schedulable writes are
    cheaper) but is backwards on flash, where erase-before-write makes
    writes *dearer* than reads.  Direct write calibration is the paper's
    Section 6 item "better modeling of write performance on removable
    media".
    """
    if samples_per_band < 1:
        raise CalibrationError("need at least one sample per band")
    if device.size_pages < 1:
        raise CalibrationError("cannot calibrate an empty device")
    rng = random.Random(seed)
    points = []
    seen_bands = set()
    for band in sorted(bands):
        band = min(int(band), device.size_pages)
        if band < 1 or band in seen_bands:
            continue
        seen_bands.add(band)
        base = 0
        if device.size_pages > band:
            base = rng.randrange(device.size_pages - band)
        total_us = 0.0
        for __ in range(samples_per_band):
            page = base + rng.randrange(band)
            total_us += _measured_io(device.write_page, page)
        points.append((band, total_us / samples_per_band))
    if not points:
        raise CalibrationError("no band sizes were measurable on this device")
    return DTTCurve(points)


class RetryRecalibrator:
    """Fault-aware recalibration: re-measure the device when statements
    keep paying injected-fault retries.

    A device that has started stalling (injected transient faults model
    exactly that) makes the catalog's DTT model optimistic: the optimizer
    keeps pricing I/O at healthy-device cost while every statement burns
    retry backoff on top.  This governor watches the per-statement retry
    count over a sliding window of recent statements; when the mean
    crosses the threshold it re-runs device calibration — measured on
    the device *as it now behaves* — and installs the result, so costing
    tracks the hardware the workload actually experiences.

    One full window of cooldown follows every trigger (successful or
    not): calibration itself drives the device and must not be able to
    re-trigger itself off its own retries.
    """

    def __init__(self, server, window=32, threshold=2.0,
                 samples_per_band=16, metrics=None):
        self.server = server
        self.window = max(1, int(window))
        self.threshold = float(threshold)
        self.samples_per_band = samples_per_band
        self.recalibrations = 0
        self.recalibrations_aborted = 0
        self._recent = collections.deque(maxlen=self.window)
        self._cooldown = 0
        self._m_recalibrations = (
            metrics.counter("dtt.recalibrations")
            if metrics is not None else None
        )
        self._m_aborted = (
            metrics.counter("dtt.recalibrations_aborted")
            if metrics is not None else None
        )

    def observe(self, statement_retries):
        """Fold one finished statement's retry count in; returns True
        when this observation triggered a recalibration."""
        self._recent.append(int(statement_retries))
        if self._cooldown > 0:
            self._cooldown -= 1
            return False
        if len(self._recent) < self.window:
            return False
        if sum(self._recent) / len(self._recent) < self.threshold:
            return False
        return self._recalibrate()

    def _recalibrate(self):
        server = self.server
        self._cooldown = self.window
        self._recent.clear()
        try:
            model = calibrate_device(
                server.disk, server.config.page_size,
                samples_per_band=self.samples_per_band,
            )
        except (CalibrationError, IOFaultError):
            # The device is too sick to even measure right now; keep the
            # old model and let the cooldown expire before trying again.
            self.recalibrations_aborted += 1
            if self._m_aborted is not None:
                self._m_aborted.inc()
            return False
        server.catalog.dtt_model = model
        self.recalibrations += 1
        if self._m_recalibrations is not None:
            self._m_recalibrations.inc()
        if server.tracer is not None:
            server.tracer.record_system(
                "dtt-recalibrate", server.clock.now,
                "trigger=retry-window window=%d" % self.window,
            )
        return True


def calibrate_device(device, page_size, bands=DEFAULT_BANDS,
                     samples_per_band=64, seed=0, measure_writes=False):
    """Full calibration: measure reads and build a model.

    The write curve is approximated from the read baseline by default
    (the paper's behaviour); pass ``measure_writes=True`` to measure it
    directly instead — essential on removable/flash media, where the
    approximation inverts the true read/write relationship.
    """
    read_curve = calibrate_read_curve(
        device, bands=bands, samples_per_band=samples_per_band, seed=seed
    )
    if measure_writes:
        write_curve = calibrate_write_curve(
            device, bands=bands, samples_per_band=samples_per_band, seed=seed
        )
    else:
        write_curve = approximate_write_curve(read_curve)
    model = DTTModel("calibrated")
    model.set_curve(READ, page_size, read_curve)
    model.set_curve(WRITE, page_size, write_curve)
    return model
