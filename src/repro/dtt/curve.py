"""Piecewise log-linear DTT curves."""

import math


class DTTCurve:
    """Amortized per-page I/O cost (microseconds) as a function of band size.

    The curve is defined by control points ``(band_size, cost_us)`` with
    band sizes >= 1, and interpolated linearly in ``log(band_size)`` — the
    natural scale for the phenomenon (Figure 2b of the paper is plotted on
    a log axis).  Queries outside the control-point range clamp to the
    nearest endpoint: costs neither drop below the sequential cost nor grow
    without bound past the largest measured band.
    """

    def __init__(self, points):
        if not points:
            raise ValueError("a DTT curve needs at least one control point")
        cleaned = []
        for band, cost in points:
            if band < 1:
                raise ValueError("band size must be >= 1, got %r" % (band,))
            if cost < 0:
                raise ValueError("cost must be non-negative, got %r" % (cost,))
            cleaned.append((float(band), float(cost)))
        cleaned.sort(key=lambda point: point[0])
        for (band_a, _), (band_b, _) in zip(cleaned, cleaned[1:]):
            if band_a == band_b:
                raise ValueError("duplicate band size %r in DTT curve" % (band_a,))
        self._points = cleaned

    @property
    def points(self):
        """The control points as a list of ``(band, cost_us)`` tuples."""
        return list(self._points)

    def cost_us(self, band_size):
        """Amortized cost in microseconds of one page I/O at ``band_size``."""
        if band_size < 1:
            raise ValueError("band size must be >= 1, got %r" % (band_size,))
        band = float(band_size)
        points = self._points
        if band <= points[0][0]:
            return points[0][1]
        if band >= points[-1][0]:
            return points[-1][1]
        for (band_lo, cost_lo), (band_hi, cost_hi) in zip(points, points[1:]):
            if band_lo <= band <= band_hi:
                log_lo = math.log(band_lo)
                log_hi = math.log(band_hi)
                if log_hi == log_lo:
                    return cost_lo
                fraction = (math.log(band) - log_lo) / (log_hi - log_lo)
                return cost_lo + fraction * (cost_hi - cost_lo)
        raise AssertionError("unreachable: band %r not bracketed" % (band,))

    def scaled(self, factor):
        """A new curve with every cost multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return DTTCurve([(band, cost * factor) for band, cost in self._points])

    def to_dict(self):
        """Serializable form, for catalog storage."""
        return {"points": [[band, cost] for band, cost in self._points]}

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`."""
        return cls([(band, cost) for band, cost in data["points"]])

    def __eq__(self, other):
        if not isinstance(other, DTTCurve):
            return NotImplemented
        return self._points == other._points

    def __repr__(self):
        return "DTTCurve(%d points, %.0f..%.0f us)" % (
            len(self._points),
            self._points[0][1],
            self._points[-1][1],
        )
