"""DTT models: collections of curves keyed by (operation, page size)."""

from repro.common.units import KiB
from repro.dtt.curve import DTTCurve

READ = "read"
WRITE = "write"

_VALID_OPERATIONS = (READ, WRITE)


class DTTModel:
    """Maps ``(operation, page_size)`` to a :class:`DTTCurve`.

    This is the object stored in the database catalog ("the DTT model is
    stored in the catalog and can be altered or loaded with the execution
    of a DDL statement"), which is what makes it practical to deploy
    thousands of databases with a cost model calibrated on one
    representative device.
    """

    def __init__(self, name, curves=None):
        self.name = name
        self._curves = {}
        if curves:
            for (operation, page_size), curve in curves.items():
                self.set_curve(operation, page_size, curve)

    def set_curve(self, operation, page_size, curve):
        """Install ``curve`` for ``operation`` at ``page_size`` bytes."""
        if operation not in _VALID_OPERATIONS:
            raise ValueError("operation must be 'read' or 'write', got %r" % (operation,))
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self._curves[(operation, int(page_size))] = curve

    def curve(self, operation, page_size):
        """The curve for ``(operation, page_size)``, scaling a neighbouring
        page size's curve when no exact entry exists."""
        key = (operation, int(page_size))
        if key in self._curves:
            return self._curves[key]
        candidates = [
            (size, curve)
            for (op, size), curve in self._curves.items()
            if op == operation
        ]
        if not candidates:
            raise KeyError("model %r has no %s curves" % (self.name, operation))
        nearest_size, nearest_curve = min(
            candidates, key=lambda item: abs(item[0] - page_size)
        )
        return nearest_curve.scaled(page_size / nearest_size)

    def cost_us(self, operation, page_size, band_size):
        """Amortized microseconds for one page I/O."""
        return self.curve(operation, page_size).cost_us(band_size)

    def page_sizes(self, operation):
        """Sorted page sizes with an exact curve for ``operation``."""
        return sorted(size for (op, size) in self._curves if op == operation)

    def to_dict(self):
        """Serializable form, for catalog storage."""
        return {
            "name": self.name,
            "curves": [
                {"operation": op, "page_size": size, "curve": curve.to_dict()}
                for (op, size), curve in sorted(self._curves.items())
            ],
        }

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`."""
        model = cls(data["name"])
        for entry in data["curves"]:
            model.set_curve(
                entry["operation"],
                entry["page_size"],
                DTTCurve.from_dict(entry["curve"]),
            )
        return model


def default_dtt_model(page_size=4 * KiB):
    """The paper's generic default DTT (Figure 2a).

    Shape constraints reproduced from the figure and prose:

    * band size 1 (sequential) is by far the cheapest;
    * cost grows with band size, steeply at first, then flattening as
      the seek distance saturates;
    * at large band sizes the *write* curve lies **below** the read curve
      (writes are asynchronous and can be scheduled; reads are synchronous);
    * 8 K pages cost more than 4 K pages.
    """
    read_4k = DTTCurve(
        [
            (1, 110),
            (4, 900),
            (16, 2300),
            (64, 4200),
            (256, 6300),
            (1024, 9200),
            (2048, 11200),
            (3500, 12600),
        ]
    )
    write_4k = DTTCurve(
        [
            (1, 95),
            (4, 700),
            (16, 1600),
            (64, 2700),
            (256, 4000),
            (1024, 5600),
            (2048, 6600),
            (3500, 7300),
        ]
    )
    model = DTTModel("default-generic")
    scale_8k = 1.45
    model.set_curve(READ, page_size, read_4k)
    model.set_curve(WRITE, page_size, write_4k)
    model.set_curve(READ, page_size * 2, read_4k.scaled(scale_8k))
    model.set_curve(WRITE, page_size * 2, write_4k.scaled(scale_8k))
    return model


def flash_dtt_model(page_size=4 * KiB):
    """A flash / SD-card DTT (Figure 3): uniform random access times.

    Random reads cost the same regardless of band size; writes are more
    expensive than reads (erase-before-write), but equally uniform.
    """
    read_4k = DTTCurve([(1, 380), (1000000, 400)])
    write_4k = DTTCurve([(1, 1150), (1000000, 1200)])
    model = DTTModel("flash-sd")
    model.set_curve(READ, page_size, read_4k)
    model.set_curve(WRITE, page_size, write_4k)
    model.set_curve(READ, page_size // 2, read_4k.scaled(0.7))
    model.set_curve(WRITE, page_size // 2, write_4k.scaled(0.7))
    return model
