"""The database server facade.

Wires the substrates together into a self-managing engine: simulated OS
and disk, heterogeneous buffer pool with its sizing governor, catalog,
self-managing statistics, cost-based optimizer with plan cache, adaptive
executor, transaction log, and the embedded-style lifecycle the paper
leads with ("a SQL Anywhere database can be started by a simple client API
call from the application, and can shut down automatically when the last
connection disconnects").
"""

from repro.engine.server import (
    Result,
    Server,
    ServerConfig,
    StatementOverrides,
    connect,
)
from repro.engine.cursor import Cursor, FiberScheduler
from repro.engine.scheduler import Session, WorkloadScheduler

__all__ = ["Server", "ServerConfig", "StatementOverrides", "Result",
           "connect", "Cursor", "FiberScheduler", "Session",
           "WorkloadScheduler"]
