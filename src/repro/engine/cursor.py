"""Cursors and fiber-style request scheduling (paper Sections 2.1, 2).

"When a heap is not in use — for example, when the server is awaiting the
next FETCH request from the application — the heap is 'unlocked'.  Pages
in unlocked heaps can be stolen ... To resume the processing of the
request, the heap is re-locked."  And on fibers: "if a request running on
a fiber blocks or is suspended, and its heaps are swapped out, then its
memory and address space requirements are very small."

A :class:`Cursor` executes a SELECT lazily: rows are produced on demand by
``fetchone``/``fetchmany``, and between fetches the cursor's heap (holding
its state) is unlocked so the buffer pool may steal its pages.  A
:class:`FiberScheduler` interleaves many open cursors cooperatively,
reproducing the fiber model's concurrency without OS threads.
"""

from repro.buffer import Heap
from repro.common.errors import ExecutionError
from repro.exec import ExecutionContext, Executor
from repro.exec.instrument import ExecStatsCollector
from repro.sql import Binder, ast, parse_statement


class Cursor:
    """An open, incrementally-fetched query."""

    def __init__(self, connection, sql, params=None):
        server = connection.server
        statement = parse_statement(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise ExecutionError("cursors are for SELECT statements")
        self._binder = Binder(server.catalog)
        block = self._binder.bind(statement)
        optimizer = server.make_optimizer()
        self._result = optimizer.optimize_select(block)
        self._server = server
        self._task = server.memory_governor.begin_task()
        # The cursor's snapshot stays open across fetches: every batch
        # reads the same commit-LSN image, however long the application
        # waits between FETCH requests.
        self._snapshot_lsn = (
            server.versions.open_snapshot()
            if server.config.snapshot_reads else None
        )
        self._ctx = ExecutionContext(
            server.pool, server.temp_file, server.stats, server.clock,
            self._task, params,
            feedback_enabled=server.config.feedback_enabled,
            metrics=server.metrics, fault_plan=server.fault_plan,
            yield_hook=server.spill_yield_point,
            snapshot_lsn=self._snapshot_lsn,
            snapshot_txn=connection._txn_id,
        )
        self.exec_stats = ExecStatsCollector()
        executor = Executor(
            plan_block_fn=optimizer.optimize_select,
            bind_recursive_arm_fn=self._binder.bind_recursive_arm,
            exec_stats=self.exec_stats,
        )
        server.metrics.counter("cursors.opened").inc()
        self._rows = executor.run(self._result, self._ctx)
        #: Cursor state lives in a heap, per Section 2.1; it is unlocked
        #: whenever the cursor is suspended between fetches.
        self.heap = Heap(server.pool, name="cursor-heap")
        self.heap.allocate_page({"cursor-state": sql})
        self.heap.unlock()
        self.columns = block.output_columns()
        self._exhausted = False
        self._closed = False
        self.rows_fetched = 0

    # ------------------------------------------------------------------ #
    # fetching
    # ------------------------------------------------------------------ #

    def fetchone(self):
        """Next row, or None when the cursor is exhausted."""
        rows = self.fetchmany(1)
        return rows[0] if rows else None

    def fetchmany(self, n):
        """Up to ``n`` more rows (the FETCH request: heap locks around it)."""
        if self._closed:
            raise ExecutionError("cursor is closed")
        if self._exhausted:
            return []
        self.heap.lock()  # resume: re-pin (and swizzle back) our pages
        try:
            rows = []
            for __ in range(n):
                try:
                    rows.append(next(self._rows))
                except StopIteration:
                    self._exhausted = True
                    break
            self.rows_fetched += len(rows)
            return rows
        finally:
            self.heap.unlock()  # suspend: our pages become stealable
            if self._server.sanitize and self._server.pin_checks_quiescent():
                # Suspended cursors hold no pins: their heaps are unlocked
                # and stealable between FETCH requests.
                self._server.pool.assert_no_pins("cursor suspend")

    def fetchall(self):
        """Everything remaining."""
        collected = []
        while True:
            batch = self.fetchmany(64)
            if not batch:
                return collected
            collected.extend(batch)

    @property
    def exhausted(self):
        return self._exhausted

    def explain(self, analyze=False):
        """The cursor's plan; with ``analyze=True``, annotated with the
        per-operator actuals accumulated by the fetches so far."""
        if analyze:
            return self.exec_stats.render(self._result.plan)
        return self._result.explain()

    def close(self):
        if self._closed:
            return
        self._closed = True
        self.heap.lock()
        self.heap.free()
        self._rows.close()
        if self._snapshot_lsn is not None:
            self._server.versions.close_snapshot(self._snapshot_lsn)
        self._server.memory_governor.end_task(self._task)
        if self._server.sanitize and self._server.pin_checks_quiescent():
            self._server.pool.assert_no_pins("cursor close")


class FiberScheduler:
    """Cooperative round-robin scheduling of open cursors.

    Each step fetches a small batch from one cursor and moves on — the
    fiber model: the server decides who runs, suspended requests hold
    (almost) no locked memory.
    """

    def __init__(self, batch_size=8):
        self.batch_size = batch_size
        self._cursors = []
        self.schedule_trace = []

    def add(self, name, cursor, on_rows=None):
        """Register a cursor; ``on_rows(rows)`` receives each batch."""
        self._cursors.append((name, cursor, on_rows))

    def run(self):
        """Drain every cursor round-robin; returns rows per cursor name."""
        collected = {name: [] for name, __, __cb in self._cursors}
        live = list(self._cursors)
        while live:
            still_live = []
            for name, cursor, on_rows in live:
                batch = cursor.fetchmany(self.batch_size)
                if batch:
                    self.schedule_trace.append(name)
                    collected[name].extend(batch)
                    if on_rows is not None:
                        on_rows(batch)
                if not cursor.exhausted:
                    still_live.append((name, cursor, on_rows))
                else:
                    cursor.close()
            live = still_live
        return collected
