"""Row and table locking on the disk-based lock table (Section 2.1).

Long-term (transaction-duration) exclusive row locks live in an
:class:`~repro.storage.exthash.ExtensibleHashTable` over ordinary pool
pages: the lock table has **no configured size and no escalation
thresholds** — a transaction may lock millions of rows and the structure
simply grows, its cold buckets spilling through the buffer pool like any
other page.

Two layers sit above the row locks:

* **Multi-granularity table locks.**  DML implicitly takes an intention
  (``IX``) lock on the table before its first row lock — a dictionary
  probe, not a paged hash probe — and DDL takes a table-exclusive
  (``X``) lock, so a DROP or REORGANIZE conflicts with in-flight writers
  without ever scanning the row lock table.
* **Blocking waits.**  Transactions *wait* on conflicting locks, as the
  paper's long-duration lock design assumes.  A blocked ``acquire``
  under an armed :class:`~repro.engine.scheduler.WorkloadScheduler`
  parks the session on the lock's release queue; when the holder
  releases, the waiter to wake is drawn from the seeded ``locks.wakeup``
  stream so contended wakeup order is byte-reproducible.  A waits-for
  graph is checked for cycles at block time and the youngest transaction
  in a cycle (largest txn id — deterministic) is aborted with
  :class:`LockDeadlockError`.  Without a scheduler (or with
  ``ServerConfig.blocking_locks=False``) conflicts keep the historical
  fail-fast behaviour and raise :class:`LockConflictError` immediately.
"""

import contextlib

from repro.analysis.races import tap as _race_tap
from repro.common.errors import ReproError
from repro.storage.exthash import ExtensibleHashTable

# Table lock modes (multi-granularity; row locks are always exclusive).
IX = "IX"  # intent to lock rows exclusively (DML)
S = "S"    # shared table lock (utilities; no reader takes it today)
X = "X"    # table-exclusive (DDL)

_COMPATIBLE = {
    (IX, IX): True, (IX, S): False, (IX, X): False,
    (S, IX): False, (S, S): True, (S, X): False,
    (X, IX): False, (X, S): False, (X, X): False,
}
_MODE_RANK = {IX: 1, S: 1, X: 2}

#: Discriminator for table-lock keys in the waiter queues; row keys are
#: ``(table, page_ordinal, slot)`` 3-tuples, table keys ``(_TABLE, name)``.
_TABLE = "table"


class LockConflictError(ReproError):
    """The lock is held by another transaction (fail-fast path)."""

    def __init__(self, key, holder_txn, message=None):
        super().__init__(
            message
            or "lock %r is held by transaction(s) %r" % (key, holder_txn)
        )
        self.key = key
        self.holder_txn = holder_txn


class LockDeadlockError(LockConflictError):
    """This transaction was chosen as the deadlock (or stall) victim.

    Subclasses :class:`LockConflictError` so every statement-level abort
    path that already absorbs lock conflicts absorbs victims too.
    """

    def __init__(self, key, txn_id, cycle=()):
        super().__init__(
            key, None,
            message="transaction %r aborted as deadlock victim on %r"
            " (cycle %r)" % (txn_id, key, tuple(cycle)),
        )
        self.txn_id = txn_id
        self.cycle = tuple(cycle)


class LockWaiter:
    """One parked lock request, queued on the contended key."""

    __slots__ = ("txn_id", "key", "mode", "session", "granted", "victim")

    def __init__(self, txn_id, key, mode):
        self.txn_id = txn_id
        self.key = key
        self.mode = mode
        self.session = None
        self.granted = False
        self.victim = False

    def describe(self):
        if self.key[0] is _TABLE:
            return "table:%s mode=%s txn=%d" % (
                self.key[1], self.mode, self.txn_id
            )
        return "row:%s/%d.%d txn=%d" % (
            self.key[0], self.key[1], self.key[2], self.txn_id
        )

    def __repr__(self):
        return "LockWaiter(%s%s%s)" % (
            self.describe(),
            " granted" if self.granted else "",
            " victim" if self.victim else "",
        )


class _NullCounter:
    def inc(self, n=1):
        pass


_NULL = _NullCounter()


class LockManager:
    """Row and table locks per transaction, blocking under a scheduler."""

    def __init__(self, file, pool, metrics=None, scheduler_fn=None,
                 blocking=True, sanitize=False):
        self._table = ExtensibleHashTable(file, pool, name="lock-table")
        self._held = {}         # txn_id -> [row keys], acquisition order
        self._table_locks = {}  # table name -> {txn_id: mode}
        self._held_tables = {}  # txn_id -> [table names]
        self._waiters = {}      # key -> [LockWaiter], arrival order
        self._waits_for = {}    # blocked txn_id -> {txn ids it waits on}
        self.blocking = bool(blocking)
        self.sanitize = bool(sanitize)
        self._scheduler_fn = scheduler_fn or (lambda: None)
        self.races = None  # RaceSanitizer, attached by the server
        # Plain attributes mirror the counters so the manager is fully
        # inspectable without a registry.
        self.conflicts = 0
        self.waits = 0
        self.deadlocks = 0
        self.stalls = 0
        self.release_misses = 0
        if metrics is not None:
            self._m_conflicts = metrics.counter("locks.conflicts")
            self._m_waits = metrics.counter("locks.waits")
            self._m_deadlocks = metrics.counter("locks.deadlocks")
            self._m_stalls = metrics.counter("locks.stalls")
            self._m_release_miss = metrics.counter("locks.release_miss")
            metrics.register_probe(
                "locks.table_pages", lambda: self.lock_table_pages
            )
        else:
            self._m_conflicts = _NULL
            self._m_waits = _NULL
            self._m_deadlocks = _NULL
            self._m_stalls = _NULL
            self._m_release_miss = _NULL

    # ------------------------------------------------------------------ #
    # acquisition
    # ------------------------------------------------------------------ #

    def acquire(self, txn_id, table_name, row_id):
        """Take an exclusive row lock; re-acquisition by the holder is free.

        The row lock is covered by an implicit table ``IX`` lock, taken
        on the transaction's first touch of the table.  On conflict the
        caller parks (scheduler armed) or raises (fail-fast).
        """
        self.acquire_table(txn_id, table_name, IX)
        key = (table_name, row_id.page_ordinal, row_id.slot)
        with self._critical(), _race_tap(
            self.races, "locks", key, "w", txn_id=txn_id
        ):
            holder = self._table.get(key)
            if holder == txn_id:
                return
            if holder is None and key not in self._waiters:
                self._install(key, txn_id, X)
                return
            blockers = set()
            if holder is not None:
                blockers.add(holder)
            blockers.update(
                w.txn_id for w in self._waiters.get(key, ())
                if w.txn_id != txn_id
            )
        self._wait(txn_id, key, X, blockers)

    def acquire_table(self, txn_id, table_name, mode=IX):
        """Take (or upgrade to) a table-level lock.

        Holding ``X`` covers any request; an ``IX`` holder upgrading to
        ``X`` waits for the other holders to drain (upgrade deadlocks are
        cycles like any other).  Queued incompatible waiters block new
        requests too — no barging past a parked DDL statement.
        """
        with self._critical(), _race_tap(
            self.races, "locks", (_TABLE, table_name), "w", txn_id=txn_id
        ):
            holders = self._table_locks.get(table_name, {})
            held = holders.get(txn_id)
            if held is not None and (held == X or held == mode):
                return
            key = (_TABLE, table_name)
            blockers = {
                t for t, m in holders.items()
                if t != txn_id and not _COMPATIBLE[(m, mode)]
            }
            blockers.update(
                w.txn_id for w in self._waiters.get(key, ())
                if w.txn_id != txn_id and not _COMPATIBLE[(w.mode, mode)]
            )
            if not blockers:
                self._install(key, txn_id, mode)
                return
        self._wait(txn_id, key, mode, blockers)

    # ------------------------------------------------------------------ #
    # release
    # ------------------------------------------------------------------ #

    def release_all(self, txn_id):
        """Drop every lock of ``txn_id`` (commit/rollback), handing each
        freed lock to a waiter drawn from the seeded wakeup stream."""
        for key in self._held.pop(txn_id, []):
            with self._critical(), _race_tap(
                self.races, "locks", key, "w", txn_id=txn_id
            ):
                try:
                    self._table.remove(key)
                except KeyError:
                    # _held says this txn holds the row but the lock
                    # table disagrees: bookkeeping divergence.  Counted,
                    # and fatal under the sanitizers.
                    self.release_misses += 1
                    self._m_release_miss.inc()
                    if self.sanitize:
                        from repro.analysis.sanitizers import (
                            LockInvariantError,
                        )

                        raise LockInvariantError(
                            "release of %r by txn %r missed the lock table"
                            % (key, txn_id)
                        )
                    continue
                self._grant_next(key)
        for table_name in self._held_tables.pop(txn_id, []):
            with self._critical(), _race_tap(
                self.races, "locks", (_TABLE, table_name), "w", txn_id=txn_id
            ):
                holders = self._table_locks.get(table_name)
                if holders is not None:
                    holders.pop(txn_id, None)
                    if not holders:
                        del self._table_locks[table_name]
                self._grant_next((_TABLE, table_name))
        if self._waits_for:
            for edges in self._waits_for.values():
                edges.discard(txn_id)

    # ------------------------------------------------------------------ #
    # blocking internals
    # ------------------------------------------------------------------ #

    def _wait(self, txn_id, key, mode, blockers):
        self.conflicts += 1
        self._m_conflicts.inc()
        scheduler = self._scheduler_fn()
        if (
            not self.blocking
            or scheduler is None
            or not scheduler.lock_can_wait()
        ):
            raise LockConflictError(key, tuple(sorted(blockers)))
        waiter = LockWaiter(txn_id, key, mode)
        with _race_tap(self.races, "locks", key, "w", txn_id=txn_id):
            self._waiters.setdefault(key, []).append(waiter)
            self._waits_for[txn_id] = set(blockers)
        self.waits += 1
        self._m_waits.inc()
        cycle = self._find_cycle(txn_id)
        if cycle is not None:
            self._on_deadlock(txn_id, waiter, cycle)
        try:
            # The park *is* the protocol: the waiter queue and waits-for
            # edge must be published before the baton is handed over so
            # release_all can grant us and the detector can see the edge.
            scheduler.wait_for_lock(waiter)  # noqa: SIM011
        finally:
            if not waiter.granted:
                self._unqueue(waiter)
            self._waits_for.pop(txn_id, None)
        if waiter.victim:
            raise LockDeadlockError(key, txn_id)

    def _on_deadlock(self, txn_id, waiter, cycle):
        self.deadlocks += 1
        self._m_deadlocks.inc()
        victim = max(cycle)  # youngest transaction — deterministic
        if victim == txn_id:
            self._unqueue(waiter)
            self._waits_for.pop(txn_id, None)
            raise LockDeadlockError(waiter.key, txn_id, cycle)
        self._victimize(victim)

    def _victimize(self, victim_txn):
        waiter = self._find_waiter(victim_txn)
        if waiter is None:
            raise ReproError(
                "deadlock victim txn %r has no parked lock request"
                % (victim_txn,)
            )
        waiter.victim = True
        self._unqueue(waiter)
        self._waits_for.pop(victim_txn, None)

    def victimize_stalled(self, waiter):
        """Break an external-holder stall: the scheduler aborts a waiter
        whose holder lives outside the scheduled session set (a plain
        driver connection that will never run while sessions park)."""
        self.stalls += 1
        self._m_stalls.inc()
        waiter.victim = True
        self._unqueue(waiter)
        self._waits_for.pop(waiter.txn_id, None)

    def _find_cycle(self, start):
        """A waits-for cycle through ``start`` as a txn-id list, or None.

        Edges are only ever added from the blocking transaction, so any
        new cycle passes through ``start``; neighbours are explored in
        sorted order for a deterministic cycle report.
        """
        stack = [(start, (start,))]
        seen = set()
        while stack:
            node, path = stack.pop()
            for nxt in sorted(self._waits_for.get(node, ())):
                if nxt == start:
                    return list(path)
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + (nxt,)))
        return None

    def _find_waiter(self, txn_id):
        for queue in self._waiters.values():
            for waiter in queue:
                if waiter.txn_id == txn_id and not waiter.granted:
                    return waiter
        return None

    def _unqueue(self, waiter):
        queue = self._waiters.get(waiter.key)
        if queue is None:
            return
        if waiter in queue:
            queue.remove(waiter)
        if not queue:
            del self._waiters[waiter.key]

    def _grant_next(self, key):
        """Grant a freed lock to queued waiters.

        Rows grant exactly one waiter (locks are exclusive); tables keep
        granting while the next drawn waiter stays compatible with the
        holders.  Remaining waiters re-point their waits-for edges at
        the new holder so the deadlock detector keeps seeing the truth.
        """
        queue = self._waiters.get(key)
        if not queue:
            return
        while queue:
            grantable = [w for w in queue if self._grantable(key, w)]
            if not grantable:
                return
            waiter = grantable[self._draw_wakeup(len(grantable))]
            self._install(key, waiter.txn_id, waiter.mode)
            queue.remove(waiter)
            if not queue:
                del self._waiters[key]
            waiter.granted = True
            self._waits_for.pop(waiter.txn_id, None)
            for other in queue:
                edges = self._waits_for.get(other.txn_id)
                if edges is not None:
                    edges.add(waiter.txn_id)

    def _grantable(self, key, waiter):
        if key[0] is not _TABLE or len(key) == 3:
            return self._table.get(key) is None
        holders = self._table_locks.get(key[1], {})
        return all(
            t == waiter.txn_id or _COMPATIBLE[(m, waiter.mode)]
            for t, m in holders.items()
        )

    def _install(self, key, txn_id, mode):
        if key[0] is not _TABLE or len(key) == 3:
            if self.sanitize:
                current = self._table.get(key)
                if current is not None and current != txn_id:
                    from repro.analysis.sanitizers import LockInvariantError

                    raise LockInvariantError(
                        "granting row lock %r to txn %r over live holder %r"
                        % (key, txn_id, current)
                    )
            self._table.put(key, txn_id)
            self._held.setdefault(txn_id, []).append(key)
            return
        table_name = key[1]
        holders = self._table_locks.setdefault(table_name, {})
        held = holders.get(txn_id)
        if held is None:
            holders[txn_id] = mode
            self._held_tables.setdefault(txn_id, []).append(table_name)
        elif _MODE_RANK[mode] > _MODE_RANK[held]:
            holders[txn_id] = mode

    def _draw_wakeup(self, n):
        if n <= 1:
            return 0
        scheduler = self._scheduler_fn()
        if scheduler is not None:
            return scheduler.draw_lock_wakeup(n)
        return 0

    def _critical(self):
        """Suppress scheduler switches while lock metadata is mid-update.

        Lock-table pages flow through the buffer pool, so a probe can
        miss and hit the pool's yield hook; a baton switch between a
        probe and its matching install would let two sessions grant
        themselves the same lock.
        """
        scheduler = self._scheduler_fn()
        if scheduler is None:
            return contextlib.nullcontext()
        return scheduler.critical_section()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def held_by(self, txn_id):
        """Row locks held by ``txn_id`` (table locks not counted)."""
        return len(self._held.get(txn_id, []))

    def guard_tokens(self, txn_id):
        """Lockset tokens for the race sanitizer: every row and table
        lock ``txn_id`` currently holds."""
        tokens = set(self._held.get(txn_id, ()))
        tokens.update(
            (_TABLE, name) for name in self._held_tables.get(txn_id, ())
        )
        return tokens

    def total_locks(self):
        """Row locks across all transactions (table locks not counted)."""
        return len(self._table)

    def table_lock_mode(self, txn_id, table_name):
        return self._table_locks.get(table_name, {}).get(txn_id)

    def waiting_count(self):
        return sum(len(queue) for queue in self._waiters.values())

    @property
    def lock_table_pages(self):
        """Pages backing the lock table (grows on demand, never sized)."""
        return self._table.bucket_pages
