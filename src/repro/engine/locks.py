"""Row locking on the disk-based extensible hash table (Section 2.1).

Long-term (transaction-duration) exclusive row locks live in an
:class:`~repro.storage.exthash.ExtensibleHashTable` over ordinary pool
pages: the lock table has **no configured size and no escalation
thresholds** — a transaction may lock millions of rows and the structure
simply grows, its cold buckets spilling through the buffer pool like any
other page.
"""

from repro.common.errors import ReproError
from repro.storage.exthash import ExtensibleHashTable


class LockConflictError(ReproError):
    """The row is locked by another transaction."""

    def __init__(self, key, holder_txn):
        super().__init__(
            "row %r is locked by transaction %r" % (key, holder_txn)
        )
        self.key = key
        self.holder_txn = holder_txn


class LockManager:
    """Exclusive row locks keyed by (table, row id), per transaction."""

    def __init__(self, file, pool):
        self._table = ExtensibleHashTable(file, pool, name="lock-table")
        self._held = {}  # txn_id -> [keys]
        self.conflicts = 0

    # ------------------------------------------------------------------ #
    # acquisition / release
    # ------------------------------------------------------------------ #

    def acquire(self, txn_id, table_name, row_id):
        """Take an exclusive lock; re-acquisition by the holder is free.

        Raises :class:`LockConflictError` if another transaction holds it
        (this single-scheduler engine fails fast rather than queueing).
        """
        key = (table_name, row_id.page_ordinal, row_id.slot)
        holder = self._table.get(key)
        if holder is None:
            self._table.put(key, txn_id)
            self._held.setdefault(txn_id, []).append(key)
            return
        if holder != txn_id:
            self.conflicts += 1
            raise LockConflictError(key, holder)

    def release_all(self, txn_id):
        """Drop every lock of ``txn_id`` (commit/rollback)."""
        for key in self._held.pop(txn_id, []):
            try:
                self._table.remove(key)
            except KeyError:
                pass

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def held_by(self, txn_id):
        return len(self._held.get(txn_id, []))

    def total_locks(self):
        return len(self._table)

    @property
    def lock_table_pages(self):
        """Pages backing the lock table (grows on demand, never sized)."""
        return self._table.bucket_pages
