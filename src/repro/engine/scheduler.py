"""Deterministic multi-session workload scheduler.

The paper's governors are built for *concurrent* load — the soft memory
limit is ``pool / multiprogramming_level`` (eq. 5) and the adaptive MPL
machinery reacts to contention between statements — but a single
connection can never produce that contention.  This module runs N
sessions (each a generator of SQL statements) against one server with
genuinely interleaved execution, while keeping every run bit-for-bit
deterministic.

**How determinism survives threads.**  Each session runs on its own
thread, but exactly one thread is ever runnable: a session parks on its
private :class:`threading.Event` and the *baton* is handed explicitly at
yield points (buffer-pool page misses, spill-file flushes, commit waits,
statement boundaries).  The decision to switch is drawn from the fault
plan's seeded ``sched.interleave`` substream (or a local seeded RNG when
no plan is armed), so the OS thread scheduler has no influence: the same
seed and workload produce byte-identical :meth:`WorkloadScheduler.trace_lines`.

**Admission control.**  Before each statement a session requests a slot
from the memory governor's :class:`~repro.exec.memory.AdmissionQueue`
(capacity = the live multiprogramming level, adaptive or not); saturated
sessions queue FIFO and are promoted as statements finish — the paper's
MPL knob finally gating real concurrency.

**Group commit.**  A committing session parks on its
:class:`~repro.storage.log.CommitTicket` instead of forcing the log
alone; the :class:`~repro.storage.log.GroupCommitCoordinator` flushes
once per batch, and this scheduler closes the batch early when every
runnable session has drained — no later commit can join it, so waiting
out the flush window would only add latency.
"""

import contextlib
import random
import threading

from repro.common.errors import (
    FaultError,
    MemoryQuotaExceededError,
    SchedulerAborted,
    SchedulerDeadlockError,
)
from repro.engine.locks import LockConflictError
from repro.faults.plan import LOCK_WAKEUP, SCHED_INTERLEAVE

# Session states.
READY = "ready"
RUNNING = "running"
WAITING_ADMISSION = "waiting-admission"
WAITING_COMMIT = "waiting-commit"
WAITING_LOCK = "waiting-lock"
WAITING_REPL = "waiting-repl"
DONE = "done"
FAILED = "failed"
ABORTED = "aborted"

#: Yield-point site names (literal, greppable — trace lines carry them).
YIELD_POOL_MISS = "pool.miss"
YIELD_SPILL = "exec.spill"
YIELD_STATEMENT = "sched.statement"
YIELD_LOCK = "lock.wait"
YIELD_REPL_APPLY = "repl.apply"

#: Consecutive no-progress dispatch attempts tolerated before the run is
#: declared deadlocked (each attempt may legitimately fail under a
#: hostile fault plan whose injected errors abort the inline flush).
MAX_STALLED_DISPATCHES = 16


class Session:
    """One scripted client: a name plus a source of statements.

    ``statements`` is an iterable of items — a SQL string, a
    ``(sql, params)`` pair, or a callable invoked with the session's
    :class:`~repro.engine.server.Connection` (one "statement" that may
    run arbitrary work under the scheduler's yield discipline, e.g. a
    sync round) — or a callable taking the Connection and returning such
    an iterable (generators welcome: they observe earlier results).
    """

    def __init__(self, name, statements, server=None):
        self.name = name
        self.statements = statements
        #: Foreign server this session connects to instead of the
        #: scheduler's own (replica apply actors).  Foreign sessions
        #: skip the primary's MPL admission queue — they compete for a
        #: different server's resources.
        self.server = server
        self.status = READY
        self.event = threading.Event()
        self.thread = None
        self.ticket = None
        self.lock_waiter = None
        self.repl_ready_fn = None
        self.in_statement = False
        self.statements_run = 0
        self.statements_failed = 0
        self.errors = []
        self.error = None

    def __repr__(self):
        return "Session(%r, %s, run=%d)" % (
            self.name, self.status, self.statements_run
        )


class WorkloadScheduler:
    """Runs concurrent sessions over one server, deterministically."""

    def __init__(self, server, seed=0, switch_rate=0.25):
        self.server = server
        self.seed = int(seed)
        #: Probability of switching sessions at a pool-miss or spill
        #: yield point (statement boundaries always offer the baton).
        self.switch_rate = float(switch_rate)
        self.sanitize = bool(getattr(server, "sanitize", False))
        self._rng = random.Random("sched:%d" % self.seed)
        self._lock_rng = random.Random("sched-locks:%d" % self.seed)
        self._critical = 0
        self._sessions = []
        self._ready = []
        self._current = None
        self._driver_event = threading.Event()
        self._aborting = False
        self._fatal = None
        self._started = False
        #: Zero-argument callables consulted when every session is
        #: blocked and neither a flush nor a lock victim can help:
        #: return True after producing an event that can unblock a
        #: session (the replication cluster's hook advances the shared
        #: clock to the next in-flight frame arrival).
        self.progress_hooks = []
        self.trace = []
        self.switches = 0
        self._m_switches = server.metrics.counter("sched.switches")
        self._m_statements = server.metrics.counter("sched.statements")
        self._m_stmt_errors = server.metrics.counter(
            "sched.statement_errors"
        )
        self._m_admission_waits = server.metrics.counter(
            "sched.admission_waits"
        )
        self._m_commit_waits = server.metrics.counter("sched.commit_waits")
        self._m_lock_waits = server.metrics.counter("sched.lock_waits")
        self._m_repl_waits = server.metrics.counter("sched.repl_waits")

    # ------------------------------------------------------------------ #
    # workload definition
    # ------------------------------------------------------------------ #

    def add_session(self, name, statements, server=None):
        if self._started:
            raise SchedulerDeadlockError(
                "cannot add sessions to a started scheduler"
            )
        if any(s.name == name for s in self._sessions):
            raise ValueError("duplicate session name %r" % (name,))
        session = Session(
            name, statements,
            server=server if server is not self.server else None,
        )
        self._sessions.append(session)
        return session

    @property
    def sessions(self):
        return list(self._sessions)

    # ------------------------------------------------------------------ #
    # the run
    # ------------------------------------------------------------------ #

    def run(self):
        """Execute every session to completion; returns a report dict.

        A fatal error in any session (anything other than the absorbed
        statement-level fault/quota/lock aborts) tears the other sessions
        down through their own unwind paths, then re-raises here — a
        :class:`~repro.common.errors.SimulatedCrash` from an armed crash
        hook surfaces to the crash harness exactly like the
        single-session case.
        """
        if self._started:
            raise SchedulerDeadlockError("scheduler already ran")
        self._started = True
        if not self._sessions:
            return self.report()
        server = self.server
        previous_hook = server.pool.yield_hook
        server.scheduler = self
        server.pool.yield_hook = self._pool_miss_yield
        try:
            for session in self._sessions:
                session.thread = threading.Thread(
                    target=self._session_main,
                    args=(session,),
                    name="repro-session-%s" % session.name,
                    daemon=True,
                )
                session.thread.start()
            first = self._sessions[0]
            self._ready.extend(self._sessions[1:])
            first.status = RUNNING
            self._current = first
            self._trace(first, "start")
            first.event.set()
            self._driver_event.wait()
            for session in self._sessions:
                session.thread.join()
        finally:
            server.pool.yield_hook = previous_hook
            server.scheduler = None
            self._current = None
        if self._fatal is not None:
            raise self._fatal
        return self.report()

    def report(self):
        return {
            "sessions": len(self._sessions),
            "statements": sum(s.statements_run for s in self._sessions),
            "statement_errors": sum(
                s.statements_failed for s in self._sessions
            ),
            "switches": self.switches,
            "aborted_sessions": sum(
                1 for s in self._sessions if s.status == ABORTED
            ),
            "peak_admitted": self._admission().peak_admitted,
            "admission_waits": self._admission().total_waits,
        }

    def trace_lines(self):
        """Canonical text of the interleaving — two runs with the same
        seed and workload must produce byte-identical output."""
        return "\n".join(self.trace)

    # ------------------------------------------------------------------ #
    # yield points (called from engine code on the current session's
    # thread)
    # ------------------------------------------------------------------ #

    def yield_point(self, site, always=False):
        """Offer the baton to another session at ``site``."""
        session = self._current
        if session is None or self._aborting or self._critical:
            return
        if threading.current_thread() is not session.thread:
            # Engine work on the driver thread (setup, harness plumbing)
            # never switches.
            return
        if not always and not self._draw_switch():
            return
        self._resolve_waiters()
        nxt = self._take_ready()
        if nxt is None:
            return
        session.status = READY
        self._ready.append(session)
        self.switches += 1
        self._m_switches.inc()
        self._trace(session, "yield:%s -> %s" % (site, nxt.name))
        nxt.status = RUNNING
        self._handoff_to(nxt)
        self._park(session)

    def _pool_miss_yield(self, file, page_no):
        self.yield_point(YIELD_POOL_MISS)

    def spill_yield(self):
        self.yield_point(YIELD_SPILL)

    # ------------------------------------------------------------------ #
    # group-commit surface
    # ------------------------------------------------------------------ #

    def running_session(self):
        return self._current

    def commit_can_wait(self):
        """Whether parking this commit can possibly be productive: the
        call must come from a session thread and at least one sibling
        must still be live to join the batch or run meanwhile."""
        if self._aborting:
            return False
        session = self._current
        if session is None or (
            threading.current_thread() is not session.thread
        ):
            return False
        return any(
            s is not session and s.status not in (DONE, FAILED, ABORTED)
            for s in self._sessions
        )

    def wait_for_commit(self, ticket, coordinator):
        """Park the current session until its commit ticket is durable."""
        session = self._current
        session.ticket = ticket
        session.status = WAITING_COMMIT
        self._m_commit_waits.inc()
        self._trace(session, "wait:commit lsn=%d" % ticket.lsn)
        try:
            if not self._dispatch_from(session):
                self._park(session)
        finally:
            session.ticket = None

    # ------------------------------------------------------------------ #
    # replication surface
    # ------------------------------------------------------------------ #

    def wait_for_repl(self, ready_fn):
        """Park the current (replica apply) session until ``ready_fn()``.

        Apply actors have no work of their own to generate: between
        deliverable frames they park here instead of spinning on the
        baton, and ``_resolve_waiters`` re-readies them as soon as the
        predicate turns true (a frame arrived, or every producer
        session reached a terminal state and the actor should drain).
        """
        session = self._current
        if session is None or (
            threading.current_thread() is not session.thread
        ):
            return
        if ready_fn():
            return
        session.repl_ready_fn = ready_fn
        session.status = WAITING_REPL
        self._m_repl_waits.inc()
        self._trace(session, "wait:repl")
        try:
            if not self._dispatch_from(session):
                self._park(session)
        finally:
            session.repl_ready_fn = None

    # ------------------------------------------------------------------ #
    # lock-manager surface
    # ------------------------------------------------------------------ #

    def lock_can_wait(self):
        """Whether parking on a lock can possibly be productive: the call
        must come from a session thread and at least one sibling must be
        live to eventually release the lock (or this run to unwind)."""
        if self._aborting:
            return False
        session = self._current
        if session is None or (
            threading.current_thread() is not session.thread
        ):
            return False
        return any(
            s is not session and s.status not in (DONE, FAILED, ABORTED)
            for s in self._sessions
        )

    def wait_for_lock(self, waiter):
        """Park the current session until its lock request is granted or
        it is chosen as a deadlock victim.

        The admission slot is released while parked — a session blocked
        on a lock must not pin an MPL slot that the lock holder needs to
        finish its statement — and re-acquired after the wait resolves.
        """
        session = self._current
        waiter.session = session
        session.lock_waiter = waiter
        session.status = WAITING_LOCK
        self._m_lock_waits.inc()
        self._trace(session, "wait:lock %s" % waiter.describe())
        self._release_admission(session)
        try:
            if not self._dispatch_from(session):
                self._park(session)
        finally:
            session.lock_waiter = None
        self._acquire_admission(session)
        self._assert_admitted(session)

    def draw_lock_wakeup(self, n):
        """Index of the waiter to wake among ``n`` grantable ones, drawn
        from the fault plan's seeded ``locks.wakeup`` stream (or the
        local lock RNG when no plan is armed)."""
        plan = self.server.fault_plan
        if plan is not None:
            return plan.draw_uniform(LOCK_WAKEUP, 0, n)
        return self._lock_rng.randrange(n)

    @contextlib.contextmanager
    def critical_section(self):
        """Suppress baton switches while lock metadata is mid-update.

        Pool misses inside the paged lock table would otherwise hand the
        baton off between a lock probe and its matching install."""
        self._critical += 1
        try:
            yield
        finally:
            self._critical -= 1

    def in_critical_section(self):
        """Whether baton switches are currently suppressed (used by the
        race sanitizer as an implicit guard token)."""
        return self._critical > 0

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #

    def _admission(self):
        return self.server.memory_governor.admission

    def _acquire_admission(self, session):
        admission = self._admission()
        if admission.request(session):
            return
        session.status = WAITING_ADMISSION
        self._m_admission_waits.inc()
        self._trace(
            session, "wait:admission depth=%d" % admission.queue_depth()
        )
        if not self._dispatch_from(session):
            self._park(session)

    def _release_admission(self, session):
        for promoted in self._admission().release(session):
            if promoted.status == WAITING_ADMISSION:
                promoted.status = READY
                self._ready.append(promoted)

    def _assert_admitted(self, session):
        """Sanitizer invariant: a session never executes while the
        admission queue still holds it."""
        if not self.sanitize:
            return
        admission = self._admission()
        if admission.queued(session) or not admission.admitted(session):
            from repro.analysis.sanitizers import SchedulerInvariantError

            raise SchedulerInvariantError(
                "session %r executing while %s the admission queue"
                % (
                    session.name,
                    "queued in" if admission.queued(session)
                    else "not admitted by",
                )
            )

    # ------------------------------------------------------------------ #
    # sanitizer surface
    # ------------------------------------------------------------------ #

    def pin_check_safe(self):
        """Whether a statement-boundary pin-leak assertion is sound now.

        A session suspended mid-statement legitimately holds pins; the
        pool-wide zero-pins check only applies when no *other* session is
        inside a statement.
        """
        if self._aborting:
            return False
        current = self._current
        return not any(
            s is not current and s.in_statement
            and s.status not in (DONE, FAILED, ABORTED)
            for s in self._sessions
        )

    # ------------------------------------------------------------------ #
    # internals: baton handoff
    # ------------------------------------------------------------------ #

    def _handoff_to(self, target):
        self._current = target
        target.event.set()

    def _park(self, session):
        session.event.wait()
        session.event.clear()
        if self._aborting:
            raise SchedulerAborted(
                "session %r torn down by a sibling's failure" % session.name
            )

    def _take_ready(self):
        while self._ready:
            session = self._ready.pop(0)
            if session.status == READY:
                return session
        return None

    def _resolve_waiters(self):
        for session in self._sessions:
            if (
                session.status == WAITING_COMMIT
                and session.ticket is not None
                and session.ticket.durable
            ):
                session.status = READY
                self._ready.append(session)
                self._trace(session, "commit-durable")
        for session in self._sessions:
            waiter = session.lock_waiter
            if (
                session.status == WAITING_LOCK
                and waiter is not None
                and (waiter.granted or waiter.victim)
            ):
                session.status = READY
                self._ready.append(session)
                self._trace(
                    session,
                    "lock-granted" if waiter.granted else "lock-victim",
                )
        for session in self._sessions:
            if (
                session.status == WAITING_REPL
                and session.repl_ready_fn is not None
                and session.repl_ready_fn()
            ):
                session.status = READY
                self._ready.append(session)
                self._trace(session, "repl-ready")
        for promoted in self._admission().promote():
            if promoted.status == WAITING_ADMISSION:
                promoted.status = READY
                self._ready.append(promoted)

    def _dispatch_from(self, session):
        """Hand the baton onward while ``session`` blocks.

        Returns True if the wait resolved before the session ever parked
        (it keeps the baton); False once the baton has been handed off
        and the caller must park.
        """
        stalled = 0
        while True:
            self._resolve_waiters()
            if session.status == READY:
                self._ready.remove(session)
                session.status = RUNNING
                return True
            nxt = self._take_ready()
            if nxt is not None:
                nxt.status = RUNNING
                self._handoff_to(nxt)
                return False
            if self._aborting:
                raise SchedulerAborted(
                    "session %r torn down while blocked" % session.name
                )
            if self._force_progress(session):
                stalled = 0
                continue
            stalled += 1
            if stalled >= MAX_STALLED_DISPATCHES:
                raise SchedulerDeadlockError(
                    "session %r blocked in %s with no runnable session "
                    "and no pending event"
                    % (session.name, session.status)
                )

    def _force_progress(self, session):
        """Every session is blocked: close the commit batch and flush.

        No parked session can add a commit, so waiting out the flush
        window would only add latency without growing the batch — the
        group closes early.  Returns whether any event that can unblock
        a session was produced."""
        coordinator = getattr(self.server, "group_commit", None)
        if coordinator is not None and coordinator.pending_count() > 0:
            if session.status == WAITING_COMMIT:
                # The blocked committer flushes for the whole batch; an
                # exhausted-retry IOFaultError is *its* statement's to
                # absorb.
                return coordinator.flush() > 0
            try:
                return coordinator.flush() > 0
            except FaultError:
                # Foreign work (this session only wants an admission
                # slot): the checkpoint-governor idiom — count the fault,
                # never kill the bystander.  The owning sessions retry at
                # the next dispatch round.
                plan = self.server.fault_plan
                if plan is not None:
                    plan.note_statement_abort()
                self._trace(session, "flush-fault-absorbed")
                return False
        for hook in self.progress_hooks:
            if hook():
                return True
        return self._break_lock_stall()

    def _break_lock_stall(self):
        """Every session is blocked and no commit is pending: a lock
        waiter whose holder lives outside the scheduler (a plain driver
        connection) can never be granted by a parked sibling.  Abort the
        first such waiter in session order — deterministic — rather than
        declaring the whole run deadlocked."""
        lock_manager = getattr(self.server, "lock_manager", None)
        if lock_manager is None:
            return False
        for candidate in self._sessions:
            waiter = candidate.lock_waiter
            if (
                candidate.status == WAITING_LOCK
                and waiter is not None
                and not waiter.granted
                and not waiter.victim
            ):
                lock_manager.victimize_stalled(waiter)
                self._trace(candidate, "lock-stall-victim")
                return True
        return False

    # ------------------------------------------------------------------ #
    # internals: session lifecycle (run on session threads)
    # ------------------------------------------------------------------ #

    def _session_main(self, session):
        session.event.wait()
        session.event.clear()
        if self._aborting:
            session.status = ABORTED
            self._finish(session)
            return
        try:
            self._run_session(session)
            session.status = DONE
            self._trace(session, "done")
        except SchedulerAborted:
            session.status = ABORTED
            self._trace(session, "aborted")
        except BaseException as exc:
            # The backstop that makes a session failure a *run* failure:
            # recorded as the fatal error and re-raised by run() after
            # the surviving sessions unwind.
            session.status = FAILED
            session.error = exc
            self._trace(session, "failed:%s" % type(exc).__name__)
            if self._fatal is None:
                self._fatal = exc
            self._aborting = True
        finally:
            session.in_statement = False
        self._finish(session)

    def _run_session(self, session):
        foreign = session.server is not None
        conn = (session.server if foreign else self.server).connect()
        try:
            source = session.statements
            items = source(conn) if callable(source) else source
            for item in items:
                if callable(item):
                    call = item
                    sql = getattr(item, "__name__", "<callable>")
                    params = None
                else:
                    call = None
                    sql, params = (
                        item if isinstance(item, tuple) else (item, None)
                    )
                if not foreign:
                    self._acquire_admission(session)
                    self._assert_admitted(session)
                session.in_statement = True
                try:
                    if call is not None:
                        call(conn)
                    else:
                        conn.execute(sql, params=params)
                    session.statements_run += 1
                    self._m_statements.inc()
                except (
                    FaultError, MemoryQuotaExceededError, LockConflictError
                ) as exc:
                    # Statement-level casualties of the hostile
                    # environment or of contention: the session survives.
                    session.statements_failed += 1
                    session.errors.append(
                        (sql, "%s: %s" % (type(exc).__name__, exc))
                    )
                    self._m_stmt_errors.inc()
                    self._trace(
                        session, "stmt-error:%s" % type(exc).__name__
                    )
                    if conn._txn_id is not None:
                        conn.rollback()
                finally:
                    session.in_statement = False
                    if not foreign:
                        self._release_admission(session)
                self.yield_point(YIELD_STATEMENT, always=True)
        finally:
            if not self._aborting:
                conn.close()

    def _finish(self, session):
        """Runs on ``session``'s thread, holding the baton, after the
        session reached a terminal state: pass the baton on, drive the
        abort cascade, or wake the driver when everything is over."""
        self._admission().withdraw(session)
        while True:
            self._resolve_waiters()
            nxt = self._take_ready()
            if nxt is not None:
                nxt.status = RUNNING
                self._handoff_to(nxt)
                return
            if self._aborting:
                parked = self._next_parked()
                if parked is None:
                    break
                # Wake it where it parked; _park raises SchedulerAborted
                # so it unwinds through its own cleanup, then re-enters
                # _finish and continues the cascade.
                self._handoff_to(parked)
                return
            if all(
                s.status in (DONE, FAILED, ABORTED) for s in self._sessions
            ):
                break
            if not self._force_progress(session):
                if self._fatal is None:
                    self._fatal = SchedulerDeadlockError(
                        "sessions blocked with no runnable session after "
                        "%r finished" % (session.name,)
                    )
                self._aborting = True
        self._current = None
        self._driver_event.set()

    def _next_parked(self):
        for session in self._sessions:
            if session.status in (
                READY, WAITING_ADMISSION, WAITING_COMMIT, WAITING_LOCK,
                WAITING_REPL,
            ):
                return session
        return None

    # ------------------------------------------------------------------ #
    # internals: decisions and tracing
    # ------------------------------------------------------------------ #

    def _draw_switch(self):
        plan = self.server.fault_plan
        if plan is not None:
            return plan.should(SCHED_INTERLEAVE, self.switch_rate)
        return self._rng.random() < self.switch_rate

    def _trace(self, session, event):
        self.trace.append(
            "%012d %s %s" % (self.server.clock.now, session.name, event)
        )
