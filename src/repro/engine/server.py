"""Server, connections, and statement execution."""

import contextlib
import dataclasses
import os

from repro.analysis import sanitizers
from repro.buffer import BufferGovernor, BufferPool, GovernorConfig
from repro.catalog import (
    Catalog,
    Column,
    ForeignKey,
    IndexSchema,
    ProcedureSchema,
    TableSchema,
)
from repro.catalog.types import coerce_value
from repro.common import DEFAULT_PAGE_SIZE, MiB, SimClock
from repro.common.errors import (
    ExecutionError,
    FaultError,
    SimulatedCrash,
    SqlTypeError,
    TransactionError,
)
from repro.dtt import calibrate_device, default_dtt_model
from repro.dtt.model import DTTModel
from repro.exec import ExecutionContext, Executor, MemoryGovernor
from repro.exec.expr import evaluate, evaluate_predicate
from repro.exec.instrument import ExecStatsCollector
from repro.faults import FaultyDisk, HostileProcess, plan_from_env
from repro.faults.plan import CKPT_CRASH, LOG_TORN_TAIL
from repro.optimizer import (
    CostModelContext,
    Optimizer,
    PlanCache,
)
from repro.optimizer.costmodel import OPTIMIZER_NODE_US
from repro.optimizer.plancache import plan_signature
from repro.ossim import OperatingSystem
from repro.profiling.metrics import MetricsRegistry
from repro.recovery.checkpoint import CheckpointConfig, CheckpointGovernor
from repro.recovery.restart import RecoveryManager
from repro.sql import Binder, ast, parse_statement
from repro.stats import StatisticsManager
from repro.storage import ModelBackedDisk, TransactionLog, Volume
from repro.storage.btree import BTree
from repro.storage.log import CRASH_CKPT_MID, GroupCommitCoordinator
from repro.storage.log import DELETE as LOG_DELETE
from repro.storage.log import INSERT as LOG_INSERT
from repro.storage.log import UPDATE as LOG_UPDATE
from repro.storage.rowstore import TableStorage


@dataclasses.dataclass
class ServerConfig:
    """Server tunables (every default is the paper's where one exists)."""

    page_size: int = DEFAULT_PAGE_SIZE
    disk_pages: int = 1_000_000
    total_memory: int = 256 * MiB
    initial_pool_pages: int = 1024           # 4 MiB
    multiprogramming_level: int = 4
    optimizer_quota: int = 5000
    #: Cost-proportional optimizer effort cap: the enumerator stops once
    #: its simulated search time exceeds this multiple of the incumbent
    #: plan's estimated cost (Section 4.1 — optimization effort should be
    #: commensurate with the query's cost).  ``None`` disables the cap.
    optimizer_effort_factor: float = 16.0
    governor: GovernorConfig = dataclasses.field(default_factory=GovernorConfig)
    checkpoint: CheckpointConfig = dataclasses.field(
        default_factory=CheckpointConfig
    )
    supports_working_set: bool = True
    start_buffer_governor: bool = True
    #: Off by default: checkpoint timing perturbs I/O-sensitive
    #: experiments, so durability-focused runs opt in.
    start_checkpoint_governor: bool = False
    feedback_enabled: bool = True
    #: Section 6 future work: let the memory governor adapt the
    #: multiprogramming level to observed contention.
    adaptive_mpl: bool = False
    #: Optional :class:`repro.faults.FaultPlan` for deterministic chaos;
    #: ``None`` defers to the ``REPRO_FAULTS=<seed>`` environment default.
    fault_plan: object = None
    #: Fault-aware DTT recalibration: when the mean injected-fault retry
    #: count per statement over the last ``window`` statements crosses
    #: ``threshold``, the server re-runs device calibration so the cost
    #: model tracks the device as it currently behaves.  Window <= 0
    #: disables the trigger.
    dtt_recalibration_window: int = 32
    dtt_recalibration_threshold: float = 2.0
    #: Optional :class:`repro.storage.log.GroupCommitConfig`; ``None``
    #: uses the adaptive defaults.  Commits always route through the
    #: coordinator — without a scheduler it degenerates to the classic
    #: force-per-commit sequence.
    group_commit: object = None
    #: Lock conflicts under a workload scheduler *wait* (with deadlock
    #: detection) instead of aborting the statement.  ``False`` restores
    #: the old fail-fast behavior — kept only as the experiment baseline.
    blocking_locks: bool = True
    #: Read-only statements run against a commit-LSN snapshot instead of
    #: the latest heap, so they never queue behind writers.
    snapshot_reads: bool = True
    #: Vectorized batch execution: SELECTs run through the operators'
    #: column-major ``execute_batches`` protocol (migrated operators
    #: evaluate whole columns at a time; unmigrated ones are adapted by
    #: the row shim).  ``None`` defers to the ``REPRO_BATCH`` environment
    #: variable (default on); the differential CI lane runs both modes
    #: and requires byte-identical results.
    batch_execution: object = None
    #: Optional :class:`repro.replication.ReplicationConfig`: the server
    #: is a replicating primary — its WAL pages stream to replicas, and
    #: commits ack only after at least one replica durably holds them.
    #: Wiring (taps, publisher, coordinator gate) is installed by
    #: :class:`repro.replication.ReplicatedCluster`; this field carries
    #: the knobs.
    replication: object = None

    def batch_execution_enabled(self):
        if self.batch_execution is not None:
            return bool(self.batch_execution)
        return os.environ.get("REPRO_BATCH", "1") != "0"


@dataclasses.dataclass
class StatementOverrides:
    """Per-statement execution overrides.

    ``Connection.execute(sql, overrides=...)`` applies these to one
    statement only, leaving the server configuration untouched.  They are
    the NoREC plan-variation knobs of :mod:`repro.testgen`: the same
    query re-run under every combination must return the same multiset,
    so each toggle the optimizer or executor can flip is overridable at
    statement granularity.  ``None`` fields inherit the server default.
    """

    #: Vectorized batch execution on/off for this statement.
    batch_execution: object = None
    #: Commit-LSN snapshot reads on/off for this statement (off reads the
    #: latest committed heap directly).
    snapshot_reads: object = None
    #: Forbid index access paths: every base-table access becomes a heap
    #: scan (index-NL joins and hash-join index alternates included).
    force_heap_scan: bool = False
    #: Plan-cache routing for this statement.  ``True`` routes a plain
    #: SELECT through the connection's plan cache (keyed by statement
    #: text, trained and verified like a procedure statement); ``False``
    #: forces a CALL to bypass the cache; ``None`` keeps the default
    #: (cache for procedure bodies only).
    use_plan_cache: object = None


class Result:
    """Rows plus execution metadata."""

    def __init__(self, rows=None, columns=None, plan_result=None, notes=None,
                 rowcount=0, exec_stats=None):
        self.rows = rows if rows is not None else []
        self.columns = columns if columns is not None else []
        self.plan_result = plan_result
        self.notes = notes if notes is not None else {}
        self.rowcount = rowcount
        #: Per-operator actuals (an ExecStatsCollector) when the statement
        #: ran through the instrumented executor.
        self.exec_stats = exec_stats

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)

    def explain(self, analyze=False):
        """The plan tree; with ``analyze=True``, annotated per operator
        with actual rows in/out, pages touched, elapsed simulated µs,
        spill events, and adaptive fallbacks taken."""
        if self.plan_result is None:
            return "<no plan>"
        if analyze and self.exec_stats is not None:
            rendered = self.exec_stats.render(self.plan_result.plan)
            faults = self.notes.get("faults")
            if faults:
                rendered += "\nfaults: injected=%d retries=%d" % (
                    faults.get("injected", 0), faults.get("retries", 0)
                )
            return rendered
        return self.plan_result.explain()


def connect(server=None, **config_kwargs):
    """Embedded-style entry point: starts a server if none is running."""
    if server is None:
        server = Server(ServerConfig(**config_kwargs))
    return server.connect()


class Server:
    """One database server instance over a simulated machine."""

    def __init__(self, config=None, clock=None, os=None, disk=None,
                 sanitize=None):
        self.config = config if config is not None else ServerConfig()
        #: Debug mode: wrap the pool, governor, clock, and replacement
        #: policy in the runtime sanitizers of :mod:`repro.analysis`.
        #: ``None`` defers to the ``REPRO_SANITIZE`` process default
        #: (the test suite turns it on via a fixture).
        if sanitize is None:
            sanitize = sanitizers.sanitizers_enabled()
        self.sanitize = bool(sanitize)
        if clock is None:
            clock = (
                sanitizers.SanitizedSimClock() if self.sanitize
                else SimClock()
            )
        self.clock = clock
        #: Server-wide performance counters (paper Section 5's counter
        #: half); every engine component publishes through this registry.
        self.metrics = MetricsRegistry(self.clock)
        #: Deterministic chaos: an explicit plan wins, else the
        #: ``REPRO_FAULTS`` seed builds one per server (independent,
        #: replayable injection logs).
        plan = self.config.fault_plan
        if plan is None:
            plan = plan_from_env()
        self.fault_plan = plan
        if plan is not None:
            plan.bind(
                self.clock, self.metrics,
                tracer_fn=lambda: getattr(self, "tracer", None),
            )
        self.os = os if os is not None else OperatingSystem(
            self.config.total_memory,
            supports_working_set=self.config.supports_working_set,
        )
        if plan is not None and self.os.fault_plan is None:
            self.os.fault_plan = plan
        self.process = self.os.spawn("dbserver")
        if disk is None:
            disk = ModelBackedDisk(
                self.clock, self.config.disk_pages, default_dtt_model(
                    self.config.page_size
                ),
                page_size=self.config.page_size,
            )
        if plan is not None and not isinstance(disk, FaultyDisk):
            disk = FaultyDisk(disk, plan)
        self.disk = disk
        self.volume = Volume(disk)
        self.temp_file = self.volume.create_file("temp")
        self.log_file = self.volume.create_file("txn.log")
        if self.sanitize:
            self.pool = sanitizers.SanitizedBufferPool(
                self.temp_file, self.config.initial_pool_pages,
                policy=sanitizers.SanitizedGClockPolicy(),
            )
        else:
            self.pool = BufferPool(
                self.temp_file, self.config.initial_pool_pages
            )
        self.pool.attach_metrics(self.metrics)
        self.catalog = Catalog()
        self.catalog.dtt_model = default_dtt_model(self.config.page_size)
        self.stats = StatisticsManager(self.catalog)
        self.txn_log = TransactionLog(
            self.log_file, metrics=self.metrics, fault_plan=plan
        )
        # WAL discipline: before the pool writes back a dirty frame it
        # forces the log (steal is safe), and every newly-dirtied page is
        # tracked in the dirty-page table under the LSN about to be
        # assigned (checkpoints snapshot that table).
        self.pool.lsn_fn = lambda: self.txn_log.peek_next_lsn()
        self.pool.wal_fn = lambda: self.txn_log.force()
        #: The active :class:`repro.engine.scheduler.WorkloadScheduler`,
        #: installed only for the duration of a scheduled run.
        self.scheduler = None
        #: Commit batching: every Connection.commit routes through here.
        self.group_commit = GroupCommitCoordinator(
            log_fn=lambda: self.txn_log,
            clock=self.clock,
            config=self.config.group_commit,
            metrics=self.metrics,
            scheduler_fn=lambda: self.scheduler,
            sanitize=self.sanitize,
        )
        from repro.engine.locks import LockManager
        from repro.engine.versions import VersionManager

        self.lock_manager = LockManager(
            self.volume.create_file("locks"), self.pool,
            metrics=self.metrics,
            scheduler_fn=lambda: self.scheduler,
            blocking=self.config.blocking_locks,
            sanitize=self.sanitize,
        )
        #: Row-version snapshots for lock-free reads (MVCC-lite).
        self.versions = VersionManager(metrics=self.metrics)
        governor_cls = (
            sanitizers.SanitizedMemoryGovernor if self.sanitize
            else MemoryGovernor
        )
        self.memory_governor = governor_cls(
            self.pool,
            max_pool_pages=self.config.governor.upper_bound_bytes
            // self.config.page_size,
            multiprogramming_level=self.config.multiprogramming_level,
            adaptive=self.config.adaptive_mpl,
            metrics=self.metrics,
            lock_stats_fn=lambda: (
                self.lock_manager.waits, self.lock_manager.deadlocks
            ),
        )
        #: Deterministic lockset race detector over the designated shared
        #: structures (inert without an armed scheduler session).
        self.races = None
        if self.sanitize:
            from repro.analysis.races import RaceSanitizer

            self.races = RaceSanitizer(
                scheduler_fn=lambda: self.scheduler,
                lock_guards_fn=lambda txn_id: (
                    self.lock_manager.guard_tokens(txn_id)
                ),
            )
        self._attach_races()
        buffer_governor_cls = (
            sanitizers.SanitizedBufferGovernor if self.sanitize
            else BufferGovernor
        )
        self.buffer_governor = buffer_governor_cls(
            self.clock, self.os, self.process, self.pool,
            database_size_fn=self.database_size_bytes,
            heap_size_fn=lambda: 0,
            config=self.config.governor,
            metrics=self.metrics,
        )
        #: Hostile memory-grab injector (opt-in: rates.hostile_interval_us
        #: must be positive), competing with the pool for physical memory.
        self.hostile_process = None
        if plan is not None and plan.rates.hostile_interval_us > 0:
            self.hostile_process = HostileProcess(self.os, self.clock, plan)
        self._connections = 0
        self._running = False
        self._next_txn_id = 1
        self._in_recovery = False
        #: Application Profiling hook: set to a Tracer to capture activity.
        self.tracer = None
        #: observability
        self.statements_executed = 0
        self.checkpoint_governor = CheckpointGovernor(
            self.clock,
            log_fn=lambda: self.txn_log,
            pool=self.pool,
            model=self.catalog.dtt_model,
            page_size=self.config.page_size,
            checkpoint_fn=self.checkpoint,
            statements_fn=lambda: self.statements_executed,
            config=self.config.checkpoint,
            metrics=self.metrics,
            in_recovery_fn=lambda: self._in_recovery,
        )
        self.metrics.register_probe(
            "server.database_size_bytes", self.database_size_bytes
        )
        self.metrics.register_probe(
            "server.connections", lambda: self._connections
        )
        self._m_statements = self.metrics.counter("statements.executed")
        self._m_failed = self.metrics.counter("statements.failed")
        self._m_elapsed = self.metrics.histogram("statements.elapsed_us")
        self._m_checkpoints = self.metrics.counter("ckpt.checkpoints")
        self._m_ckpt_pages = self.metrics.counter("ckpt.pages_flushed")
        #: Fault-aware DTT recalibration (Section 4.2 meets the chaos
        #: plan): armed only when both a fault plan and a positive window
        #: are configured.
        self.dtt_recalibrator = None
        if plan is not None and self.config.dtt_recalibration_window > 0:
            from repro.dtt import RetryRecalibrator

            self.dtt_recalibrator = RetryRecalibrator(
                self,
                window=self.config.dtt_recalibration_window,
                threshold=self.config.dtt_recalibration_threshold,
                metrics=self.metrics,
            )

    def _attach_races(self):
        """Point every tapped component at the race sanitizer (re-run
        after crash recovery rebuilds the lock manager)."""
        self.pool.races = self.races
        self.group_commit.races = self.races
        self.lock_manager.races = self.races
        self.versions.races = self.races
        self.memory_governor.admission.races = self.races

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def connect(self):
        if not self._running:
            self._start()
        self._connections += 1
        return Connection(self)

    def _start(self):
        self._running = True
        if self.config.start_buffer_governor:
            self.buffer_governor.start()
        if self.config.start_checkpoint_governor:
            self.checkpoint_governor.start()

    def _disconnect(self):
        self._connections -= 1
        if self._connections <= 0:
            # "shut down automatically when the last connection disconnects"
            self.shutdown()

    def shutdown(self):
        if not self._running:
            return
        self.checkpoint()
        self.buffer_governor.stop()
        self.checkpoint_governor.stop()
        self._running = False

    @property
    def running(self):
        return self._running

    # ------------------------------------------------------------------ #
    # workload-scheduler hooks
    # ------------------------------------------------------------------ #

    def pin_checks_quiescent(self):
        """Whether the pool-wide zero-pins assertion is sound right now.

        A scheduled session suspended mid-statement legitimately holds
        pins, so statement-boundary pin checks only fire when no other
        session is inside a statement.
        """
        scheduler = self.scheduler
        return scheduler is None or scheduler.pin_check_safe()

    def spill_yield_point(self):
        """Spill-flush yield point, plumbed into every ExecutionContext."""
        scheduler = self.scheduler
        if scheduler is not None:
            scheduler.spill_yield()

    # ------------------------------------------------------------------ #
    # checkpointing, crash simulation, and restart recovery
    # ------------------------------------------------------------------ #

    def checkpoint(self):
        """Take one fuzzy checkpoint.

        A durable CKPT_BEGIN record snapshots the active transactions and
        the dirty-page table; every dirty frame is flushed (the log is
        forced first by the pool's WAL hook); a durable CKPT_END record
        then updates the master record.  Restart recovery redoes from the
        BEGIN of the last *complete* checkpoint — sound because every
        page dirtied before BEGIN hit the volume before END was written.
        """
        log = self.txn_log
        begin = log.checkpoint_begin(
            log.active_txns(), self.pool.dirty_page_table()
        )
        log.crash_point(CRASH_CKPT_MID)
        plan = self.fault_plan
        if plan is not None and plan.should(CKPT_CRASH, plan.rates.ckpt_crash):
            plan.record(CKPT_CRASH, "between checkpoint BEGIN and END")
            raise SimulatedCrash("injected crash mid-checkpoint")
        flushed = self.pool.flush_all()
        log.checkpoint_end(begin)
        self._m_checkpoints.inc()
        self._m_ckpt_pages.inc(flushed)
        if self.tracer is not None:
            self.tracer.record_system(
                "checkpoint", self.clock.now, "flushed=%d" % (flushed,)
            )
        return flushed

    def crash(self, tear_tail=None):
        """Simulated process death: volatile state lost, durable survives.

        Drops every pool frame without writeback, optionally tears the
        final durable log page (``tear_tail=True`` forces it, ``None``
        lets the fault plan's ``wal.torn_tail`` rate decide), reopens the
        log from the surviving pages, rebinds table storage to the
        surviving file pages, and abandons all locks (they die with the
        process).  The server is left *unrecovered*: tables hold whatever
        mix of flushed pages survived.  Call :meth:`restart` next.
        """
        plan = self.fault_plan
        self.pool.drop_all()
        if tear_tail is None:
            tear_tail = plan is not None and plan.should(
                LOG_TORN_TAIL, plan.rates.torn_tail
            )
        if tear_tail and self.txn_log.tear_inflight_page():
            if plan is not None:
                plan.record(LOG_TORN_TAIL, "in-flight log page torn at crash")
        self.txn_log = TransactionLog.open(
            self.log_file, metrics=self.metrics, fault_plan=plan
        )
        # Pending commit tickets died with their sessions (log_fn already
        # resolves to the reopened log for future commits).
        self.group_commit.reset()
        self.pool.lsn_fn = lambda: self.txn_log.peek_next_lsn()
        self.pool.wal_fn = lambda: self.txn_log.force()
        from repro.engine.locks import LockManager

        self.lock_manager = LockManager(
            self.volume.create_file("locks"), self.pool,
            metrics=self.metrics,
            scheduler_fn=lambda: self.scheduler,
            blocking=self.config.blocking_locks,
            sanitize=self.sanitize,
        )
        # Row-version chains are volatile: they die with the process, and
        # the snapshot horizon restarts at the recovered log's durable LSN.
        self.versions.reset(self.txn_log.durable_lsn)
        self._attach_races()
        self.temp_file.truncate()
        for table in self.catalog.tables():
            if table.storage is not None:
                table.storage.reattach_after_crash()
        if self.tracer is not None:
            self.tracer.record_system(
                "crash", self.clock.now,
                "torn_tail=%s durable_lsn=%d"
                % (bool(tear_tail), self.txn_log.durable_lsn),
            )

    def restart(self):
        """Run ARIES-lite restart recovery; returns a RecoveryReport."""
        self._in_recovery = True
        try:
            return RecoveryManager(self).run()
        finally:
            self._in_recovery = False

    def simulate_crash_and_recover(self):
        """Crash then restart in one call; returns surviving row total.

        Kept as the one-line convenience the chaos tests and experiments
        use: what a crash destroys is the unforced log tail and every
        unflushed page, and restart rebuilds exactly the committed state.
        """
        self.crash()
        self.restart()
        return sum(
            table.row_count for table in self.catalog.tables()
        )

    # ------------------------------------------------------------------ #
    # size accounting (feeds the buffer governor's eq. 1 soft cap)
    # ------------------------------------------------------------------ #

    def database_size_bytes(self):
        total = self.temp_file.size_bytes
        for table in self.catalog.tables():
            if table.storage is not None:
                total += table.storage.file.size_bytes
        for index in self.catalog.indexes():
            if index.btree is not None:
                total += index.btree.file.size_bytes
        return total

    # ------------------------------------------------------------------ #
    # optimizer plumbing
    # ------------------------------------------------------------------ #

    def make_optimizer(self, use_indexes=True):
        context = CostModelContext(
            self.catalog.dtt_model,
            self.config.page_size,
            self.pool.capacity_pages,
            soft_limit_pages=self.memory_governor.soft_limit_pages(),
            resident_fraction_fn=lambda storage: self.pool.resident_fraction(
                storage.file
            ),
        )
        # "The initial quota can be specified within the application, if
        # desired, allowing fine-grained tuning of the optimization effort
        # spent on each statement."
        quota = self.catalog.options.get(
            "optimizer_quota", self.config.optimizer_quota
        )
        if not isinstance(quota, int) or quota < 1:
            quota = self.config.optimizer_quota
        effort = self.catalog.options.get(
            "optimizer_effort_factor", self.config.optimizer_effort_factor
        )
        if isinstance(effort, (int, float)) and effort <= 0:
            effort = None  # SET OPTION optimizer_effort_factor = 0: cap off
        elif not isinstance(effort, (int, float)):
            effort = self.config.optimizer_effort_factor
        return Optimizer(
            self.catalog,
            self._make_estimator(),
            context,
            quota=quota,
            metrics=self.metrics,
            effort_factor=effort,
            use_indexes=use_indexes,
        )

    # ------------------------------------------------------------------ #
    # DTT model deployment (Section 4.2)
    # ------------------------------------------------------------------ #

    def export_dtt_model(self):
        """Serializable form of the catalog's cost model.

        "it is straightforward to deploy hundreds or thousands of
        databases to CE devices with a cost model derived from a
        representative device" — calibrate once, export, install
        everywhere.
        """
        return self.catalog.dtt_model.to_dict()

    def install_dtt_model(self, data):
        """Install a serialized DTT model into the catalog."""
        self.catalog.dtt_model = DTTModel.from_dict(data)
        return self.catalog.dtt_model

    def _make_estimator(self):
        from repro.optimizer import SelectivityEstimator

        return SelectivityEstimator(self.stats, self.catalog)

    # ------------------------------------------------------------------ #
    # bulk load (LOAD TABLE)
    # ------------------------------------------------------------------ #

    def load_table(self, table_name, rows):
        """Bulk-load rows; builds histograms automatically (Section 3.2).

        The load runs as one committed, logged transaction so the data is
        as durable as any other write (and recoverable after a crash).
        """
        table = self.catalog.table(table_name)
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        self.txn_log.begin(txn_id)
        for row in rows:
            coerced = self._coerce_row(table, row)
            row_id = table.storage.insert(coerced)
            self._index_insert(table, coerced, row_id)
            table.storage.stamp_page(
                row_id.page_ordinal, self.txn_log.peek_next_lsn()
            )
            self.txn_log.log_change(
                txn_id, LOG_INSERT, table.name, row_id, after=coerced
            )
        ticket = self.group_commit.commit(txn_id)
        # Advance the snapshot horizon so readers opened after the load
        # see its rows (the load versions nothing: no snapshot can
        # predate rows that did not exist).
        self.versions.commit(txn_id, ticket.lsn)
        self.stats.build_statistics(table_name, built_by="load")
        return table.row_count

    def _coerce_row(self, table, row):
        if len(row) != len(table.columns):
            raise ExecutionError(
                "row arity %d does not match table %r" % (len(row), table.name)
            )
        coerced = []
        for column, value in zip(table.columns, row):
            if value is None and not column.nullable:
                raise SqlTypeError(
                    "NULL in NOT NULL column %r" % (column.name,)
                )
            coerced.append(coerce_value(column.type_name, value))
        return tuple(coerced)

    def _index_check_unique(self, table, row):
        """Raise before any mutation if ``row`` would violate a unique
        index — the heap must never hold a row that was only rejected
        after its insert (nothing is logged yet, so rollback could not
        remove it)."""
        for index in self.catalog.indexes_on(table.name):
            if getattr(index, "virtual", False) or not index.unique:
                continue
            key = tuple(row[table.column_index(c)] for c in index.column_names)
            if index.btree.search(key):
                raise ExecutionError(
                    "duplicate key %r in unique index %r" % (key, index.name)
                )

    def _index_insert(self, table, row, row_id):
        for index in self.catalog.indexes_on(table.name):
            if getattr(index, "virtual", False):
                continue
            key = tuple(row[table.column_index(c)] for c in index.column_names)
            if index.unique and index.btree.search(key):
                raise ExecutionError(
                    "duplicate key %r in unique index %r" % (key, index.name)
                )
            index.btree.insert(key, row_id)
            self._stamp_index(index)

    def _index_delete(self, table, row, row_id):
        for index in self.catalog.indexes_on(table.name):
            if getattr(index, "virtual", False):
                continue
            key = tuple(row[table.column_index(c)] for c in index.column_names)
            index.btree.delete(key, row_id)
            # Removals are the only mutations that can blind a snapshot
            # index scan, so they are stamped per key: a scan whose
            # bounds miss every stamped key keeps the exact index path.
            index.delete_stamps[key] = self.txn_log.peek_next_lsn()
            if len(index.delete_stamps) > 512:
                self._prune_delete_stamps(index)
            self._stamp_index(index)

    def _prune_delete_stamps(self, index):
        """Drop delete stamps no snapshot can be blinded by: every open
        snapshot (and every future one) sits at or above the horizon, so
        a stamp at or below it can never postdate a snapshot again."""
        horizon = self.versions.oldest_snapshot()
        if horizon is None:
            horizon = self.versions.last_commit_lsn
        else:
            horizon = min(horizon, self.versions.last_commit_lsn)
        index.delete_stamps = {
            key: lsn
            for key, lsn in index.delete_stamps.items()
            if lsn > horizon
        }

    def _stamp_index(self, index):
        """Record that the index's entries changed at the current end of
        log.  The stamp is taken at mutation time, so it is always <= the
        mutating transaction's commit LSN: a snapshot at or after the
        commit trusts the B-tree, an older one falls back to the heap."""
        index.last_dml_lsn = self.txn_log.peek_next_lsn()

    def _stamp_index_rebuilt(self, index):
        """Stamp an index rebuilt from committed state only (CREATE INDEX
        build, REORGANIZE, restart recovery — all run under the DDL drain
        with no writer in flight).  The tree exactly reflects the
        committed horizon, so a snapshot at or after it trusts the
        B-tree; the mutation-time stamp would sit past the horizon
        forever when the rebuild itself advances no commit ticket."""
        index.last_dml_lsn = self.versions.last_commit_lsn
        index.rebuild_lsn = self.versions.last_commit_lsn
        index.delete_stamps = {}
        index.always_fallback = False


class Connection:
    """One client connection: statement execution and transactions."""

    def __init__(self, server):
        self.server = server
        self.plan_cache = PlanCache(metrics=server.metrics)
        self._txn_id = None
        self._closed = False
        self.last_plan = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self):
        if self._closed:
            return
        if self._txn_id is not None:
            self.rollback()
        self._closed = True
        self.server._disconnect()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()

    # ------------------------------------------------------------------ #
    # statement execution
    # ------------------------------------------------------------------ #

    def open_cursor(self, sql, params=None):
        """Open an incrementally-fetched cursor over a SELECT.

        Between FETCH calls the cursor's heap is unlocked, so the buffer
        pool may steal its pages (paper Section 2.1).
        """
        from repro.engine.cursor import Cursor

        if self._closed:
            raise ExecutionError("connection is closed")
        return Cursor(self, sql, params)

    def execute(self, sql, params=None, overrides=None):
        if self._closed:
            raise ExecutionError("connection is closed")
        server = self.server
        tracer = server.tracer
        start_us = server.clock.now
        misses_before = server.pool.misses
        hits_before = server.pool.hits
        plan = server.fault_plan
        injected_before = plan.injected if plan is not None else 0
        retries_before = plan.retries if plan is not None else 0
        result = None
        error = None
        try:
            result = self._execute(sql, params, overrides)
            if plan is not None:
                # Surface what this statement survived: retried or
                # absorbed injections show up in EXPLAIN ANALYZE.
                injected = plan.injected - injected_before
                retries = plan.retries - retries_before
                if injected or retries:
                    result.notes["faults"] = {
                        "injected": injected, "retries": retries,
                    }
            return result
        except FaultError as exc:
            # An injected fault exhausted its retry budget: only this
            # statement dies; the server and every other connection
            # survive, and the abort is accounted to the plan.
            error = "%s: %s" % (type(exc).__name__, exc)
            server._m_failed.inc()
            if server.fault_plan is not None:
                server.fault_plan.note_statement_abort()
            raise
        except Exception as exc:
            # Failed statements must show up in the trace too — an
            # application profile that silently omits errors sends the
            # consultant hunting in the wrong place.
            error = "%s: %s" % (type(exc).__name__, exc)
            server._m_failed.inc()
            raise
        finally:
            elapsed_us = server.clock.now - start_us
            server._m_elapsed.observe(elapsed_us)
            if tracer is not None:
                if result is not None:
                    rows = (
                        result.rowcount if result.rowcount
                        else len(result.rows)
                    )
                    plan_sig = (
                        type(result.plan_result.plan).__name__
                        if result.plan_result is not None
                        and result.plan_result.plan
                        else ""
                    )
                else:
                    rows = 0
                    plan_sig = ""
                tracer.record(
                    sql,
                    start_us=start_us,
                    elapsed_us=elapsed_us,
                    rows=rows,
                    pool_misses=server.pool.misses - misses_before,
                    pool_hits=server.pool.hits - hits_before,
                    plan_signature=plan_sig,
                    error=error,
                )
            if plan is not None and server.dtt_recalibrator is not None:
                # Fault-aware recalibration: this statement's retry count
                # feeds the sliding window; crossing the threshold
                # re-measures the (now hostile) device and installs the
                # new DTT model before the next statement is optimized.
                server.dtt_recalibrator.observe(
                    plan.retries - retries_before
                )
            if server.sanitize and server.pin_checks_quiescent():
                # Statement boundary: every pin taken while executing this
                # statement must have been released, even on error paths.
                # (Skipped while a sibling scheduled session is suspended
                # mid-statement — its pins are legitimate.)
                server.pool.assert_no_pins("statement end")

    def _execute(self, sql, params=None, overrides=None):
        statement = parse_statement(sql)
        self.server.statements_executed += 1
        self.server._m_statements.inc()
        if isinstance(statement, ast.SelectStatement):
            return self._execute_select(
                statement, params, overrides=overrides, sql_text=sql
            )
        if isinstance(statement, ast.InsertStatement):
            return self._execute_insert(statement, params)
        if isinstance(statement, ast.UpdateStatement):
            return self._execute_update(statement, params)
        if isinstance(statement, ast.DeleteStatement):
            return self._execute_delete(statement, params)
        if isinstance(statement, ast.CreateTableStatement):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.CreateIndexStatement):
            return self._execute_create_index(statement)
        if isinstance(statement, ast.CreateStatisticsStatement):
            self.server.stats.build_statistics(
                statement.table_name, statement.column_names
            )
            return Result()
        if isinstance(statement, ast.CreateProcedureStatement):
            body_sql = _procedure_body_sql(sql)
            self.server.catalog.add_procedure(
                ProcedureSchema(statement.name, statement.parameters, body_sql)
            )
            return Result()
        if isinstance(statement, ast.CalibrateStatement):
            return self._execute_calibrate()
        if isinstance(statement, ast.ReorganizeTableStatement):
            return self._execute_reorganize(statement)
        if isinstance(statement, ast.DropTableStatement):
            return self._execute_drop_table(statement)
        if isinstance(statement, ast.DropIndexStatement):
            return self._execute_drop_index(statement)
        if isinstance(statement, ast.CallStatement):
            return self._execute_call(statement, params, overrides)
        if isinstance(statement, ast.SetOptionStatement):
            self.server.catalog.options[statement.name] = statement.value
            return Result()
        if isinstance(statement, ast.BeginStatement):
            self.begin()
            return Result()
        if isinstance(statement, ast.CommitStatement):
            self.commit()
            return Result()
        if isinstance(statement, ast.RollbackStatement):
            self.rollback()
            return Result()
        raise ExecutionError("unsupported statement %r" % (type(statement).__name__,))

    # -- SELECT ------------------------------------------------------------ #

    def _execute_select(self, statement, params, use_plan_cache_key=None,
                        procedure_params=None, overrides=None,
                        sql_text=None):
        server = self.server
        binder = Binder(server.catalog, procedure_params=procedure_params)
        block = binder.bind(statement)
        optimizer = server.make_optimizer(
            use_indexes=not (overrides is not None
                             and overrides.force_heap_scan)
        )
        if (
            use_plan_cache_key is None
            and overrides is not None
            and overrides.use_plan_cache
            and sql_text is not None
        ):
            # Per-statement plan-cache opt-in: a plain SELECT trains,
            # caches, and verifies exactly like a procedure statement.
            use_plan_cache_key = "sql:%s" % sql_text

        def optimize():
            result = optimizer.optimize_select(block)
            if result.stats is not None:
                # Optimization is work too: "optimization must therefore
                # be cheap" — its effort shows up on the clock so the plan
                # cache has something real to amortize.
                server.clock.advance(
                    int(result.stats.nodes_visited * OPTIMIZER_NODE_US)
                )
            return result

        if use_plan_cache_key is not None:
            result = self.plan_cache.execute_plan_for(
                use_plan_cache_key, optimize, plan_signature
            )
        else:
            result = optimize()
        self.last_plan = result
        task = server.memory_governor.begin_task()
        # Read-only statements take no locks: they run against the
        # commit-LSN snapshot taken here, so they never queue behind
        # writers (own uncommitted writes stay visible via snapshot_txn).
        snapshot_enabled = server.config.snapshot_reads
        batch_enabled = server.config.batch_execution_enabled()
        if overrides is not None:
            if overrides.snapshot_reads is not None:
                snapshot_enabled = bool(overrides.snapshot_reads)
            if overrides.batch_execution is not None:
                batch_enabled = bool(overrides.batch_execution)
        snapshot_lsn = (
            server.versions.open_snapshot() if snapshot_enabled else None
        )
        ctx = ExecutionContext(
            server.pool, server.temp_file, server.stats, server.clock, task,
            params, feedback_enabled=server.config.feedback_enabled,
            metrics=server.metrics, fault_plan=server.fault_plan,
            yield_hook=server.spill_yield_point,
            snapshot_lsn=snapshot_lsn, snapshot_txn=self._txn_id,
            batch_mode=batch_enabled,
        )
        collector = ExecStatsCollector()
        executor = Executor(
            plan_block_fn=lambda b: optimizer.optimize_select(b),
            bind_recursive_arm_fn=binder.bind_recursive_arm,
            exec_stats=collector,
        )
        try:
            rows = None
            max_tasks = server.catalog.options.get("max_query_tasks", 1)
            if (
                isinstance(max_tasks, int) and max_tasks > 1
                and result.recursive_cte is None
            ):
                # Section 4.4: eligible hash-join cores run their build
                # and probe phases on the FCFS worker pipeline.
                from repro.exec.parallel_exec import execute_parallel

                rows, pipeline_stats = execute_parallel(
                    result.plan, executor, ctx, max_tasks
                )
                if pipeline_stats is not None:
                    ctx.notes["parallel_workers"] = max_tasks
                    ctx.notes["parallel_wall_us"] = int(
                        pipeline_stats.wall_clock_us
                    )
            if rows is None:
                rows = list(executor.run(result, ctx))
        finally:
            if snapshot_lsn is not None:
                server.versions.close_snapshot(snapshot_lsn)
            server.memory_governor.end_task(task)
        return Result(
            rows, block.output_columns(), result, ctx.notes, len(rows),
            exec_stats=collector,
        )

    # -- DML ------------------------------------------------------------------ #

    def _execute_insert(self, statement, params):
        server = self.server
        binder = Binder(server.catalog)
        bound = binder.bind(statement)
        table = bound.table
        rows = []
        if bound.rows is not None:
            for row_exprs in bound.rows:
                values = [evaluate(expr, {}, params) for expr in row_exprs]
                rows.append(values)
        else:
            select_result = self._run_block(bound.select_block, binder, params)
            rows = [list(row) for row in select_result]
        txn_id, implicit = self._ensure_txn()
        inserted = 0
        try:
            for values in rows:
                full_row = [None] * len(table.columns)
                for column_index, value in zip(bound.column_indexes, values):
                    full_row[column_index] = value
                coerced = server._coerce_row(table, full_row)
                server._index_check_unique(table, coerced)
                row_id = table.storage.insert(coerced)
                try:
                    server.lock_manager.acquire(txn_id, table.name, row_id)
                except Exception:
                    # Nothing is logged for this row yet: compensate the
                    # heap insert physically so the slot is not leaked.
                    table.storage.delete(row_id)
                    raise
                server.versions.note_write(table.storage, row_id, None, txn_id)
                server._index_insert(table, coerced, row_id)
                server.stats.note_insert(table.name, coerced)
                table.storage.stamp_page(
                    row_id.page_ordinal, server.txn_log.peek_next_lsn()
                )
                server.txn_log.log_change(
                    txn_id, LOG_INSERT, table.name, row_id, after=coerced
                )
                inserted += 1
        except Exception:
            if implicit:
                self.rollback()
            raise
        if implicit:
            try:
                self.commit()
            except FaultError:
                # The commit force died: the transaction is still active
                # in the log, so autocommit semantics demand it unwind.
                self.rollback()
                raise
        return Result(rowcount=inserted)

    def _execute_update(self, statement, params):
        server = self.server
        binder = Binder(server.catalog)
        bound = binder.bind(statement)
        table = bound.table
        optimizer = server.make_optimizer()
        result = optimizer.optimize_simple_dml(bound)
        self.last_plan = result
        targets = self._collect_dml_targets(bound, result, params)
        txn_id, implicit = self._ensure_txn()
        updated = 0
        try:
            for row_id, old_row in targets:
                server.lock_manager.acquire(txn_id, table.name, row_id)
                # The acquire may have parked this session: re-read under
                # the lock and re-check the predicate — the target list
                # was collected before the wait and may be stale.
                old_row = self._recheck_target(table, bound, row_id, params)
                if old_row is None:
                    continue
                server.versions.note_write(
                    table.storage, row_id, old_row, txn_id
                )
                env = {bound.quantifier.id: old_row}
                new_row = list(old_row)
                for column_index, expr in bound.assignments:
                    new_row[column_index] = evaluate(expr, env, params)
                coerced = server._coerce_row(table, new_row)
                table.storage.update(row_id, coerced)
                server._index_delete(table, old_row, row_id)
                server._index_insert(table, coerced, row_id)
                server.stats.note_update(table.name, old_row, coerced)
                table.storage.stamp_page(
                    row_id.page_ordinal, server.txn_log.peek_next_lsn()
                )
                server.txn_log.log_change(
                    txn_id, LOG_UPDATE, table.name, row_id,
                    before=old_row, after=coerced,
                )
                updated += 1
        except Exception:
            if implicit:
                self.rollback()
            raise
        if implicit:
            try:
                self.commit()
            except FaultError:
                self.rollback()
                raise
        return Result(rowcount=updated, plan_result=result)

    def _execute_delete(self, statement, params):
        server = self.server
        binder = Binder(server.catalog)
        bound = binder.bind(statement)
        table = bound.table
        optimizer = server.make_optimizer()
        result = optimizer.optimize_simple_dml(bound)
        self.last_plan = result
        targets = self._collect_dml_targets(bound, result, params)
        txn_id, implicit = self._ensure_txn()
        deleted = 0
        try:
            for row_id, old_row in targets:
                server.lock_manager.acquire(txn_id, table.name, row_id)
                old_row = self._recheck_target(table, bound, row_id, params)
                if old_row is None:
                    continue
                server.versions.note_write(
                    table.storage, row_id, old_row, txn_id
                )
                table.storage.delete(row_id)
                server._index_delete(table, old_row, row_id)
                server.stats.note_delete(table.name, old_row)
                table.storage.stamp_page(
                    row_id.page_ordinal, server.txn_log.peek_next_lsn()
                )
                server.txn_log.log_change(
                    txn_id, LOG_DELETE, table.name, row_id, before=old_row
                )
                deleted += 1
        except Exception:
            if implicit:
                self.rollback()
            raise
        if implicit:
            try:
                self.commit()
            except FaultError:
                self.rollback()
                raise
        return Result(rowcount=deleted, plan_result=result)

    def _collect_dml_targets(self, bound, result, params):
        """Materialize (row_id, row) targets before mutating."""
        server = self.server
        table = bound.table
        qid = bound.quantifier.id
        targets = []
        plan = result.plan
        from repro.optimizer.plans import IndexScanPlan as _IndexScanPlan

        if isinstance(plan, _IndexScanPlan):
            btree = plan.index_schema.btree
            values = tuple(
                evaluate(expr, {}, params) for expr in plan.sarg["eq"]
            )
            for __, row_id in btree.prefix_scan(values):
                row = table.storage.get(row_id)
                env = {qid: row}
                if all(
                    evaluate_predicate(c.expr, env, params)
                    for c in plan.local_conjuncts
                ):
                    targets.append((row_id, row))
            return targets
        for row_id, row in table.storage.scan():
            env = {qid: row}
            if all(
                evaluate_predicate(c.expr, env, params)
                for c in bound.conjuncts
            ):
                targets.append((row_id, row))
        return targets

    def _recheck_target(self, table, bound, row_id, params=None):
        """The current row at ``row_id`` if it still matches the DML
        predicate, else ``None`` (the slot emptied or the row changed
        while this session waited for its lock)."""
        try:
            row = table.storage.get(row_id)
        except ExecutionError:
            return None
        env = {bound.quantifier.id: row}
        if all(
            evaluate_predicate(c.expr, env, params)
            for c in bound.conjuncts
        ):
            return row
        return None

    def _run_block(self, block, binder, params):
        server = self.server
        optimizer = server.make_optimizer()
        result = optimizer.optimize_select(block)
        task = server.memory_governor.begin_task()
        ctx = ExecutionContext(
            server.pool, server.temp_file, server.stats, server.clock, task,
            params, feedback_enabled=server.config.feedback_enabled,
            metrics=server.metrics, fault_plan=server.fault_plan,
            yield_hook=server.spill_yield_point,
        )
        executor = Executor(
            plan_block_fn=lambda b: optimizer.optimize_select(b),
            bind_recursive_arm_fn=binder.bind_recursive_arm,
        )
        try:
            return list(executor.run(result, ctx))
        finally:
            server.memory_governor.end_task(task)

    # -- DDL ------------------------------------------------------------------ #

    @contextlib.contextmanager
    def _ddl_lock(self, table_name):
        """Table-exclusive lock for the duration of one DDL statement.

        DDL runs under its own short transaction id: the X lock conflicts
        with every DML holder's IX, so catalog and storage swaps wait for
        in-flight writers to finish (and block new ones) instead of
        mutating shared schema under them — the catalog lock discipline
        SIM009 enforces statically.
        """
        from repro.engine.locks import X

        server = self.server
        ddl_txn = server._next_txn_id
        server._next_txn_id += 1
        server.lock_manager.acquire_table(ddl_txn, table_name, mode=X)
        try:
            yield ddl_txn
        finally:
            server.lock_manager.release_all(ddl_txn)

    def _execute_create_table(self, statement):
        server = self.server
        columns = [
            Column(
                definition.name, definition.type_name,
                nullable=not definition.not_null,
                declared_length=definition.length,
            )
            for definition in statement.columns
        ]
        foreign_keys = [
            ForeignKey(fk.columns, fk.ref_table, fk.ref_columns)
            for fk in statement.foreign_keys
        ]
        schema = TableSchema(
            statement.name, columns, tuple(statement.primary_key), foreign_keys
        )
        with self._ddl_lock(statement.name) as ddl_txn:
            server.catalog.add_table(schema)
            table_file = server.volume.create_file(
                "table:%s" % statement.name
            )
            schema.storage = TableStorage(schema, table_file, server.pool)
            if statement.primary_key:
                self._create_index_on(
                    schema, "pk_%s" % statement.name, statement.primary_key,
                    unique=True, ddl_txn=ddl_txn,
                )
        return Result()

    def _execute_create_index(self, statement):
        table = self.server.catalog.table(statement.table_name)
        with self._ddl_lock(table.name) as ddl_txn:
            self._create_index_on(
                table, statement.name, statement.column_names,
                statement.unique, ddl_txn=ddl_txn,
            )
        # "Histograms are created automatically ... when an index is
        # created" (Section 3.2).
        if table.row_count:
            self.server.stats.build_statistics(
                table.name, statement.column_names, built_by="create-index"
            )
        return Result()

    def _create_index_on(self, table, index_name, column_names, unique,
                         ddl_txn=None):
        from repro.engine.locks import X

        server = self.server
        if ddl_txn is not None:
            # Re-entrant under the caller's DDL transaction (acquire_table
            # is idempotent for a held X lock) — every catalog mutation
            # happens with the table X-locked, per SIM009.
            server.lock_manager.acquire_table(ddl_txn, table.name, mode=X)
        index = IndexSchema(index_name, table.name, column_names, unique)
        index_file = server.volume.create_file("index:%s" % index_name)
        index.btree = BTree(index_file, server.pool, name=index_name)
        server.catalog.add_index(index)
        for row_id, row in table.storage.scan():
            key = tuple(row[table.column_index(c)] for c in column_names)
            if unique and index.btree.search(key):
                raise ExecutionError(
                    "duplicate key %r building unique index %r"
                    % (key, index_name)
                )
            index.btree.insert(key, row_id)
        server._stamp_index_rebuilt(index)
        return index

    def _execute_drop_table(self, statement):
        with self._ddl_lock(statement.name):
            self.server.catalog.drop_table(statement.name)
        return Result()

    def _execute_drop_index(self, statement):
        index = self.server.catalog.index(statement.name)
        with self._ddl_lock(index.table_name):
            self.server.catalog.drop_index(statement.name)
        return Result()

    def _execute_calibrate(self):
        """CALIBRATE DATABASE: measure the device, store the model in the
        catalog (Section 4.2)."""
        server = self.server
        model = calibrate_device(
            server.disk, server.config.page_size, samples_per_band=32
        )
        server.catalog.dtt_model = model
        return Result(notes={"calibrated": True})

    def _execute_reorganize(self, statement):
        """REORGANIZE TABLE: rebuild the table clustered on an index.

        One of the paper's Section 6 research-agenda items ("automatic
        reclustering and/or reorganization of tables and indexes"): rows
        are rewritten in the chosen index's key order into fresh pages and
        every index is rebuilt, restoring clustering statistics to ~1.0
        for that index.
        """
        server = self.server
        if self._txn_id is not None:
            raise TransactionError(
                "REORGANIZE TABLE cannot run inside a transaction"
            )
        table = server.catalog.table(statement.table_name)
        indexes = server.catalog.indexes_on(table.name)
        if statement.index_name is not None:
            order_index = server.catalog.index(statement.index_name)
            if order_index.table_name != table.name:
                raise ExecutionError(
                    "index %r is not on table %r"
                    % (statement.index_name, table.name)
                )
        else:
            if not indexes:
                raise ExecutionError(
                    "table %r has no index to reorganize on" % (table.name,)
                )
            order_index = next(
                (i for i in indexes if i.name == "pk_%s" % table.name),
                indexes[0],
            )
        with self._ddl_lock(table.name):
            rows = [
                table.storage.get(row_id)
                for __, row_id in order_index.btree.range_scan()
            ]
            # Fresh storage in key order.
            old_file = table.storage.file
            server.pool.discard(old_file)
            new_file = server.volume.create_file(
                "table:%s#reorg" % (table.name,)
            )
            table.storage = TableStorage(table, new_file, server.pool)
            for index in indexes:
                if getattr(index, "virtual", False):
                    continue
                server.pool.discard(index.btree.file)
                index.btree.file.truncate()
                index.btree = BTree(
                    index.btree.file, server.pool, name=index.name
                )
            # The rewrite is unlogged: stamp the fresh pages with the last
            # already-assigned LSN so restart redo skips every record that
            # predates the reorganization, then checkpoint so the new file
            # is durable before the statement returns.
            stamp = server.txn_log.peek_next_lsn() - 1
            for row in rows:
                row_id = table.storage.insert(row, page_lsn=stamp)
                server._index_insert(table, row, row_id)
            # The rebuild drained all writers and replayed committed rows
            # only: re-stamp past the per-insert mutation stamps.
            for index in indexes:
                if getattr(index, "virtual", False):
                    continue
                server._stamp_index_rebuilt(index)
            old_file.truncate()
            server.checkpoint()
        return Result(notes={
            "reorganized": table.name,
            "clustered_on": order_index.name,
            "rows": len(rows),
        })

    # -- procedures --------------------------------------------------------- #

    def _execute_call(self, statement, params, overrides=None):
        """CALL runs the procedure body through the plan cache."""
        server = self.server
        procedure = server.catalog.procedure(statement.name)
        args = [evaluate(expr, {}, params) for expr in statement.args]
        body_params = dict(zip(procedure.parameters, args))
        body_statement = parse_statement(procedure.body_sql)
        if not isinstance(body_statement, ast.SelectStatement):
            raise ExecutionError("procedure body must be a SELECT")
        cache_key = "proc:%s" % statement.name
        if overrides is not None and overrides.use_plan_cache is False:
            cache_key = None  # NoREC variant: fresh optimization
        return self._execute_select(
            body_statement, body_params,
            use_plan_cache_key=cache_key,
            procedure_params=procedure.parameters,
            overrides=overrides,
        )

    # ------------------------------------------------------------------ #
    # transactions
    # ------------------------------------------------------------------ #

    def begin(self):
        if self._txn_id is not None:
            raise TransactionError("transaction already active")
        self._txn_id = self.server._next_txn_id
        self.server._next_txn_id += 1
        self.server.txn_log.begin(self._txn_id)
        return self._txn_id

    def commit(self):
        if self._txn_id is None:
            raise TransactionError("no active transaction")
        # Hands off to the group-commit coordinator: under a workload
        # scheduler the session may park here while other sessions run,
        # and the ack only arrives once the batched force covered this
        # transaction's COMMIT record.
        ticket = self.server.group_commit.commit(self._txn_id)
        # The WAL commit LSN is the version timestamp: stamp this
        # transaction's before-images so snapshot readers order them,
        # then release locks (stamping first keeps the window where the
        # rows are both unlocked and unstamped at zero).
        self.server.versions.commit(self._txn_id, ticket.lsn)
        self.server.lock_manager.release_all(self._txn_id)
        self._txn_id = None

    def rollback(self):
        """Undo this transaction's changes, logging each undo.

        Compensation records (CLR-lite) make runtime rollback replayable:
        restart recovery redoes *all* history — including these inverse
        changes — so a crash after the rollback reproduces the rolled-back
        state without re-undoing anything.
        """
        if self._txn_id is None:
            raise TransactionError("no active transaction")
        server = self.server
        txn_log = server.txn_log
        txn_id = self._txn_id
        for record in txn_log.undo_chain(txn_id):
            table = server.catalog.table(record.table)
            if record.kind == LOG_INSERT:
                row = table.storage.delete(record.row_id)
                server._index_delete(table, row, record.row_id)
                server.stats.note_delete(table.name, row)
                table.storage.stamp_page(
                    record.row_id.page_ordinal, txn_log.peek_next_lsn()
                )
                txn_log.log_change(
                    txn_id, LOG_DELETE, table.name, record.row_id, before=row
                )
            elif record.kind == LOG_DELETE:
                restored = record.before
                new_row_id = table.storage.insert(restored)
                # The restored row lands in a fresh slot with no chain:
                # without a pending entry a snapshot reader would see it
                # *and* the before-image at the old slot — double-read.
                server.versions.note_write(
                    table.storage, new_row_id, None, txn_id
                )
                server._index_insert(table, restored, new_row_id)
                server.stats.note_insert(table.name, restored)
                table.storage.stamp_page(
                    new_row_id.page_ordinal, txn_log.peek_next_lsn()
                )
                txn_log.log_change(
                    txn_id, LOG_INSERT, table.name, new_row_id, after=restored
                )
            elif record.kind == LOG_UPDATE:
                table.storage.update(record.row_id, record.before)
                server._index_delete(table, record.after, record.row_id)
                server._index_insert(table, record.before, record.row_id)
                server.stats.note_update(table.name, record.after, record.before)
                table.storage.stamp_page(
                    record.row_id.page_ordinal, txn_log.peek_next_lsn()
                )
                txn_log.log_change(
                    txn_id, LOG_UPDATE, table.name, record.row_id,
                    before=record.after, after=record.before,
                )
        txn_log.rollback(txn_id)
        # Undo restored the committed heap images, so the before-image
        # chains must forget this transaction before its locks go.
        server.versions.rollback(txn_id)
        server.lock_manager.release_all(txn_id)
        self._txn_id = None

    def _ensure_txn(self):
        """(txn_id, implicit?) — autocommit wraps DML in its own txn."""
        if self._txn_id is not None:
            return self._txn_id, False
        return self.begin(), True


def _procedure_body_sql(create_sql):
    """Extract the body text following AS (kept verbatim in the catalog)."""
    upper = create_sql.upper()
    marker = upper.find(" AS ")
    if marker == -1:
        marker = upper.find("\nAS ")
    if marker == -1:
        raise SqlTypeError("CREATE PROCEDURE missing AS")
    return create_sql[marker + 4 :].strip().rstrip(";")
