"""Server-wide coordination of row-version snapshots (MVCC-lite).

The storage layer keeps the per-table chains
(:class:`~repro.storage.rowstore.VersionEntry`); this manager owns the
transaction- and snapshot-level bookkeeping above them:

* writers call :meth:`note_write` just before each heap mutation, which
  records the before-image under the writer's transaction id;
* :meth:`commit` stamps those pending entries with the commit ticket's
  LSN — the WAL's own commit LSN is the version timestamp, no second
  clock — and :meth:`rollback` discards them;
* a read-only statement brackets execution with :meth:`open_snapshot` /
  :meth:`close_snapshot`; the snapshot *is* the last committed LSN, and
  resolution happens inside the storage scan, so readers take no locks
  and never queue behind writers;
* chains are purged up to the oldest open snapshot whenever a
  transaction or snapshot ends, bounding version memory.

Version-chain mutations are bracketed in race-sanitizer spans
(:mod:`repro.analysis.races`) when a sanitizer is attached, keyed by
``(storage, row)`` and guarded by the writer's held locks.
"""

from repro.analysis.races import tap as _race_tap


class _NullCounter:
    def inc(self, n=1):
        pass


_NULL = _NullCounter()


class VersionManager:
    """Commit-LSN-keyed before-image versions across all tables."""

    def __init__(self, metrics=None):
        self._pending = {}   # txn_id -> [(storage, row_id), ...]
        self._storages = {}  # id(storage) -> storage with live chains
        self._snapshots = {}  # snapshot lsn -> open count
        self.races = None    # RaceSanitizer, attached by the server
        self.last_commit_lsn = 0
        self.recorded = 0
        self.purged = 0
        if metrics is not None:
            self._m_recorded = metrics.counter("versions.recorded")
            self._m_purged = metrics.counter("versions.purged")
            metrics.register_probe(
                "versions.active_snapshots",
                lambda: sum(self._snapshots.values()),
            )
            metrics.register_probe(
                "versions.rows_versioned", self.rows_versioned
            )
        else:
            self._m_recorded = _NULL
            self._m_purged = _NULL

    # ------------------------------------------------------------------ #
    # writer side
    # ------------------------------------------------------------------ #

    def note_write(self, storage, row_id, before, txn_id):
        """Record the image ``txn_id`` is about to supersede at
        ``row_id`` (``before=None`` for an insert)."""
        with _race_tap(self.races, "versions", (id(storage), row_id),
                       "w", txn_id=txn_id):
            storage.remember_version(row_id, before, txn_id)
            self._pending.setdefault(txn_id, []).append((storage, row_id))
            self._storages[id(storage)] = storage
        self.recorded += 1
        self._m_recorded.inc()

    def commit(self, txn_id, commit_lsn):
        """Stamp ``txn_id``'s pending entries with its commit LSN and
        advance the snapshot horizon (also called with no pending work,
        e.g. bulk loads, purely to advance the horizon)."""
        for storage, row_id in self._pending.pop(txn_id, ()):
            with _race_tap(self.races, "versions", (id(storage), row_id),
                           "w", txn_id=txn_id):
                storage.stamp_version(row_id, txn_id, commit_lsn)
        if commit_lsn > self.last_commit_lsn:
            self.last_commit_lsn = commit_lsn
        self.purge()

    def rollback(self, txn_id):
        """Discard ``txn_id``'s pending entries (its heap mutations were
        undone by the compensation path, so the chains must forget it)."""
        for storage, row_id in self._pending.pop(txn_id, ()):
            with _race_tap(self.races, "versions", (id(storage), row_id),
                           "w", txn_id=txn_id):
                storage.discard_version(row_id, txn_id)
        self.purge()

    # ------------------------------------------------------------------ #
    # reader side
    # ------------------------------------------------------------------ #

    def open_snapshot(self):
        """Pin the current committed horizon; returns the snapshot LSN."""
        lsn = self.last_commit_lsn
        self._snapshots[lsn] = self._snapshots.get(lsn, 0) + 1
        return lsn

    def close_snapshot(self, lsn):
        count = self._snapshots.get(lsn, 0) - 1
        if count > 0:
            self._snapshots[lsn] = count
        else:
            self._snapshots.pop(lsn, None)
        self.purge()

    def oldest_snapshot(self):
        return min(self._snapshots) if self._snapshots else None

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #

    def purge(self):
        """Drop version entries below the oldest open snapshot."""
        horizon = self.oldest_snapshot()
        dropped = 0
        for key in list(self._storages):
            storage = self._storages[key]
            dropped += storage.purge_versions(horizon)
            if not storage.has_versions():
                del self._storages[key]
        if dropped:
            self.purged += dropped
            self._m_purged.inc(dropped)
        return dropped

    def rows_versioned(self):
        return sum(s.version_count() for s in self._storages.values())

    def reset(self, last_commit_lsn=0):
        """Crash: chains and snapshots die with the process; the horizon
        restarts at the recovered log's durable LSN."""
        self._pending.clear()
        self._storages.clear()
        self._snapshots.clear()
        self.last_commit_lsn = int(last_commit_lsn)
