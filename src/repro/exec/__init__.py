"""Adaptive query execution (paper Sections 4.3–4.4).

Volcano-style iterators over environment rows, with the paper's adaptive
behaviours:

* a **memory governor** enforcing the hard limit (¾·max-pool / active
  requests, eq. 4) and soft limit (pool / multiprogramming level, eq. 5),
  reclaiming memory top-down so producers are not starved by consumers;
* **hash join** that spills its largest partition at the soft limit and
  can switch to its optimizer-annotated **index-nested-loops alternate**
  after discovering the true build cardinality;
* **hash group by** with the low-memory fallback onto an indexed
  temporary table of partial groups;
* external **merge sort** under quota;
* an adaptive **RECURSIVE UNION** that re-plans its recursive arm every
  iteration;
* statistics **feedback hooks**: predicates evaluated over base columns
  during scans update the column histograms (Section 3.2);
* **intra-query parallelism** simulation with first-come-first-serve
  work sharing and graceful thread reduction (Section 4.4).
"""

from repro.exec.batch import Batch, BatchBuilder, batches_to_rows, rows_to_batches
from repro.exec.expr import (
    evaluate,
    evaluate_batch,
    evaluate_predicate,
    evaluate_predicate_batch,
)
from repro.exec.memory import AdmissionQueue, MemoryGovernor, Task
from repro.exec.executor import Executor, ExecutionContext

__all__ = [
    "evaluate",
    "evaluate_batch",
    "evaluate_predicate",
    "evaluate_predicate_batch",
    "Batch",
    "BatchBuilder",
    "batches_to_rows",
    "rows_to_batches",
    "AdmissionQueue",
    "MemoryGovernor",
    "Task",
    "Executor",
    "ExecutionContext",
]
