"""Aggregation, distinct, sorting, projection, and limit operators.

The memory-intensive operators here honour the memory governor's soft
limit and implement the paper's low-memory fallbacks: hash group by falls
back to "a temporary table containing partially computed groups with an
index on the grouping columns" (Section 4.3); sort degrades to external
run merging.
"""

import heapq

from repro.common.errors import ExecutionError
from repro.exec.batch import Batch, rows_to_batches
from repro.exec.expr import (
    evaluate,
    evaluate_batch,
    evaluate_predicate,
    evaluate_predicate_batch,
)
from repro.exec.spill import SpillFile, WorkMemory
from repro.optimizer.costmodel import (
    CPU_HASH_BUILD_BATCH_US,
    CPU_HASH_BUILD_US,
    CPU_ROW_BATCH_US,
    CPU_ROW_US,
    CPU_SORT_FACTOR_BATCH_US,
    CPU_SORT_FACTOR_US,
)
from repro.exec.operators import Operator
from repro.storage.btree import BTree
from repro.storage.rowstore import RowId


# --------------------------------------------------------------------- #
# aggregate accumulators
# --------------------------------------------------------------------- #

class AggState:
    """Partial state of one aggregate; serializable as a plain tuple so
    fallback groups can live in temporary-table rows."""

    __slots__ = ("call", "count", "total", "extreme", "distinct")

    def __init__(self, call):
        self.call = call
        self.count = 0
        self.total = None
        self.extreme = None
        self.distinct = set() if call.distinct else None

    def accumulate(self, env, params):
        name = self.call.name
        if name == "COUNT" and self.call.star:
            self.count += 1
            return
        self.accumulate_value(evaluate(self.call.args[0], env, params))

    def accumulate_value(self, value):
        """Fold one pre-evaluated argument value in (the batch path:
        argument columns are vectorized once per batch, then folded here
        row by row — accumulation order and results match
        :meth:`accumulate` exactly)."""
        name = self.call.name
        if name == "COUNT" and self.call.star:
            self.count += 1
            return
        if value is None:
            return
        if self.distinct is not None:
            if value in self.distinct:
                return
            self.distinct.add(value)
        self.count += 1
        if name in ("SUM", "AVG"):
            self.total = value if self.total is None else self.total + value
        elif name == "MIN":
            self.extreme = value if self.extreme is None else min(self.extreme, value)
        elif name == "MAX":
            self.extreme = value if self.extreme is None else max(self.extreme, value)

    def merge_serialized(self, data):
        """Merge a serialized partial state (from a fallback temp row)."""
        count, total, extreme, distinct = data
        if self.distinct is not None and distinct is not None:
            new_values = set(distinct) - self.distinct
            self.distinct |= new_values
            self.count += len(new_values)
        else:
            self.count += count
        if total is not None:
            self.total = total if self.total is None else self.total + total
        if extreme is not None:
            if self.call.name == "MIN":
                self.extreme = (
                    extreme if self.extreme is None else min(self.extreme, extreme)
                )
            else:
                self.extreme = (
                    extreme if self.extreme is None else max(self.extreme, extreme)
                )

    def serialize(self):
        return (
            self.count,
            self.total,
            self.extreme,
            tuple(self.distinct) if self.distinct is not None else None,
        )

    def finalize(self):
        name = self.call.name
        if name == "COUNT":
            return self.count
        if name == "SUM":
            return self.total
        if name == "AVG":
            if self.count == 0:
                return None
            return self.total / self.count
        return self.extreme

    def estimated_bytes(self):
        base = 48
        if self.distinct is not None:
            base += 16 * len(self.distinct)
        return base


class HashGroupByOp(Operator):
    """Hash aggregation with the indexed-temp-table low-memory fallback."""

    def __init__(self, child, group_keys, aggregates):
        self.child = child
        self.group_keys = group_keys      # [(expr, name, type)]
        self.aggregates = aggregates      # [FunctionCall]
        self.fallback_engaged = False
        self.fallback_rows_written = 0
        self._memory = None
        self._groups = None
        self._fallback = None
        self._emitting = False

    @property
    def memory_pages(self):
        return self._memory.pages_held if self._memory is not None else 0

    def relinquish_memory(self):
        """Asked by the governor to free memory: engage the fallback.

        Declined while the groups are being emitted — the dict is under
        iteration and cannot be drained into the temp table.
        """
        if self._groups is None or self.fallback_engaged or self._emitting:
            return 0
        before = self._memory.pages_held
        self._engage_fallback()
        return before - self._memory.pages_held

    def spill_event_count(self):
        return 1 if self.fallback_engaged else 0

    def adaptive_event_count(self):
        return 1 if self.fallback_engaged else 0

    def execute(self, ctx):
        self._ctx = ctx
        self._memory = WorkMemory(ctx.task, ctx.pool.page_size)
        self._groups = {}
        ctx.task.register_consumer(self, depth=getattr(self, "depth", 1))
        group_bytes = 32 + 24 * len(self.aggregates)
        try:
            for env in self.child.execute(ctx):
                ctx.charge(CPU_HASH_BUILD_US)
                key = tuple(
                    evaluate(expr, env, ctx.params)
                    for expr, __, __t in self.group_keys
                )
                if self.fallback_engaged:
                    self._fallback_accumulate(ctx, key, env)
                    continue
                states = self._groups.get(key)
                if states is None:
                    if self._memory.would_exceed_soft(group_bytes):
                        self._engage_fallback()
                        self._fallback_accumulate(ctx, key, env)
                        continue
                    states = [AggState(call) for call in self.aggregates]
                    self._groups[key] = states
                    self._memory.add(group_bytes)
                for state in states:
                    state.accumulate(env, ctx.params)
            self._emitting = True
            yield from self._emit(ctx)
        finally:
            ctx.task.unregister_consumer(self)
            self._memory.release_all()
            if self._fallback is not None:
                self._fallback.free()

    def execute_batches(self, ctx):
        """Batch protocol: group keys and aggregate arguments vectorize
        once per batch; per-row group insertion, soft-limit checks and
        the temp-table fallback run in the row path's exact order, so
        fallback engagement is identical across modes."""
        self._ctx = ctx
        self._memory = WorkMemory(ctx.task, ctx.pool.page_size)
        self._groups = {}
        ctx.task.register_consumer(self, depth=getattr(self, "depth", 1))
        group_bytes = 32 + 24 * len(self.aggregates)
        try:
            for batch in self.child.execute_batches(ctx):
                ctx.charge(batch.count * CPU_HASH_BUILD_BATCH_US)
                key_columns = [
                    evaluate_batch(expr, batch, ctx.params)
                    for expr, __, __t in self.group_keys
                ]
                value_columns = [
                    None if call.name == "COUNT" and call.star
                    else evaluate_batch(call.args[0], batch, ctx.params)
                    for call in self.aggregates
                ]
                for position in range(batch.count):
                    key = tuple(
                        column[position] for column in key_columns
                    )
                    values = [
                        None if column is None else column[position]
                        for column in value_columns
                    ]
                    if self.fallback_engaged:
                        self._fallback_accumulate_values(key, values)
                        continue
                    states = self._groups.get(key)
                    if states is None:
                        if self._memory.would_exceed_soft(group_bytes):
                            self._engage_fallback()
                            self._fallback_accumulate_values(key, values)
                            continue
                        states = [AggState(call) for call in self.aggregates]
                        self._groups[key] = states
                        self._memory.add(group_bytes)
                    for state, value in zip(states, values):
                        state.accumulate_value(value)
            self._emitting = True
            yield from rows_to_batches(
                self._emit(ctx, row_cost=CPU_ROW_BATCH_US), ctx.batch_rows
            )
        finally:
            ctx.task.unregister_consumer(self)
            self._memory.release_all()
            if self._fallback is not None:
                self._fallback.free()

    # -- fallback ------------------------------------------------------- #

    def _engage_fallback(self):
        """Flush in-memory groups to an indexed temporary table."""
        self.fallback_engaged = True
        self._ctx.note("group_by_fallback")
        self._fallback = _TempGroupStore(
            self._ctx, len(self.group_keys), len(self.aggregates)
        )
        for key, states in self._groups.items():
            self._fallback.insert(key, [s.serialize() for s in states])
            self.fallback_rows_written += 1
        self._groups = {}
        self._memory.release_all()

    def _fallback_accumulate(self, ctx, key, env):
        states = [AggState(call) for call in self.aggregates]
        for state in states:
            state.accumulate(env, ctx.params)
        existing = self._fallback.lookup(key)
        if existing is not None:
            for state, partial in zip(states, existing):
                state.merge_serialized(partial)
            self._fallback.update(key, [s.serialize() for s in states])
        else:
            self._fallback.insert(key, [s.serialize() for s in states])
            self.fallback_rows_written += 1

    def _fallback_accumulate_values(self, key, values):
        """The batch path's fallback accumulate: same temp-table probe
        and merge sequence as :meth:`_fallback_accumulate`, fed with
        pre-evaluated argument values."""
        states = [AggState(call) for call in self.aggregates]
        for state, value in zip(states, values):
            state.accumulate_value(value)
        existing = self._fallback.lookup(key)
        if existing is not None:
            for state, partial in zip(states, existing):
                state.merge_serialized(partial)
            self._fallback.update(key, [s.serialize() for s in states])
        else:
            self._fallback.insert(key, [s.serialize() for s in states])
            self.fallback_rows_written += 1

    # -- output ------------------------------------------------------------ #

    def _emit(self, ctx, row_cost=CPU_ROW_US):
        from repro.sql.binder import GROUP_ENV

        emitted = False
        if self.fallback_engaged:
            for key, serialized in self._fallback.scan():
                states = [AggState(call) for call in self.aggregates]
                for state, partial in zip(states, serialized):
                    state.merge_serialized(partial)
                emitted = True
                ctx.charge(row_cost)
                yield {GROUP_ENV: key + tuple(s.finalize() for s in states)}
        else:
            for key, states in self._groups.items():
                emitted = True
                ctx.charge(row_cost)
                yield {GROUP_ENV: key + tuple(s.finalize() for s in states)}
        if not emitted and not self.group_keys:
            # Scalar aggregation over zero rows yields one row.
            states = [AggState(call) for call in self.aggregates]
            yield {GROUP_ENV: tuple(s.finalize() for s in states)}


class _TempGroupStore:
    """Partially-computed groups in a temp table indexed on the keys."""

    def __init__(self, ctx, n_keys, n_aggs):
        self.ctx = ctx
        self._schema = _TempSchema(n_keys + 1)
        from repro.storage.rowstore import TableStorage
        from repro.buffer.frames import PageKind

        self._rows = TableStorage(
            self._schema, ctx.temp_file, ctx.pool, page_kind=PageKind.TEMP
        )
        self._index = BTree(ctx.temp_file, ctx.pool, name="groupby-fallback")
        self.n_keys = n_keys

    def _charge_probe(self):
        from repro.optimizer.costmodel import CPU_ROW_US, INDEX_NODE_US

        self.ctx.charge(self._index.height * INDEX_NODE_US + CPU_ROW_US)

    def lookup(self, key):
        self._charge_probe()
        row_ids = self._index.search(key)
        if not row_ids:
            return None
        row = self._rows.get(row_ids[0])
        return row[-1]

    def insert(self, key, serialized_states):
        self._charge_probe()
        row_id = self._rows.insert(key + (tuple(serialized_states),))
        self._index.insert(key, row_id)

    def update(self, key, serialized_states):
        self._charge_probe()
        row_ids = self._index.search(key)
        if not row_ids:
            raise ExecutionError("fallback group vanished")
        self._rows.update(row_ids[0], key + (tuple(serialized_states),))

    def scan(self):
        for __, row in self._rows.scan():
            yield tuple(row[:-1]), row[-1]

    def free(self):
        pass  # temp pages are reclaimed with the temp file


class _TempSchema:
    """Minimal schema stand-in for temp-table storage."""

    def __init__(self, n_columns):
        self.name = "#temp"
        self.columns = [None] * n_columns

    def row_bytes(self):
        return 16 * len(self.columns) + 16


class HashDistinctOp(Operator):
    """Duplicate elimination over projected tuples, spilling via an
    indexed temp structure when the soft limit is reached."""

    ROW_BYTES = 48

    def __init__(self, child):
        self.child = child
        self.fallback_engaged = False
        self._memory = None
        self._ctx = None
        self._seen = None
        self._fallback_index = None

    @property
    def memory_pages(self):
        return self._memory.pages_held if self._memory is not None else 0

    def relinquish_memory(self):
        """Asked by the governor to free memory: engage the fallback."""
        if self._seen is None or self.fallback_engaged:
            return 0
        before = self._memory.pages_held
        self._engage_fallback()
        return before - self._memory.pages_held

    def spill_event_count(self):
        return 1 if self.fallback_engaged else 0

    def adaptive_event_count(self):
        return 1 if self.fallback_engaged else 0

    def execute(self, ctx):
        self._ctx = ctx
        self._memory = WorkMemory(ctx.task, ctx.pool.page_size)
        self._seen = set()
        ctx.task.register_consumer(self, depth=getattr(self, "depth", 1))
        try:
            for row in self.child.execute(ctx):
                ctx.charge(CPU_HASH_BUILD_US)
                key = tuple(row)
                if key in self._seen:
                    continue
                if self._fallback_index is not None:
                    if self._fallback_index.search(key):
                        continue
                    self._fallback_index.insert(key, RowId(0, 0))
                    yield row
                    continue
                if self._memory.would_exceed_soft(self.ROW_BYTES):
                    self._engage_fallback()
                    self._fallback_index.insert(key, RowId(0, 0))
                    yield row
                    continue
                self._seen.add(key)
                self._memory.add(self.ROW_BYTES)
                yield row
        finally:
            ctx.task.unregister_consumer(self)
            self._memory.release_all()

    def execute_batches(self, ctx):
        """Batch protocol: probe keys materialize once per batch; the
        seen-set probes, soft-limit checks, and the indexed-temp fallback
        run per position in the row path's exact order, so duplicate
        elimination and fallback engagement are identical across modes.
        Survivors leave as one mask-take per input batch."""
        self._ctx = ctx
        self._memory = WorkMemory(ctx.task, ctx.pool.page_size)
        self._seen = set()
        ctx.task.register_consumer(self, depth=getattr(self, "depth", 1))
        try:
            for batch in self.child.execute_batches(ctx):
                if batch.count == 0:
                    continue
                ctx.charge(batch.count * CPU_HASH_BUILD_BATCH_US)
                keys = list(zip(*batch.columns))
                mask = [False] * batch.count
                for position, key in enumerate(keys):
                    if key in self._seen:
                        continue
                    if self._fallback_index is not None:
                        if self._fallback_index.search(key):
                            continue
                        self._fallback_index.insert(key, RowId(0, 0))
                        mask[position] = True
                        continue
                    if self._memory.would_exceed_soft(self.ROW_BYTES):
                        self._engage_fallback()
                        self._fallback_index.insert(key, RowId(0, 0))
                        mask[position] = True
                        continue
                    self._seen.add(key)
                    self._memory.add(self.ROW_BYTES)
                    mask[position] = True
                survivors = batch.take(mask)
                if survivors.count:
                    yield survivors
        finally:
            ctx.task.unregister_consumer(self)
            self._memory.release_all()

    def _engage_fallback(self):
        """Move the seen-set to an indexed temp structure and free memory."""
        self.fallback_engaged = True
        self._ctx.note("distinct_fallback")
        self._fallback_index = BTree(
            self._ctx.temp_file, self._ctx.pool, name="distinct-fallback"
        )
        for existing in self._seen:
            self._fallback_index.insert(existing, RowId(0, 0))
        self._seen = set()
        self._memory.release_all()


class SortOp(Operator):
    """External merge sort under the memory quota."""

    ROW_BYTES = 80

    def __init__(self, child, sort_keys):
        self.child = child
        self.sort_keys = sort_keys  # [(expr, ascending)]
        self.runs_spilled = 0
        self._memory = None
        self._ctx = None
        self._current = None
        self._runs = None
        self._merging = False

    @property
    def memory_pages(self):
        return self._memory.pages_held if self._memory is not None else 0

    def relinquish_memory(self):
        """Asked by the governor to free memory: spill the current run.

        Declined once merging has started — the buffered rows are being
        consumed by the merge and can no longer move to disk.
        """
        if not self._current or self._merging:
            return 0
        before = self._memory.pages_held
        self._flush_current_run()
        return before - self._memory.pages_held

    def spill_event_count(self):
        return self.runs_spilled

    def execute(self, ctx):
        self._ctx = ctx
        self._memory = WorkMemory(ctx.task, ctx.pool.page_size)
        self._current = []
        self._runs = []
        ctx.task.register_consumer(self, depth=getattr(self, "depth", 1))
        try:
            for env in self.child.execute(ctx):
                ctx.charge(CPU_SORT_FACTOR_US * 4)
                self._absorb(env)
            self._merging = True
            yield from self._merge_emit(ctx, CPU_ROW_US)
        finally:
            ctx.task.unregister_consumer(self)
            self._memory.release_all()

    def execute_batches(self, ctx):
        """Batch protocol: batched transport in and out; run spilling
        decisions stay per-row (same soft-limit check sequence as the
        row path), so the spilled runs are identical across modes."""
        self._ctx = ctx
        self._memory = WorkMemory(ctx.task, ctx.pool.page_size)
        self._current = []
        self._runs = []
        ctx.task.register_consumer(self, depth=getattr(self, "depth", 1))
        try:
            for batch in self.child.execute_batches(ctx):
                ctx.charge(batch.count * CPU_SORT_FACTOR_BATCH_US * 4)
                for env in batch.rows():
                    self._absorb(env)
            self._merging = True
            yield from rows_to_batches(
                self._merge_emit(ctx, CPU_ROW_BATCH_US), ctx.batch_rows
            )
        finally:
            ctx.task.unregister_consumer(self)
            self._memory.release_all()

    def _absorb(self, env):
        if self._memory.would_exceed_soft(self.ROW_BYTES) and self._current:
            self._flush_current_run()
        self._current.append(env)
        self._memory.add(self.ROW_BYTES)

    def _merge_emit(self, ctx, row_cost):
        key_of = self._key_function(ctx)
        current = self._current
        current.sort(key=key_of)
        runs = self._runs
        if not runs:
            for env in current:
                yield env
            return
        streams = [
            ((key_of(env), index, env) for env in self._read_run(run))
            for index, run in enumerate(runs)
        ]
        streams.append((key_of(env), len(runs), env) for env in current)
        for __, __i, env in heapq.merge(*streams):
            ctx.charge(row_cost)
            yield env

    def _flush_current_run(self):
        """Spill the rows buffered so far as one sorted run.

        The buffer list is cleared in place so callers holding a
        reference (the merge phase) observe the same empty list.
        """
        self._runs.append(self._spill_run(self._ctx, self._current))
        self.runs_spilled += 1
        del self._current[:]
        self._memory.release_all()

    def _spill_run(self, ctx, rows):
        rows.sort(key=self._key_function(ctx))
        run = SpillFile(
            ctx.temp_file, 80, ctx.pool.page_size,
            fault_plan=getattr(ctx, "fault_plan", None),
            yield_hook=getattr(ctx, "yield_hook", None),
        )
        for env in rows:
            run.append(env)
        run.finish_writing()
        return run

    @staticmethod
    def _read_run(run):
        yield from run.read_all()

    def _key_function(self, ctx):
        keys = self.sort_keys
        params = ctx.params

        def key_of(env):
            return tuple(
                _OrderedValue(evaluate(expr, env, params), ascending)
                for expr, ascending in keys
            )

        return key_of


class _OrderedValue:
    """Sort key wrapper: NULLs first, descending inverts comparisons."""

    __slots__ = ("value", "ascending")

    def __init__(self, value, ascending):
        self.value = value
        self.ascending = ascending

    def __lt__(self, other):
        a, b = self.value, other.value
        if a is None and b is None:
            return False
        if a is None:
            return self.ascending
        if b is None:
            return not self.ascending
        if self.ascending:
            return a < b
        return b < a

    def __eq__(self, other):
        return self.value == other.value


class HavingOp(Operator):
    def __init__(self, child, conjunct_exprs):
        self.child = child
        self.conjunct_exprs = conjunct_exprs

    def execute(self, ctx):
        for env in self.child.execute(ctx):
            if all(
                evaluate_predicate(expr, env, ctx.params)
                for expr in self.conjunct_exprs
            ):
                yield env

    def execute_batches(self, ctx):
        for batch in self.child.execute_batches(ctx):
            for expr in self.conjunct_exprs:
                if batch.count == 0:
                    break
                mask = evaluate_predicate_batch(expr, batch, ctx.params)
                if not all(mask):
                    batch = batch.take(mask)
            if batch.count:
                yield batch


class ProjectOp(Operator):
    """Evaluates the select list; output rows are plain tuples."""

    def __init__(self, child, items):
        self.child = child
        self.items = items  # [(expr, name, type)]

    def execute(self, ctx):
        for env in self.child.execute(ctx):
            ctx.charge(CPU_ROW_US)
            yield tuple(
                evaluate(expr, env, ctx.params) for expr, __, __t in self.items
            )

    def execute_batches(self, ctx):
        """Vectorized select list: each item evaluates as one whole
        column; the output batch is tuple-shaped (``layout is None``)."""
        for batch in self.child.execute_batches(ctx):
            ctx.charge(batch.count * CPU_ROW_BATCH_US)
            columns = [
                evaluate_batch(expr, batch, ctx.params)
                for expr, __, __t in self.items
            ]
            yield Batch.from_columns(None, columns, batch.count)


class LimitOp(Operator):
    def __init__(self, child, limit):
        self.child = child
        self.limit = limit

    def execute(self, ctx):
        if self.limit <= 0:
            return
        emitted = 0
        for row in self.child.execute(ctx):
            yield row
            emitted += 1
            if emitted >= self.limit:
                return

    def execute_batches(self, ctx):
        if self.limit <= 0:
            return
        remaining = self.limit
        for batch in self.child.execute_batches(ctx):
            if batch.count >= remaining:
                yield batch if batch.count == remaining else batch.slice(
                    0, remaining
                )
                return
            remaining -= batch.count
            yield batch
