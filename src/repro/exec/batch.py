"""Column-major batches and the row <-> batch shims.

The batch engine moves the operator protocol from row-at-a-time
(``execute`` yielding one environment dict per row) to batch-at-a-time
(``execute_batches`` yielding :class:`Batch` objects).  A batch stores
rows column-major: one flat list of columns, with a *layout* mapping each
environment key (quantifier id, or ``GROUP_ENV``) to its column span.
Vectorized operators read whole columns with zero per-row dict lookups;
unmigrated operators keep their row protocol and are adapted at the
boundary by the shims below (the ``RowShim`` of the design docs):

* :func:`rows_to_batches` packs a row stream into batches (a migrated
  parent above an unmigrated child);
* :func:`Batch.rows` / :func:`batches_to_rows` unpack batches back into
  rows (an unmigrated parent above a migrated child, and the cursor /
  snapshot-resolution surface, which stays row-at-a-time).

Two row shapes flow through the engine and both are supported: dict
environments (``{qid: row_tuple}``) below Project, and plain tuples from
Project upward (``layout is None``).
"""

#: Rows per batch.  Large enough to amortize interpreter overhead,
#: small enough that a batch never dominates an operator's memory.
DEFAULT_BATCH_ROWS = 256


class Batch:
    """A column-major slab of rows sharing one environment layout.

    ``layout`` is a tuple of ``(key, offset, width)`` triples: the rows'
    environment dicts all had exactly these keys, and key ``k``'s column
    ``i`` lives in ``columns[offset + i]``.  ``layout is None`` means the
    rows are plain tuples of ``len(columns)`` values (post-Project).
    """

    __slots__ = ("layout", "columns", "count")

    def __init__(self, layout, columns, count):
        self.layout = layout
        self.columns = columns
        self.count = count

    # -- construction --------------------------------------------------- #

    @classmethod
    def from_envs(cls, envs):
        """Pack environment dicts (all sharing one key/width shape)."""
        first = envs[0]
        layout = []
        offset = 0
        for key, row in first.items():
            width = len(row)
            layout.append((key, offset, width))
            offset += width
        columns = [None] * offset
        for key, offset_, width in layout:
            for index in range(width):
                columns[offset_ + index] = [env[key][index] for env in envs]
        return cls(tuple(layout), columns, len(envs))

    @classmethod
    def from_tuples(cls, rows, width):
        """Pack plain result tuples (the post-Project shape)."""
        if width:
            columns = [[row[i] for row in rows] for i in range(width)]
        else:
            columns = []
        return cls(None, columns, len(rows))

    @classmethod
    def from_columns(cls, layout, columns, count):
        """Wrap pre-built columns (the vectorized operators' fast path)."""
        return cls(layout, columns, count)

    # -- columnar access ------------------------------------------------ #

    def column(self, key, index):
        """The column list for environment key ``key``, position ``index``.

        The returned list is the batch's own storage: read-only by
        convention.  Returns ``None`` when the key is absent (the caller
        raises the row path's exact error).
        """
        for entry_key, offset, width in self.layout:
            if entry_key == key:
                if index >= width:
                    # The row path raises IndexError from the row tuple.
                    raise IndexError("column index out of range")
                return self.columns[offset + index]
        return None

    def has_key(self, key):
        return any(entry_key == key for entry_key, __, __w in self.layout)

    # -- row access (the shim surface) ---------------------------------- #

    def rows(self):
        """Unpack back into the row protocol's shapes, in order."""
        if self.layout is None:
            yield from zip(*self.columns) if self.columns else (
                () for __ in range(self.count)
            )
            return
        for index in range(self.count):
            yield self.env_at(index)

    def env_at(self, index):
        """Materialize row ``index`` as an environment dict."""
        columns = self.columns
        return {
            key: tuple(
                columns[offset + i][index] for i in range(width)
            )
            for key, offset, width in self.layout
        }

    def tuple_at(self, index):
        return tuple(column[index] for column in self.columns)

    # -- transformations ------------------------------------------------ #

    def take(self, mask):
        """Rows where ``mask`` is true, as a new batch (same layout)."""
        columns = [
            [value for value, keep in zip(column, mask) if keep]
            for column in self.columns
        ]
        count = columns[0].__len__() if columns else sum(
            1 for keep in mask if keep
        )
        return Batch(self.layout, columns, count)

    def slice(self, start, stop):
        columns = [column[start:stop] for column in self.columns]
        count = max(0, min(stop, self.count) - start)
        return Batch(self.layout, columns, count)


class BatchBuilder:
    """Accumulates rows (dict or tuple shape) into full batches.

    Consecutive rows sharing a layout signature pack together; a shape
    change or a full buffer flushes.  Usage::

        builder = BatchBuilder(ctx.batch_rows)
        for row in ...:
            batch = builder.add(row)
            if batch is not None:
                yield batch
        tail = builder.finish()
        if tail is not None:
            yield tail
    """

    __slots__ = ("batch_rows", "_rows", "_signature")

    def __init__(self, batch_rows=DEFAULT_BATCH_ROWS):
        self.batch_rows = batch_rows
        self._rows = []
        self._signature = None

    def add(self, row):
        """Buffer one row; returns a completed batch or None."""
        if isinstance(row, dict):
            signature = tuple(
                (key, len(value)) for key, value in row.items()
            )
        else:
            signature = len(row)
        flushed = None
        if self._rows and signature != self._signature:
            flushed = self._flush()
        self._signature = signature
        self._rows.append(row)
        if len(self._rows) >= self.batch_rows:
            # A shape change and a full buffer cannot coincide: the shape
            # flush above emptied the buffer first.
            return self._flush()
        return flushed

    def finish(self):
        """Flush whatever remains; returns a batch or None."""
        if not self._rows:
            return None
        return self._flush()

    def _flush(self):
        rows = self._rows
        self._rows = []
        if isinstance(self._signature, int):
            return Batch.from_tuples(rows, self._signature)
        return Batch.from_envs(rows)


def rows_to_batches(rows, batch_rows=DEFAULT_BATCH_ROWS):
    """Shim: adapt a row stream (dicts or tuples) into batches."""
    builder = BatchBuilder(batch_rows)
    for row in rows:
        batch = builder.add(row)
        if batch is not None:
            yield batch
    tail = builder.finish()
    if tail is not None:
        yield tail


def batches_to_rows(batches):
    """Shim: unpack a batch stream back into the row protocol."""
    for batch in batches:
        yield from batch.rows()
