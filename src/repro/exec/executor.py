"""Plan interpretation: plan trees -> operator trees -> row streams."""

from repro.common.errors import ExecutionError
from repro.exec.batch import DEFAULT_BATCH_ROWS, batches_to_rows
from repro.exec.aggregates import (
    HashDistinctOp,
    HashGroupByOp,
    HavingOp,
    LimitOp,
    ProjectOp,
    SortOp,
)
from repro.exec.operators import (
    DerivedScanOp,
    FilterOp,
    HashJoinOp,
    IndexNLJoinOp,
    IndexScanOp,
    NLJoinOp,
    ProcedureScanOp,
    RecursiveRefScanOp,
    SeqScanOp,
    SingleRowOp,
)
from repro.optimizer import plans as p

#: Bound on recursive-union iterations (runaway-recursion backstop).
MAX_RECURSION_DEPTH = 200


class ExecutionContext:
    """Everything operators need at run time."""

    def __init__(self, pool, temp_file, stats, clock, task, params=None,
                 feedback_enabled=True, metrics=None, fault_plan=None,
                 yield_hook=None, snapshot_lsn=None, snapshot_txn=None,
                 batch_mode=False, batch_rows=DEFAULT_BATCH_ROWS):
        self.pool = pool
        self.temp_file = temp_file
        self.stats = stats
        self.clock = clock
        self.task = task
        self.params = params
        self.feedback_enabled = feedback_enabled
        self.metrics = metrics
        self.fault_plan = fault_plan
        #: Vectorized execution: drive the plan through the operators'
        #: ``execute_batches`` protocol instead of row ``execute``.
        self.batch_mode = batch_mode
        #: Rows per batch for batch construction and the row shims.
        self.batch_rows = batch_rows
        #: Workload-scheduler yield point, fired at spill-file flushes so
        #: concurrent sessions can interleave at I/O boundaries.
        self.yield_hook = yield_hook
        #: Snapshot reads: scans resolve rows as of this commit LSN
        #: (``None`` reads the latest heap).  ``snapshot_txn`` keeps the
        #: reading transaction's own uncommitted writes visible.
        self.snapshot_lsn = snapshot_lsn
        self.snapshot_txn = snapshot_txn
        self.cte_tables = {}
        self.notes = {}

    def charge(self, microseconds):
        """Charge CPU time to the simulated clock."""
        self.clock.advance(int(microseconds) if microseconds >= 1 else 0)
        self._accumulate(microseconds)

    _fraction = 0.0

    def _accumulate(self, microseconds):
        # Sub-microsecond charges accumulate so per-row CPU is not lost.
        self._fraction += microseconds - int(microseconds)
        if self._fraction >= 1.0:
            whole = int(self._fraction)
            self.clock.advance(whole)
            self._fraction -= whole

    def note(self, event):
        self.notes[event] = self.notes.get(event, 0) + 1

    def with_params(self, params):
        clone = ExecutionContext(
            self.pool, self.temp_file, self.stats, self.clock, self.task,
            params, self.feedback_enabled, metrics=self.metrics,
            fault_plan=self.fault_plan, yield_hook=self.yield_hook,
            snapshot_lsn=self.snapshot_lsn, snapshot_txn=self.snapshot_txn,
            batch_mode=self.batch_mode, batch_rows=self.batch_rows,
        )
        clone.cte_tables = self.cte_tables
        clone.notes = self.notes
        return clone


class Executor:
    """Builds operator trees from plans and runs them.

    ``plan_block_fn`` and ``bind_recursive_arm_fn`` are engine callbacks
    used by the adaptive RECURSIVE UNION, which re-binds and re-optimizes
    its recursive arm every iteration ("possibly using a different
    [strategy] for each recursive iteration").
    """

    def __init__(self, plan_block_fn=None, bind_recursive_arm_fn=None,
                 exec_stats=None):
        self.plan_block_fn = plan_block_fn
        self.bind_recursive_arm_fn = bind_recursive_arm_fn
        #: Optional :class:`~repro.exec.instrument.ExecStatsCollector`;
        #: when set, every built operator is wrapped so EXPLAIN ANALYZE
        #: has per-operator actuals.
        self.exec_stats = exec_stats

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run(self, result, ctx):
        """Execute an OptimizerResult for a SELECT; yields result tuples."""
        if ctx.metrics is not None:
            ctx.metrics.counter("exec.queries").inc()
        if result.recursive_cte is not None:
            self._materialize_cte(result.recursive_cte, ctx)
        operator = self.build(result.plan, depth=0)
        if ctx.batch_mode:
            # Batch protocol through the tree; the cursor surface above
            # stays row-at-a-time, so unpack at the very top.
            yield from batches_to_rows(operator.execute_batches(ctx))
            return
        yield from operator.execute(ctx)

    def _materialize_cte(self, cte, ctx):
        base_result = self.plan_block_fn(cte.base_block)
        base_operator = self.build(base_result.plan, depth=0)
        working = [tuple(row) for row in base_operator.execute(ctx)]
        delta = list(working)
        iterations = 0
        strategies = []
        while delta:
            iterations += 1
            if iterations > MAX_RECURSION_DEPTH:
                raise ExecutionError(
                    "recursive union exceeded %d iterations" % MAX_RECURSION_DEPTH
                )
            # Adaptive: the arm is re-bound and re-optimized per iteration,
            # with the working-table statistics at their current values.
            arm_block = self.bind_recursive_arm_fn(cte)
            arm_result = self.plan_block_fn(arm_block)
            strategies.append(type(arm_result.plan).__name__)
            ctx.cte_tables[cte.name] = delta
            arm_operator = self.build(arm_result.plan, depth=0)
            delta = [tuple(row) for row in arm_operator.execute(ctx)]
            working.extend(delta)
        ctx.cte_tables[cte.name] = working
        ctx.notes["recursive_iterations"] = iterations
        return working

    # ------------------------------------------------------------------ #
    # plan -> operator tree
    # ------------------------------------------------------------------ #

    def build(self, plan, depth=0):
        """Build (and, when collecting stats, instrument) one plan node."""
        operator = self._build_operator(plan, depth)
        if self.exec_stats is not None:
            from repro.exec.instrument import InstrumentedOp

            return InstrumentedOp(operator, self.exec_stats.stats_for(plan))
        return operator

    def _build_operator(self, plan, depth):
        if isinstance(plan, p.SeqScanPlan):
            return SeqScanOp(plan.quantifier, plan.local_conjuncts)
        if isinstance(plan, p.IndexScanPlan):
            return IndexScanOp(
                plan.quantifier, plan.index_schema, plan.sarg,
                plan.local_conjuncts,
            )
        if isinstance(plan, p.DerivedScanPlan):
            sub = self.build(plan.sub_plan, depth + 1)
            return DerivedScanOp(plan.quantifier, sub, plan.local_conjuncts)
        if isinstance(plan, p.ProcedureScanPlan):
            body = self.build(plan.body_plan, depth + 1)
            return ProcedureScanOp(plan.quantifier, body)
        if isinstance(plan, p.RecursiveRefScanPlan):
            return RecursiveRefScanOp(plan.quantifier)
        if isinstance(plan, p.FilterPlan):
            return FilterOp(self.build(plan.child, depth + 1), plan.conjuncts)
        if isinstance(plan, p.NLJoinPlan):
            left = self.build(plan.left, depth + 1)
            right = self.build(plan.right, depth + 1)
            return NLJoinOp(
                left, right, plan.join_type, plan.conjuncts,
                _plan_quantifiers(plan.right),
            )
        if isinstance(plan, p.IndexNLJoinPlan):
            left = self.build(plan.left, depth + 1)
            return IndexNLJoinOp(
                left, plan.quantifier, plan.index_schema, plan.probe_keys,
                plan.join_type, plan.conjuncts,
                getattr(plan, "local_conjuncts", []),
            )
        if isinstance(plan, p.HashJoinPlan):
            left = self.build(plan.left, depth + 1)
            right = self.build(plan.right, depth + 1)
            alternate = None
            if plan.alternate is not None:
                alternate = IndexNLJoinOp(
                    None,
                    plan.alternate.quantifier,
                    plan.alternate.index_schema,
                    plan.alternate.probe_keys,
                    plan.alternate.join_type,
                    plan.alternate.conjuncts,
                    getattr(plan.alternate, "local_conjuncts", []),
                )
            operator = HashJoinOp(
                left, right, plan.join_type, plan.conjuncts,
                plan.build_keys, plan.probe_keys,
                _plan_quantifiers(plan.right),
                alternate=alternate,
                alternate_threshold=plan.alternate_threshold,
            )
            operator.depth = depth
            return operator
        if isinstance(plan, p.HashGroupByPlan):
            operator = HashGroupByOp(
                self.build(plan.child, depth + 1), plan.group_keys,
                plan.aggregates,
            )
            operator.depth = depth
            return operator
        if isinstance(plan, p.HavingPlan):
            return HavingOp(self.build(plan.child, depth + 1), plan.conjunct_exprs)
        if isinstance(plan, p.SortPlan):
            operator = SortOp(self.build(plan.child, depth + 1), plan.sort_keys)
            operator.depth = depth
            return operator
        if isinstance(plan, p.ProjectPlan):
            return ProjectOp(self.build(plan.child, depth + 1), plan.items)
        if isinstance(plan, p.HashDistinctPlan):
            operator = HashDistinctOp(self.build(plan.child, depth + 1))
            operator.depth = depth
            return operator
        if isinstance(plan, p.LimitPlan):
            return LimitOp(self.build(plan.child, depth + 1), plan.limit)
        if plan.__class__.__name__ in ("ProjectSource", "SingleRow"):
            return SingleRowOp()
        raise ExecutionError("no operator for plan node %r" % (type(plan).__name__,))


def _plan_quantifiers(plan):
    """All quantifiers produced by a plan subtree (for NULL extension)."""
    quantifiers = []
    for node in plan.walk():
        quantifier = getattr(node, "quantifier", None)
        if quantifier is not None:
            quantifiers.append(quantifier)
    return quantifiers
