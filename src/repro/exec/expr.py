"""Expression evaluation with SQL three-valued logic.

Environments are dicts mapping quantifier id -> row tuple (plus the
``GROUP_ENV`` key for post-aggregation rows).  ``None`` is SQL NULL;
comparisons involving NULL yield ``None`` (unknown), AND/OR follow Kleene
logic, and predicates treat unknown as not-satisfied.
"""

import re

from repro.common.errors import ExecutionError
from repro.sql import ast
from repro.sql.binder import GROUP_ENV, GroupRef


def evaluate(expr, env, params=None):
    """Evaluate a bound expression against ``env``; returns a value or
    None for SQL NULL/unknown."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        if not expr.bound:
            raise ExecutionError("unbound column %r at runtime" % (expr.column_name,))
        row = env.get(expr.quantifier_id)
        if row is None:
            raise ExecutionError(
                "no row for quantifier %d in environment" % (expr.quantifier_id,)
            )
        return row[expr.column_index]
    if isinstance(expr, GroupRef):
        row = env.get(GROUP_ENV)
        if row is None:
            raise ExecutionError("GroupRef outside aggregation context")
        return row[expr.index]
    if isinstance(expr, ast.Parameter):
        return _parameter_value(expr, params)
    if isinstance(expr, ast.BinaryOp):
        return _binary(expr, env, params)
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            value = evaluate(expr.operand, env, params)
            return None if value is None else (not _truthy(value))
        value = evaluate(expr.operand, env, params)
        return None if value is None else -value
    if isinstance(expr, ast.IsNull):
        value = evaluate(expr.operand, env, params)
        result = value is None
        return (not result) if expr.negated else result
    if isinstance(expr, ast.Like):
        return _like(expr, env, params)
    if isinstance(expr, ast.Between):
        return _between(expr, env, params)
    if isinstance(expr, ast.InList):
        return _in_list(expr, env, params)
    if isinstance(expr, ast.FunctionCall):
        return _scalar_function(expr, env, params)
    if isinstance(expr, ast.CaseExpr):
        for condition, result in expr.branches:
            if _truthy(evaluate(condition, env, params)):
                return evaluate(result, env, params)
        if expr.default is not None:
            return evaluate(expr.default, env, params)
        return None
    raise ExecutionError("cannot evaluate %r" % (type(expr).__name__,))


def evaluate_predicate(expr, env, params=None):
    """Evaluate as a filter: unknown (NULL) counts as false."""
    return _truthy(evaluate(expr, env, params))


def _truthy(value):
    return value is not None and value is not False and value != 0


def _parameter_value(expr, params):
    if params is None:
        raise ExecutionError("statement has parameters but none were supplied")
    if expr.name is not None:
        try:
            return params[expr.name]
        except (KeyError, TypeError):
            raise ExecutionError("no value for parameter %r" % (expr.name,)) from None
    try:
        return params[expr.ordinal]
    except (IndexError, KeyError, TypeError):
        raise ExecutionError(
            "no value for positional parameter %r" % (expr.ordinal,)
        ) from None


def _binary(expr, env, params):
    op = expr.op
    if op == "AND":
        left = evaluate(expr.left, env, params)
        if left is False or (left is not None and not _truthy(left)):
            return False
        right = evaluate(expr.right, env, params)
        if right is False or (right is not None and not _truthy(right)):
            return False
        if left is None or right is None:
            return None
        return True
    if op == "OR":
        left = evaluate(expr.left, env, params)
        if left is not None and _truthy(left):
            return True
        right = evaluate(expr.right, env, params)
        if right is not None and _truthy(right):
            return True
        if left is None or right is None:
            return None
        return False
    left = evaluate(expr.left, env, params)
    right = evaluate(expr.right, env, params)
    if op in ("=", "<>", "<", "<=", ">", ">="):
        if left is None or right is None:
            return None
        return _compare(op, left, right)
    if left is None or right is None:
        return None
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        return left / right
    if op == "||":
        return str(left) + str(right)
    raise ExecutionError("unknown operator %r" % (op,))


def _compare(op, left, right):
    try:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right
    except TypeError:
        raise ExecutionError(
            "cannot compare %r with %r" % (type(left).__name__, type(right).__name__)
        ) from None


def _like(expr, env, params):
    value = evaluate(expr.operand, env, params)
    pattern = evaluate(expr.pattern, env, params)
    if value is None or pattern is None:
        return None
    matched = like_match(str(value), str(pattern))
    return (not matched) if expr.negated else matched


def like_match(text, pattern):
    """SQL LIKE matching (% = any run, _ = any single character)."""
    return _like_regex(pattern).match(text) is not None


_LIKE_CACHE = {}


def _like_regex(pattern):
    regex = _LIKE_CACHE.get(pattern)
    if regex is None:
        parts = []
        for char in pattern:
            if char == "%":
                parts.append(".*")
            elif char == "_":
                parts.append(".")
            else:
                parts.append(re.escape(char))
        regex = re.compile("^" + "".join(parts) + "$", re.DOTALL)
        if len(_LIKE_CACHE) < 512:
            _LIKE_CACHE[pattern] = regex
    return regex


def _between(expr, env, params):
    value = evaluate(expr.operand, env, params)
    low = evaluate(expr.low, env, params)
    high = evaluate(expr.high, env, params)
    if value is None or low is None or high is None:
        return None
    result = low <= value <= high
    return (not result) if expr.negated else result


def _in_list(expr, env, params):
    value = evaluate(expr.operand, env, params)
    if value is None:
        return None
    saw_null = False
    for item in expr.items:
        item_value = evaluate(item, env, params)
        if item_value is None:
            saw_null = True
        elif item_value == value:
            return False if expr.negated else True
    if saw_null:
        return None
    return True if expr.negated else False


# --------------------------------------------------------------------- #
# vectorized (batch) evaluation
#
# ``evaluate_batch`` returns one value per batch row, value-identical to
# calling ``evaluate`` on each row's environment: batch and row engines
# must produce byte-identical result sets (the differential CI lane
# enforces it).  The one sanctioned divergence is *error timing* on
# statements that raise mid-evaluation: a vectorized node evaluates its
# whole batch, so a poisoned row later in a batch can surface before (or
# after) the row engine would have reached it.  Error-free statements are
# unaffected.  Short-circuit forms (AND/OR/CASE) only vectorize when the
# skippable side is *total* (cannot raise); otherwise they fall back to
# the scalar evaluator row by row, preserving short-circuit semantics
# exactly.
# --------------------------------------------------------------------- #

def evaluate_batch(expr, batch, params=None):
    """Evaluate a bound expression over a whole batch; returns a list of
    per-row values (read-only — may alias the batch's own columns)."""
    if isinstance(expr, ast.Literal):
        return [expr.value] * batch.count
    if isinstance(expr, ast.ColumnRef):
        if not expr.bound:
            raise ExecutionError(
                "unbound column %r at runtime" % (expr.column_name,)
            )
        column = batch.column(expr.quantifier_id, expr.column_index)
        if column is None:
            raise ExecutionError(
                "no row for quantifier %d in environment" % (expr.quantifier_id,)
            )
        return column
    if isinstance(expr, GroupRef):
        column = batch.column(GROUP_ENV, expr.index)
        if column is None:
            raise ExecutionError("GroupRef outside aggregation context")
        return column
    if isinstance(expr, ast.Parameter):
        return [_parameter_value(expr, params)] * batch.count
    if isinstance(expr, ast.BinaryOp):
        return _binary_batch(expr, batch, params)
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            return [
                None if value is None else (not _truthy(value))
                for value in evaluate_batch(expr.operand, batch, params)
            ]
        return [
            None if value is None else -value
            for value in evaluate_batch(expr.operand, batch, params)
        ]
    if isinstance(expr, ast.IsNull):
        values = evaluate_batch(expr.operand, batch, params)
        if expr.negated:
            return [value is not None for value in values]
        return [value is None for value in values]
    if isinstance(expr, ast.Like):
        return _like_batch(expr, batch, params)
    if isinstance(expr, ast.Between):
        return _between_batch(expr, batch, params)
    if isinstance(expr, ast.InList):
        return _in_list_batch(expr, batch, params)
    if isinstance(expr, ast.FunctionCall):
        return _scalar_function_batch(expr, batch, params)
    # CaseExpr (branch short-circuit) and anything unhandled: scalar
    # evaluation row by row — correct for every node type, just slower.
    return _rowwise_batch(expr, batch, params)


def evaluate_predicate_batch(expr, batch, params=None):
    """Filter mask over a batch: unknown (NULL) counts as false."""
    return [_truthy(value) for value in evaluate_batch(expr, batch, params)]


def _rowwise_batch(expr, batch, params):
    if batch.layout is None:
        raise ExecutionError(
            "cannot evaluate %r over tuple rows" % (type(expr).__name__,)
        )
    return [
        evaluate(expr, batch.env_at(index), params)
        for index in range(batch.count)
    ]


def _is_total(expr):
    """True when evaluating ``expr`` can neither raise nor observe
    evaluation order — the sides a vectorized AND/OR may pre-evaluate
    without breaking short-circuit parity with the row engine."""
    if isinstance(expr, ast.Literal):
        return True
    if isinstance(expr, ast.ColumnRef):
        return expr.bound
    if isinstance(expr, GroupRef):
        return True
    if isinstance(expr, ast.IsNull):
        return _is_total(expr.operand)
    if isinstance(expr, ast.UnaryOp):
        return expr.op == "NOT" and _is_total(expr.operand)
    if isinstance(expr, ast.BinaryOp):
        if expr.op in ("AND", "OR", "=", "<>", "<", "<=", ">", ">="):
            return _is_total(expr.left) and _is_total(expr.right)
        return False
    if isinstance(expr, ast.Between):
        return (
            _is_total(expr.operand)
            and _is_total(expr.low)
            and _is_total(expr.high)
        )
    if isinstance(expr, ast.InList):
        return _is_total(expr.operand) and all(
            _is_total(item) for item in expr.items
        )
    if isinstance(expr, ast.Like):
        return _is_total(expr.operand) and _is_total(expr.pattern)
    return False


def _binary_batch(expr, batch, params):
    op = expr.op
    if op in ("AND", "OR"):
        if not (_is_total(expr.left) and _is_total(expr.right)):
            return _rowwise_batch(expr, batch, params)
        lefts = evaluate_batch(expr.left, batch, params)
        rights = evaluate_batch(expr.right, batch, params)
        if op == "AND":
            return [
                False
                if (left is not None and not _truthy(left))
                or (right is not None and not _truthy(right))
                else (None if left is None or right is None else True)
                for left, right in zip(lefts, rights)
            ]
        return [
            True
            if (left is not None and _truthy(left))
            or (right is not None and _truthy(right))
            else (None if left is None or right is None else False)
            for left, right in zip(lefts, rights)
        ]
    lefts = evaluate_batch(expr.left, batch, params)
    rights = evaluate_batch(expr.right, batch, params)
    if op in ("=", "<>", "<", "<=", ">", ">="):
        return [
            None if left is None or right is None else _compare(op, left, right)
            for left, right in zip(lefts, rights)
        ]
    out = []
    for left, right in zip(lefts, rights):
        if left is None or right is None:
            out.append(None)
        elif op == "+":
            out.append(left + right)
        elif op == "-":
            out.append(left - right)
        elif op == "*":
            out.append(left * right)
        elif op == "/":
            if right == 0:
                raise ExecutionError("division by zero")
            out.append(left / right)
        elif op == "||":
            out.append(str(left) + str(right))
        else:
            raise ExecutionError("unknown operator %r" % (op,))
    return out


def _like_batch(expr, batch, params):
    values = evaluate_batch(expr.operand, batch, params)
    patterns = evaluate_batch(expr.pattern, batch, params)
    negated = expr.negated
    out = []
    for value, pattern in zip(values, patterns):
        if value is None or pattern is None:
            out.append(None)
            continue
        matched = _like_regex(str(pattern)).match(str(value)) is not None
        out.append((not matched) if negated else matched)
    return out


def _between_batch(expr, batch, params):
    values = evaluate_batch(expr.operand, batch, params)
    lows = evaluate_batch(expr.low, batch, params)
    highs = evaluate_batch(expr.high, batch, params)
    negated = expr.negated
    out = []
    for value, low, high in zip(values, lows, highs):
        if value is None or low is None or high is None:
            out.append(None)
            continue
        result = low <= value <= high
        out.append((not result) if negated else result)
    return out


def _in_list_batch(expr, batch, params):
    values = evaluate_batch(expr.operand, batch, params)
    item_columns = [
        evaluate_batch(item, batch, params) for item in expr.items
    ]
    negated = expr.negated
    out = []
    for index, value in enumerate(values):
        if value is None:
            out.append(None)
            continue
        saw_null = False
        result = True if negated else False
        for column in item_columns:
            item_value = column[index]
            if item_value is None:
                saw_null = True
            elif item_value == value:
                result = False if negated else True
                saw_null = False
                break
        else:
            if saw_null:
                result = None
        out.append(result)
    return out


def _scalar_function_batch(expr, batch, params):
    if expr.is_aggregate:
        raise ExecutionError(
            "aggregate %s evaluated outside aggregation" % (expr.name,)
        )
    columns = [evaluate_batch(arg, batch, params) for arg in expr.args]
    name = expr.name
    if name == "ABS":
        return [None if v is None else abs(v) for v in columns[0]]
    if name == "LENGTH":
        return [None if v is None else len(str(v)) for v in columns[0]]
    if name == "LOWER":
        return [None if v is None else str(v).lower() for v in columns[0]]
    if name == "UPPER":
        return [None if v is None else str(v).upper() for v in columns[0]]
    if name == "COALESCE":
        out = []
        for index in range(batch.count):
            chosen = None
            for column in columns:
                if column[index] is not None:
                    chosen = column[index]
                    break
            out.append(chosen)
        return out
    raise ExecutionError("unknown function %r" % (name,))


def _scalar_function(expr, env, params):
    if expr.is_aggregate:
        raise ExecutionError(
            "aggregate %s evaluated outside aggregation" % (expr.name,)
        )
    args = [evaluate(arg, env, params) for arg in expr.args]
    name = expr.name
    if name == "ABS":
        return None if args[0] is None else abs(args[0])
    if name == "LENGTH":
        return None if args[0] is None else len(str(args[0]))
    if name == "LOWER":
        return None if args[0] is None else str(args[0]).lower()
    if name == "UPPER":
        return None if args[0] is None else str(args[0]).upper()
    if name == "COALESCE":
        for arg in args:
            if arg is not None:
                return arg
        return None
    raise ExecutionError("unknown function %r" % (name,))
