"""Per-operator execution statistics (the EXPLAIN ANALYZE substrate).

The executor wraps every operator it builds in an :class:`InstrumentedOp`
that records, per plan node:

* **rows out** — tuples the operator actually produced;
* **pages touched** — buffer-pool accesses (hits + misses) attributed
  while the operator (and its inputs) were producing;
* **elapsed simulated µs** — clock time spent inside the operator's
  generator, *inclusive* of its children (consumer time between pulls is
  excluded, because the clock is re-read around every ``next()``);
* **spill events** and **adaptive fallbacks** — read from the operator's
  observability protocol (:meth:`Operator.spill_event_count` /
  :meth:`Operator.adaptive_event_count`) after execution.

Rows *in* are derived at render time as the sum of the children's rows
out, so the collector stores nothing redundant.

Stats are keyed by plan node, so ``Result.explain(analyze=True)`` can
interleave the optimizer's estimates with what actually happened — the
estimate-versus-actual comparison every adaptive component in the paper
feeds on.
"""

from repro.exec.operators import Operator


class OperatorStats:
    """What one operator actually did during execution."""

    __slots__ = (
        "label", "executions", "rows_out", "batches", "elapsed_us",
        "pages_touched", "spill_events", "adaptive_events",
    )

    def __init__(self, label):
        self.label = label
        self.executions = 0
        self.rows_out = 0
        #: Batches produced via the batch protocol (0 in row mode).
        self.batches = 0
        self.elapsed_us = 0
        self.pages_touched = 0
        self.spill_events = 0
        self.adaptive_events = 0

    def as_dict(self):
        return {
            "label": self.label,
            "executions": self.executions,
            "rows_out": self.rows_out,
            "batches": self.batches,
            "elapsed_us": self.elapsed_us,
            "pages_touched": self.pages_touched,
            "spill_events": self.spill_events,
            "adaptive_events": self.adaptive_events,
        }


class InstrumentedOp(Operator):
    """Transparent wrapper recording an operator's runtime behaviour.

    Delegates the memory-consumer protocol to the wrapped operator (which
    registers *itself* with the task, so the governor's reclaim calls
    bypass the wrapper entirely).
    """

    def __init__(self, inner, stats):
        self.inner = inner
        self.stats = stats

    @property
    def memory_pages(self):
        return self.inner.memory_pages

    def relinquish_memory(self):
        return self.inner.relinquish_memory()

    def spill_event_count(self):
        return self.inner.spill_event_count()

    def adaptive_event_count(self):
        return self.inner.adaptive_event_count()

    def execute(self, ctx):
        stats = self.stats
        stats.executions += 1
        clock = ctx.clock
        pool = ctx.pool
        iterator = self.inner.execute(ctx)
        try:
            while True:
                before_us = clock.now
                before_pages = pool.hits + pool.misses
                try:
                    row = next(iterator)
                except StopIteration:
                    stats.elapsed_us += clock.now - before_us
                    stats.pages_touched += (
                        pool.hits + pool.misses - before_pages
                    )
                    break
                stats.elapsed_us += clock.now - before_us
                stats.pages_touched += pool.hits + pool.misses - before_pages
                stats.rows_out += 1
                yield row
        finally:
            iterator.close()
            self._harvest(ctx)

    def execute_batches(self, ctx):
        """Batch-protocol wrapper: same timing/page attribution as
        :meth:`execute`, with rows counted per batch.  Delegates to the
        inner operator's batch protocol directly so the instrumentation
        never forces a row-shim detour at an operator boundary."""
        stats = self.stats
        stats.executions += 1
        clock = ctx.clock
        pool = ctx.pool
        iterator = self.inner.execute_batches(ctx)
        try:
            while True:
                before_us = clock.now
                before_pages = pool.hits + pool.misses
                try:
                    batch = next(iterator)
                except StopIteration:
                    stats.elapsed_us += clock.now - before_us
                    stats.pages_touched += (
                        pool.hits + pool.misses - before_pages
                    )
                    break
                stats.elapsed_us += clock.now - before_us
                stats.pages_touched += pool.hits + pool.misses - before_pages
                stats.rows_out += batch.count
                stats.batches += 1
                yield batch
        finally:
            iterator.close()
            self._harvest(ctx)

    def _harvest(self, ctx):
        """Fold the operator's cumulative spill/adaptive counters in.

        The inner counters are cumulative across executions, so the stats
        are *assigned* (not added) and the registry receives only the
        delta since the last harvest.
        """
        stats = self.stats
        spills = self.inner.spill_event_count()
        adaptive = self.inner.adaptive_event_count()
        new_spills = spills - stats.spill_events
        new_adaptive = adaptive - stats.adaptive_events
        stats.spill_events = spills
        stats.adaptive_events = adaptive
        if ctx.metrics is not None:
            if new_spills > 0:
                ctx.metrics.counter("exec.spill_events").inc(new_spills)
            if new_adaptive > 0:
                ctx.metrics.counter("exec.adaptive_fallbacks").inc(
                    new_adaptive
                )


class ExecStatsCollector:
    """Stats for every operator of one statement, keyed by plan node."""

    def __init__(self):
        self._by_node = {}  # id(plan_node) -> OperatorStats

    def stats_for(self, plan_node):
        key = id(plan_node)
        stats = self._by_node.get(key)
        if stats is None:
            stats = self._by_node[key] = OperatorStats(plan_node.describe())
        return stats

    def lookup(self, plan_node):
        """The recorded stats for ``plan_node``, or None if never built."""
        return self._by_node.get(id(plan_node))

    def rows_into(self, plan_node):
        """Rows the node consumed: the sum of its children's rows out."""
        total = 0
        for child in plan_node.children:
            stats = self.lookup(child)
            if stats is not None:
                total += stats.rows_out
        return total

    # -- rendering ------------------------------------------------------- #

    def render(self, plan):
        """EXPLAIN ANALYZE text: the plan tree annotated with actuals."""
        lines = []
        self._render_node(plan, 0, lines)
        return "\n".join(lines)

    def _render_node(self, node, indent, lines):
        base = "%s%s  (rows=%.0f, cost=%.0fus)" % (
            "  " * indent, node.describe(), node.est_rows, node.est_cost_us
        )
        stats = self.lookup(node)
        if stats is None or stats.executions == 0:
            lines.append(base + "  [never executed]")
        else:
            actual = (
                "  [actual rows=%d rows_in=%d pages=%d elapsed=%dus"
                " spills=%d adaptive=%d"
            ) % (
                stats.rows_out, self.rows_into(node), stats.pages_touched,
                stats.elapsed_us, stats.spill_events, stats.adaptive_events,
            )
            if stats.batches:
                actual += " batches=%d rows_per_batch=%.1f" % (
                    stats.batches, stats.rows_out / stats.batches,
                )
            lines.append(base + actual + "]")
        for child in node.children:
            self._render_node(child, indent + 1, lines)
