"""The memory governor (paper Section 4.3, eqs. 4 and 5).

Each task (unit of work) gets two quotas:

* a **hard limit**: ``(3/4 * maximum buffer pool size) / active requests``
  — exceeding it terminates the statement with an error;
* a **soft limit**: ``current buffer pool size / multiprogramming level``
  — reaching it makes the governor request that query operators free
  memory, starting at the highest consumer and moving *down* the execution
  tree, "prevent[ing] an input operator from being starved for memory by a
  consumer operator".
"""

import collections

from repro.analysis.races import tap as _race_tap
from repro.common.errors import MemoryQuotaExceededError


class AdmissionQueue:
    """FIFO statement admission gated by the multiprogramming level.

    The paper's soft limit is ``pool / multiprogramming_level`` — a quota
    that only means anything if at most that many statements actually run
    concurrently.  The workload scheduler asks for a slot before every
    statement; when the governor's (possibly adaptive) level is saturated
    the session queues and is promoted in arrival order as slots free up.
    Capacity is read live from the governor, so an MPL adaptation decision
    immediately widens or narrows the gate.
    """

    def __init__(self, governor, metrics=None):
        self._governor = governor
        self._admitted = set()
        self._queue = collections.deque()
        self.races = None  # RaceSanitizer, attached by the server
        self.total_admissions = 0
        self.total_waits = 0
        self.peak_admitted = 0
        self._m_admissions = None
        self._m_waits = None
        if metrics is not None:
            self._m_admissions = metrics.counter("memgov.admissions")
            self._m_waits = metrics.counter("memgov.admission_waits")
            metrics.register_probe(
                "memgov.admitted_sessions", lambda: len(self._admitted)
            )
            metrics.register_probe(
                "memgov.admission_queue_depth", lambda: len(self._queue)
            )

    def capacity(self):
        """Live slot count: the governor's current multiprogramming level."""
        return self._governor.multiprogramming_level

    def admitted(self, who):
        return who in self._admitted

    def queued(self, who):
        return who in self._queue

    def queue_depth(self):
        return len(self._queue)

    def request(self, who):
        """Ask for a slot; returns True (admitted) or False (queued).

        Queue order is strict FIFO: a requester never jumps ahead of a
        session already waiting, even when a slot is free.
        """
        if who in self._admitted:
            return True
        with _race_tap(self.races, "admission", "slots", "w"):
            if who not in self._queue and not self._queue and (
                len(self._admitted) < self.capacity()
            ):
                self._admit(who)
                return True
            if who not in self._queue:
                self._queue.append(who)
                self.total_waits += 1
                if self._m_waits is not None:
                    self._m_waits.inc()
        return False

    def release(self, who):
        """Give the slot back and promote queued sessions FIFO; returns
        the sessions promoted by this release."""
        with _race_tap(self.races, "admission", "slots", "w"):
            self._admitted.discard(who)
            return self.promote()

    def promote(self):
        """Admit queue heads into any free slots (also called after an
        MPL adaptation raises capacity)."""
        promoted = []
        while self._queue and len(self._admitted) < self.capacity():
            head = self._queue.popleft()
            self._admit(head)
            promoted.append(head)
        return promoted

    def withdraw(self, who):
        """Forget ``who`` entirely (session teardown / abort cascade)."""
        with _race_tap(self.races, "admission", "slots", "w"):
            self._admitted.discard(who)
            try:
                self._queue.remove(who)
            except ValueError:
                pass

    def _admit(self, who):
        self._admitted.add(who)
        self.total_admissions += 1
        self.peak_admitted = max(self.peak_admitted, len(self._admitted))
        if self._m_admissions is not None:
            self._m_admissions.inc()


class Task:
    """One statement's unit of work, with its memory accounting.

    Memory consumers (operators) register with a *depth*: 0 is the top of
    the execution tree, larger depths are closer to the inputs.  When the
    soft limit is hit, consumers are asked to relinquish in depth order
    (top first).
    """

    def __init__(self, governor, task_id):
        self.governor = governor
        self.task_id = task_id
        self.used_pages = 0
        self._consumers = []  # [(depth, consumer)]
        self.soft_limit_hits = 0

    # -- consumer registry ----------------------------------------------- #

    def register_consumer(self, consumer, depth):
        """``consumer`` must expose ``relinquish_memory() -> pages freed``
        and ``memory_pages`` (its current usage)."""
        self._consumers.append((depth, consumer))

    def unregister_consumer(self, consumer):
        self._consumers = [
            (depth, c) for depth, c in self._consumers if c is not consumer
        ]

    # -- quotas ------------------------------------------------------------ #

    @property
    def hard_limit_pages(self):
        return self.governor.hard_limit_pages()

    @property
    def soft_limit_pages(self):
        return self.governor.soft_limit_pages()

    # -- allocation ---------------------------------------------------------- #

    def allocate(self, pages):
        """Account ``pages`` of work memory to this task.

        Raises :class:`MemoryQuotaExceededError` past the hard limit; at
        the soft limit, asks operators to free memory first.
        """
        if pages <= 0:
            return
        if self.used_pages + pages > self.soft_limit_pages:
            self.soft_limit_hits += 1
            self._reclaim(self.used_pages + pages - self.soft_limit_pages)
        if self.used_pages + pages > self.hard_limit_pages:
            raise MemoryQuotaExceededError(
                "statement exceeded its hard memory limit",
                used_pages=self.used_pages + pages,
                limit_pages=self.hard_limit_pages,
            )
        self.used_pages += pages

    def release(self, pages):
        self.used_pages = max(0, self.used_pages - int(pages))

    def _reclaim(self, needed):
        """Ask consumers to free memory, top of the tree first."""
        freed = 0
        for __, consumer in sorted(self._consumers, key=lambda pair: pair[0]):
            if freed >= needed:
                break
            freed += consumer.relinquish_memory()
        return freed

    def headroom_pages(self):
        """Pages available before the soft limit."""
        return max(0, self.soft_limit_pages - self.used_pages)


class MemoryGovernor:
    """Derives the quotas from the pool state and concurrency level."""

    #: Bounds for the adaptive multiprogramming level (Section 6 future
    #: work: "dynamically changing the server's multiprogramming level in
    #: response to database workload").
    MIN_MPL = 1
    MAX_MPL = 64

    #: Completed tasks per adaptation decision.
    ADAPT_WINDOW = 16

    #: Lock waits per completed task above which the window counts as
    #: lock-pressured: deep lock queues mean admitted statements are
    #: serialising on rows, so more of them only lengthens the queues.
    LOCK_WAIT_RATE_LIMIT = 0.5

    #: Operator spill events per completed task above which the window
    #: counts as spill-pressured: statements are overflowing their work
    #: memory onto the temp file, so each should get a larger share.
    SPILL_RATE_LIMIT = 0.5

    #: Mean commits per group-commit flush at or above which the window's
    #: commit traffic counts as bursty: transactions are queueing behind
    #: the log, and more concurrent statements drain the queue better.
    COMMIT_BURST_BATCH = 4.0

    def __init__(self, pool, max_pool_pages, multiprogramming_level=4,
                 adaptive=False, metrics=None, lock_stats_fn=None):
        self.pool = pool
        self.max_pool_pages = int(max_pool_pages)
        self.multiprogramming_level = max(1, int(multiprogramming_level))
        self.adaptive = adaptive
        #: ``fn() -> (cumulative lock waits, cumulative deadlocks)``; the
        #: server wires the lock manager's counters.
        self.lock_stats_fn = lock_stats_fn
        self._lock_waits_seen = 0
        self._lock_deadlocks_seen = 0
        # Delta state over the shared metrics registry: operator spills
        # (``exec.spill_events``) and group-commit traffic
        # (``wal.group_commit.batch_size`` count/sum).
        self._spill_events_seen = 0
        self._wal_commits_seen = 0
        self._wal_flushes_seen = 0
        self._tasks = {}
        self._next_task_id = 0
        self._window_tasks = 0
        self._window_soft_hits = 0
        self._window_peak_concurrency = 0
        self.mpl_changes = []  # [(completed tasks, old level, new level)]
        #: Statement admission gate consumed by the workload scheduler.
        self.admission = AdmissionQueue(self, metrics=metrics)
        self._metrics = metrics
        if metrics is not None:
            self._m_tasks = metrics.counter("memgov.tasks_completed")
            self._m_soft_hits = metrics.counter("memgov.soft_limit_hits")
            self._m_mpl_changes = metrics.counter("memgov.mpl_changes")
            metrics.register_probe(
                "memgov.active_tasks", lambda: len(self._tasks)
            )
            metrics.register_probe(
                "memgov.multiprogramming_level",
                lambda: self.multiprogramming_level,
            )
            metrics.register_probe(
                "memgov.soft_limit_pages", self.soft_limit_pages
            )
            metrics.register_probe(
                "memgov.hard_limit_pages", self.hard_limit_pages
            )

    # -- task lifecycle ------------------------------------------------------ #

    def begin_task(self):
        task = Task(self, self._next_task_id)
        self._tasks[self._next_task_id] = task
        self._next_task_id += 1
        self._window_peak_concurrency = max(
            self._window_peak_concurrency, len(self._tasks)
        )
        return task

    def end_task(self, task):
        self._tasks.pop(task.task_id, None)
        self._window_tasks += 1
        self._window_soft_hits += task.soft_limit_hits
        if self._metrics is not None:
            self._m_tasks.inc()
            if task.soft_limit_hits:
                self._m_soft_hits.inc(task.soft_limit_hits)
        if self.adaptive and self._window_tasks >= self.ADAPT_WINDOW:
            self.adapt_multiprogramming_level()

    def adapt_multiprogramming_level(self):
        """One adaptation decision over the completed-task window.

        Frequent soft-limit hits or operator spills mean statements are
        starved for work memory: lower the multiprogramming level so each
        gets a larger share of the pool.  Deep lock queues or deadlocks
        over the window mean admitted statements are serialising on rows —
        admitting more only lengthens the queues, so the level falls too.
        Absent any of that pressure, the level rises when concurrency
        exceeded it (parallelism left on the table) or when group-commit
        flushes carried bursty batches (transactions queueing behind the
        log; more concurrent statements drain the queue).
        """
        if self._window_tasks == 0:
            return self.multiprogramming_level
        hit_rate = self._window_soft_hits / self._window_tasks
        lock_waits, lock_deadlocks = self._window_lock_pressure()
        wait_rate = lock_waits / self._window_tasks
        spill_rate = self._window_spill_events() / self._window_tasks
        pressured = (
            lock_deadlocks > 0 or wait_rate > self.LOCK_WAIT_RATE_LIMIT
        )
        old_level = self.multiprogramming_level
        if (
            hit_rate > 0.5
            or spill_rate > self.SPILL_RATE_LIMIT
            or pressured
        ):
            self.multiprogramming_level = max(self.MIN_MPL, old_level // 2)
        elif (
            hit_rate < 0.05
            and (
                self._window_peak_concurrency > old_level
                or self._window_commit_burst() >= self.COMMIT_BURST_BATCH
            )
        ):
            self.multiprogramming_level = min(self.MAX_MPL, old_level * 2)
        if self.multiprogramming_level != old_level:
            self.mpl_changes.append(
                (self._window_tasks, old_level, self.multiprogramming_level)
            )
            if self._metrics is not None:
                self._m_mpl_changes.inc()
        self._window_tasks = 0
        self._window_soft_hits = 0
        self._window_peak_concurrency = len(self._tasks)
        return self.multiprogramming_level

    def _window_lock_pressure(self):
        """Lock waits and deadlocks accrued since the last adaptation
        (deltas over the cumulative lock-manager counters)."""
        if self.lock_stats_fn is None:
            return 0, 0
        waits, deadlocks = self.lock_stats_fn()
        window = (
            waits - self._lock_waits_seen,
            deadlocks - self._lock_deadlocks_seen,
        )
        self._lock_waits_seen = waits
        self._lock_deadlocks_seen = deadlocks
        return window

    def _window_spill_events(self):
        """Operator spill events accrued since the last adaptation (delta
        over the executor's ``exec.spill_events`` counter)."""
        spills = self._metric_value("exec.spill_events")
        window = spills - self._spill_events_seen
        self._spill_events_seen = spills
        return window

    def _window_commit_burst(self):
        """Mean commits per group-commit flush over the window (deltas
        over the ``wal.group_commit.batch_size`` histogram)."""
        stats = self._metric_value("wal.group_commit.batch_size")
        if not isinstance(stats, dict):
            return 0.0
        flushes = stats.get("count", 0)
        commits = stats.get("sum", 0)
        window_flushes = flushes - self._wal_flushes_seen
        window_commits = commits - self._wal_commits_seen
        self._wal_flushes_seen = flushes
        self._wal_commits_seen = commits
        if window_flushes <= 0:
            return 0.0
        return window_commits / window_flushes

    def _metric_value(self, name, default=0):
        """A registry value, or ``default`` when the metric (or the whole
        registry) is absent — rig setups wire neither."""
        if self._metrics is None:
            return default
        try:
            return self._metrics.value(name)
        except KeyError:
            return default

    @property
    def active_requests(self):
        return max(1, len(self._tasks))

    # -- the quota formulas (paper eqs. 4 and 5) ------------------------------ #

    def hard_limit_pages(self):
        return max(1, int(0.75 * self.max_pool_pages / self.active_requests))

    def soft_limit_pages(self):
        return max(1, int(self.pool.capacity_pages / self.multiprogramming_level))

    # -- introspection --------------------------------------------------------- #

    def total_used_pages(self):
        return sum(task.used_pages for task in self._tasks.values())
