"""Scan and join operators."""

from repro.common.errors import ExecutionError
from repro.exec.batch import Batch, BatchBuilder, rows_to_batches
from repro.exec.expr import (
    evaluate,
    evaluate_batch,
    evaluate_predicate,
    evaluate_predicate_batch,
)
from repro.exec.spill import (
    SpillFile,
    SpillableBuffer,
    WorkMemory,
    env_row_bytes,
)
from repro.optimizer.costmodel import (
    CPU_HASH_BUILD_BATCH_US,
    CPU_HASH_BUILD_US,
    CPU_HASH_PROBE_BATCH_US,
    CPU_HASH_PROBE_US,
    CPU_PREDICATE_BATCH_US,
    CPU_PREDICATE_US,
    CPU_ROW_BATCH_US,
    CPU_ROW_US,
    INDEX_NODE_US,
)
from repro.sql import ast
from repro.sql.binder import Quantifier

#: Hash-join partitions ("buckets are divided uniformly into a small,
#: fixed, number of partitions").
HASH_PARTITIONS = 8


class Operator:
    """Base class: operators yield environment dicts (or tuples for
    Project and above).

    Two protocols coexist during the batch migration:

    * ``execute(ctx)`` — the row protocol, one environment per ``next()``;
    * ``execute_batches(ctx)`` — the batch protocol, column-major
      :class:`~repro.exec.batch.Batch` slabs per ``next()``.

    Migrated operators implement both natively; everyone else inherits
    the row shim below, which adapts the row stream at the boundary.  An
    operator must never implement ``execute_batches`` *without* a row
    ``execute`` (lint rule SIM005): the cursor and snapshot-resolution
    surfaces stay row-at-a-time.
    """

    def execute(self, ctx):
        raise NotImplementedError

    def execute_batches(self, ctx):
        """Batch protocol; the default adapts the row protocol (RowShim)."""
        return rows_to_batches(self.execute(ctx), ctx.batch_rows)

    # memory-governor consumer protocol (overridden by memory users)
    memory_pages = 0

    def relinquish_memory(self):
        return 0

    # observability protocol (read by the EXPLAIN ANALYZE instrumentation)

    def spill_event_count(self):
        """Cumulative temp-file spill events this operator has taken."""
        return 0

    def adaptive_event_count(self):
        """Cumulative adaptive fallbacks/strategy switches taken."""
        return 0


class SingleRowOp(Operator):
    """One empty environment (FROM-less SELECT)."""

    def execute(self, ctx):
        yield {}


class SeqScanOp(Operator):
    """Sequential scan with pushed-down filters and statistics feedback."""

    def __init__(self, quantifier, conjuncts):
        self.quantifier = quantifier
        self.conjuncts = conjuncts

    def execute(self, ctx):
        storage = self.quantifier.schema.storage
        qid = self.quantifier.id
        counters = [[0, 0] for __ in self.conjuncts]  # [scanned, matched]
        completed = False
        n_conjuncts = len(self.conjuncts)
        try:
            for __, row in storage.scan(
                snapshot=ctx.snapshot_lsn, snapshot_txn=ctx.snapshot_txn
            ):
                ctx.charge(CPU_ROW_US + n_conjuncts * CPU_PREDICATE_US)
                env = {qid: row}
                keep = True
                for index, conjunct in enumerate(self.conjuncts):
                    counters[index][0] += 1
                    if evaluate_predicate(conjunct.expr, env, ctx.params):
                        counters[index][1] += 1
                    else:
                        keep = False
                        break
                if keep:
                    yield env
            completed = True
        finally:
            if completed and ctx.feedback_enabled:
                self._send_feedback(ctx, storage, counters)

    def execute_batches(self, ctx):
        """Vectorized scan: pack column-major slabs, filter whole columns.

        Identical semantics to :meth:`execute` — same predicate
        conditioning for the feedback counters (conjunct *i* sees only
        rows surviving conjuncts < *i*), same completion gate — but the
        per-row dict build and expression walk are amortized over
        ``ctx.batch_rows`` rows.
        """
        storage = self.quantifier.schema.storage
        qid = self.quantifier.id
        counters = [[0, 0] for __ in self.conjuncts]  # [scanned, matched]
        completed = False
        batch_rows = ctx.batch_rows
        try:
            pending = []
            for __, row in storage.scan(
                snapshot=ctx.snapshot_lsn, snapshot_txn=ctx.snapshot_txn
            ):
                pending.append(row)
                if len(pending) >= batch_rows:
                    batch = self._filter_batch(ctx, qid, pending, counters)
                    pending = []
                    if batch.count:
                        yield batch
            if pending:
                batch = self._filter_batch(ctx, qid, pending, counters)
                if batch.count:
                    yield batch
            completed = True
        finally:
            if completed and ctx.feedback_enabled:
                self._send_feedback(ctx, storage, counters)

    def _filter_batch(self, ctx, qid, rows, counters):
        n_conjuncts = len(self.conjuncts)
        count = len(rows)
        ctx.charge(
            count * (CPU_ROW_BATCH_US + n_conjuncts * CPU_PREDICATE_BATCH_US)
        )
        width = len(rows[0])
        columns = [[row[i] for row in rows] for i in range(width)]
        batch = Batch.from_columns(((qid, 0, width),), columns, count)
        for index, conjunct in enumerate(self.conjuncts):
            if batch.count == 0:
                break
            counters[index][0] += batch.count
            mask = evaluate_predicate_batch(conjunct.expr, batch, ctx.params)
            matched = sum(1 for keep in mask if keep)
            counters[index][1] += matched
            if matched != batch.count:
                batch = batch.take(mask)
        return batch

    def _send_feedback(self, ctx, storage, counters):
        table_rows = storage.row_count
        table_name = self.quantifier.schema.name
        for (scanned, matched), conjunct in zip(counters, self.conjuncts):
            if scanned == 0:
                continue
            if scanned != table_rows:
                # The conjunct was only evaluated on rows surviving earlier
                # filters: a conditioned sample that would corrupt the
                # histogram.  This is the "almost" in the paper's
                # "(almost) any predicate ... can lead to an update".
                continue
            classified = classify_predicate(
                conjunct.expr, self.quantifier.id, ctx.params
            )
            if classified is None:
                continue
            kind, column_index, payload = classified
            if kind == "eq":
                ctx.stats.feedback_eq(
                    table_name, column_index, payload, matched, scanned,
                    table_rows,
                )
            elif kind == "range":
                low, high, low_inc, high_inc = payload
                ctx.stats.feedback_range(
                    table_name, column_index, low, high, matched, scanned,
                    table_rows, low_inc, high_inc,
                )
            elif kind == "null":
                ctx.stats.feedback_null(
                    table_name, column_index, matched, scanned, table_rows
                )
            elif kind == "like":
                ctx.stats.feedback_like(
                    table_name, column_index, payload, matched, scanned,
                    table_rows,
                )


class IndexScanOp(Operator):
    """Sargable B+-tree range scan plus residual filters."""

    def __init__(self, quantifier, index_schema, sarg, residual_conjuncts):
        self.quantifier = quantifier
        self.index_schema = index_schema
        self.sarg = sarg
        self.residual = residual_conjuncts
        self.snapshot_fallbacks = 0

    def adaptive_event_count(self):
        return self.snapshot_fallbacks

    def execute(self, ctx):
        btree = self.index_schema.btree
        storage = self.quantifier.schema.storage
        qid = self.quantifier.id
        snapshot = ctx.snapshot_lsn
        if snapshot is not None and self._must_fall_back(ctx, snapshot):
            # Some key this scan might need was *removed* from the B-tree
            # after this snapshot was taken (or the whole tree postdates
            # it) — no version chain can resurrect a key the scan never
            # visits, so the tree cannot enumerate this snapshot.  Fall
            # back to the exact heap path, keeping the sarg as a filter.
            self.snapshot_fallbacks += 1
            yield from self._snapshot_heap_scan(ctx, storage, qid)
            return
        if "eq" in self.sarg:
            values = tuple(
                evaluate(expr, {}, ctx.params) for expr in self.sarg["eq"]
            )
            entries = btree.prefix_scan(values)
        else:
            low, high, low_inc, high_inc = self._bounds(ctx)
            entries = btree.range_scan(low, high, low_inc, high_inc)
        bounds = self._bounds(ctx) if snapshot is not None else None
        for __, row_id in entries:
            ctx.charge(INDEX_NODE_US / 4.0 + CPU_ROW_US)
            if snapshot is None:
                row = storage.get(row_id)
            else:
                # Snapshot read: the index reflects the *latest* keys, so
                # the resolved image may be older than the entry that led
                # here — re-verify the sarg against the image itself and
                # skip rows whose slot was not visible at the snapshot.
                row = storage.get_visible(row_id, snapshot, ctx.snapshot_txn)
                if row is None or not self._key_in_bounds(row, bounds):
                    continue
            env = {qid: row}
            if all(
                evaluate_predicate(c.expr, env, ctx.params) for c in self.residual
            ):
                yield env

    def _snapshot_heap_scan(self, ctx, storage, qid):
        bounds = self._bounds(ctx)
        for __, row in storage.scan(
            snapshot=ctx.snapshot_lsn, snapshot_txn=ctx.snapshot_txn
        ):
            ctx.charge(CPU_ROW_US)
            if not self._key_in_bounds(row, bounds):
                continue
            env = {qid: row}
            if all(
                evaluate_predicate(c.expr, env, ctx.params)
                for c in self.residual
            ):
                yield env

    def _must_fall_back(self, ctx, snapshot):
        """Can the B-tree enumerate this snapshot?  Only *removals* blind
        an index scan (inserted-after entries are filtered by the
        visibility re-check below), so the tree is trusted unless a key
        inside this scan's bounds was deleted after the snapshot — or the
        whole tree postdates it (rebuild), or it is not maintained at all
        (replication standby)."""
        schema = self.index_schema
        if getattr(schema, "always_fallback", False):
            return True
        if getattr(schema, "rebuild_lsn", 0) > snapshot:
            return True
        stamps = getattr(schema, "delete_stamps", None)
        if not stamps or max(stamps.values()) <= snapshot:
            return False
        bounds = self._bounds(ctx)
        return any(
            lsn > snapshot and self._key_tuple_in_bounds(key, bounds)
            for key, lsn in stamps.items()
        )

    def _key_in_bounds(self, row, bounds):
        table = self.quantifier.schema
        key = tuple(
            row[table.column_index(c)]
            for c in self.index_schema.column_names
        )
        return self._key_tuple_in_bounds(key, bounds)

    @staticmethod
    def _key_tuple_in_bounds(key, bounds):
        low, high, low_inc, high_inc = bounds
        if low is not None or high is not None:
            # SQL comparison with NULL is unknown: a NULL key (or a NULL
            # bound, e.g. ``col = NULL``) can never satisfy a sarg.
            if any(value is None for value in key):
                return False
        if low is not None:
            if any(value is None for value in low):
                return False
            prefix = key[: len(low)]
            if prefix < low or (prefix == low and not low_inc):
                return False
        if high is not None:
            if any(value is None for value in high):
                return False
            prefix = key[: len(high)]
            if prefix > high or (prefix == high and not high_inc):
                return False
        return True

    def _bounds(self, ctx):
        if "eq" in self.sarg:
            values = tuple(
                evaluate(expr, {}, ctx.params) for expr in self.sarg["eq"]
            )
            return values, values, True, True
        low = high = None
        low_inc = self.sarg.get("low_inclusive", True)
        high_inc = self.sarg.get("high_inclusive", True)
        if "low" in self.sarg:
            low = (evaluate(self.sarg["low"], {}, ctx.params),)
        if "high" in self.sarg:
            high = (evaluate(self.sarg["high"], {}, ctx.params),)
        return low, high, low_inc, high_inc


class DerivedScanOp(Operator):
    """Evaluates a sub-plan and exposes its tuples as a quantifier."""

    def __init__(self, quantifier, sub_operator, conjuncts):
        self.quantifier = quantifier
        self.sub_operator = sub_operator
        self.conjuncts = conjuncts

    def execute(self, ctx):
        qid = self.quantifier.id
        for row in self.sub_operator.execute(ctx):
            ctx.charge(CPU_ROW_US)
            env = {qid: tuple(row)}
            if all(
                evaluate_predicate(c.expr, env, ctx.params) for c in self.conjuncts
            ):
                yield env


class ProcedureScanOp(Operator):
    """A stored procedure in FROM: run its body, record its statistics."""

    def __init__(self, quantifier, body_operator):
        self.quantifier = quantifier
        self.body_operator = body_operator

    def execute(self, ctx):
        procedure = self.quantifier.procedure
        args = [
            evaluate(arg, {}, ctx.params)
            for arg in (self.quantifier.procedure_args or [])
        ]
        body_params = dict(zip(procedure.parameters, args))
        started = ctx.clock.now
        cardinality = 0
        qid = self.quantifier.id
        body_ctx = ctx.with_params(body_params)
        for row in self.body_operator.execute(body_ctx):
            cardinality += 1
            ctx.charge(CPU_ROW_US)
            yield {qid: tuple(row)}
        if ctx.stats is not None:
            ctx.stats.procedure_stats(procedure.name).record(
                tuple(args), ctx.clock.now - started, cardinality
            )


class RecursiveRefScanOp(Operator):
    """Scan of the recursive CTE's working table (set by the executor)."""

    def __init__(self, quantifier):
        self.quantifier = quantifier

    def execute(self, ctx):
        rows = ctx.cte_tables.get(self.quantifier.cte_name)
        if rows is None:
            raise ExecutionError(
                "recursive reference %r outside RECURSIVE UNION"
                % (self.quantifier.cte_name,)
            )
        qid = self.quantifier.id
        for row in rows:
            ctx.charge(CPU_ROW_US)
            yield {qid: tuple(row)}


class FilterOp(Operator):
    def __init__(self, child, conjuncts):
        self.child = child
        self.conjuncts = conjuncts

    def execute(self, ctx):
        for env in self.child.execute(ctx):
            ctx.charge(len(self.conjuncts) * CPU_PREDICATE_US)
            if all(
                evaluate_predicate(c.expr, env, ctx.params)
                for c in self.conjuncts
            ):
                yield env

    def execute_batches(self, ctx):
        """Whole-column predicate evaluation; conjunct *i* only sees rows
        surviving conjuncts < *i* (same evaluation set as the row path's
        short-circuiting ``all``)."""
        n_conjuncts = len(self.conjuncts)
        for batch in self.child.execute_batches(ctx):
            ctx.charge(batch.count * n_conjuncts * CPU_PREDICATE_BATCH_US)
            for conjunct in self.conjuncts:
                if batch.count == 0:
                    break
                mask = evaluate_predicate_batch(
                    conjunct.expr, batch, ctx.params
                )
                if not all(mask):
                    batch = batch.take(mask)
            if batch.count:
                yield batch


class NLJoinOp(Operator):
    """Nested loops; the inner input is materialized (spillable)."""

    def __init__(self, left, right, join_type, conjuncts,
                 right_quantifiers):
        self.left = left
        self.right = right
        self.join_type = join_type
        self.conjuncts = conjuncts
        #: Quantifiers supplied by the right child (for NULL extension).
        self.right_quantifiers = right_quantifiers
        #: Whether the materialized inner input overflowed to the temp file.
        self.inner_spilled = False

    def spill_event_count(self):
        return 1 if self.inner_spilled else 0

    def execute(self, ctx):
        inner = SpillableBuffer(ctx)
        try:
            for env in self.right.execute(ctx):
                inner.append(env)
            inner.seal()
            self.inner_spilled = inner.spilled
            for left_env in self.left.execute(ctx):
                matched = False
                for right_env in inner.scan():
                    ctx.charge(
                        CPU_ROW_US + len(self.conjuncts) * CPU_PREDICATE_US
                    )
                    merged = {**left_env, **right_env}
                    if all(
                        evaluate_predicate(c.expr, merged, ctx.params)
                        for c in self.conjuncts
                    ):
                        matched = True
                        if self.join_type == Quantifier.SEMI:
                            yield left_env
                            break
                        if self.join_type == Quantifier.ANTI:
                            break
                        yield merged
                if not matched:
                    if self.join_type == Quantifier.ANTI:
                        yield left_env
                    elif self.join_type == Quantifier.LEFT:
                        yield null_extend(left_env, self.right_quantifiers)
        finally:
            inner.free()


class IndexNLJoinOp(Operator):
    """Probe the inner table's index once per outer row."""

    def __init__(self, left, quantifier, index_schema, probe_keys,
                 join_type, conjuncts, local_conjuncts):
        self.left = left
        self.quantifier = quantifier
        self.index_schema = index_schema
        self.probe_keys = probe_keys
        self.join_type = join_type
        self.conjuncts = conjuncts
        self.local_conjuncts = local_conjuncts

    def execute(self, ctx):
        for left_env in self.left.execute(ctx):
            yield from self.probe(ctx, left_env)

    def probe(self, ctx, left_env):
        """Probe for one outer environment (shared with the hash join's
        alternate-strategy switch)."""
        btree = self.index_schema.btree
        storage = self.quantifier.schema.storage
        qid = self.quantifier.id
        values = tuple(
            evaluate(expr, left_env, ctx.params) for expr in self.probe_keys
        )
        ctx.charge(btree.height * INDEX_NODE_US)
        matched = False
        if all(value is not None for value in values):
            for __, row_id in btree.prefix_scan(values):
                ctx.charge(CPU_ROW_US)
                row = storage.get(row_id)
                merged = {**left_env, qid: row}
                keep = all(
                    evaluate_predicate(c.expr, merged, ctx.params)
                    for c in self.local_conjuncts
                ) and all(
                    evaluate_predicate(c.expr, merged, ctx.params)
                    for c in self.conjuncts
                )
                if not keep:
                    continue
                matched = True
                if self.join_type == Quantifier.SEMI:
                    yield left_env
                    return
                if self.join_type == Quantifier.ANTI:
                    break
                yield merged
        if not matched:
            if self.join_type == Quantifier.ANTI:
                yield left_env
            elif self.join_type == Quantifier.LEFT:
                yield null_extend(left_env, [self.quantifier])


class HashJoinOp(Operator):
    """Partitioned hash join with the paper's adaptive behaviours.

    * memory is accounted against the statement's task; when the soft
      limit is reached, the **partition with the most rows is evicted** to
      the temporary file ("by selecting the partition with the most rows,
      the governor frees up the most memory for future processing");
    * after the build completes, if the optimizer attached an
      **index-nested-loops alternate** and the true build cardinality is
      below the crossover threshold, execution switches strategies and the
      probe side is never scanned.
    """

    def __init__(self, left, right, join_type, conjuncts, build_keys,
                 probe_keys, right_quantifiers, alternate=None,
                 alternate_threshold=None):
        self.left = left
        self.right = right
        self.join_type = join_type
        self.conjuncts = conjuncts
        self.build_keys = build_keys
        self.probe_keys = probe_keys
        self.right_quantifiers = right_quantifiers
        self.alternate = alternate
        self.alternate_threshold = alternate_threshold
        self.residual = [c for c in conjuncts if c.equi is None]
        # observability
        self.partitions_evicted = 0
        self.switched_to_alternate = False
        self.build_row_count = 0
        self.probe_rows_spilled = 0
        self._memory = None
        self._partitions = None
        self._spills = None
        self._row_bytes = 64

    # -- memory-governor consumer protocol ------------------------------- #

    @property
    def memory_pages(self):
        return self._memory.pages_held if self._memory is not None else 0

    # -- observability protocol ------------------------------------------- #

    def spill_event_count(self):
        return self.partitions_evicted

    def adaptive_event_count(self):
        return 1 if self.switched_to_alternate else 0

    def relinquish_memory(self):
        """Evict the largest in-memory partition to the temp file."""
        if not self._partitions:
            return 0
        candidates = [
            index
            for index in range(HASH_PARTITIONS)
            if self._partitions[index] is not None and self._partitions[index]
        ]
        if not candidates:
            return 0
        largest = max(
            candidates,
            key=lambda index: sum(
                len(rows) for rows in self._partitions[index].values()
            ),
        )
        return self._evict_partition(largest)

    def _evict_partition(self, index):
        partition = self._partitions[index]
        spill = SpillFile(
            self._ctx.temp_file, self._row_bytes, self._ctx.pool.page_size,
            fault_plan=getattr(self._ctx, "fault_plan", None),
            yield_hook=getattr(self._ctx, "yield_hook", None),
        )
        evicted_bytes = 0
        for key, rows in partition.items():
            for env in rows:
                spill.append((key, env))
                evicted_bytes += self._row_bytes
        spill.finish_writing()
        self._spills[index] = spill
        self._partitions[index] = None
        before = self._memory.pages_held
        self._memory.remove(evicted_bytes)
        self.partitions_evicted += 1
        return before - self._memory.pages_held

    # -- execution ---------------------------------------------------------- #

    def execute(self, ctx):
        self._ctx = ctx
        self._memory = WorkMemory(ctx.task, ctx.pool.page_size)
        self._partitions = [dict() for __ in range(HASH_PARTITIONS)]
        self._spills = [None] * HASH_PARTITIONS
        ctx.task.register_consumer(self, depth=getattr(self, "depth", 1))
        try:
            self._build(ctx)
            semi_switchable = (
                self.join_type == Quantifier.SEMI and not self.residual
            )
            if (
                self.alternate is not None
                and self.alternate_threshold is not None
                and self.build_row_count <= self.alternate_threshold
                and (self.join_type == Quantifier.INNER or semi_switchable)
            ):
                self.switched_to_alternate = True
                ctx.note("hash_join_switched")
                yield from self._execute_alternate(ctx)
                return
            yield from self._probe(ctx)
        finally:
            ctx.task.unregister_consumer(self)
            self._memory.release_all()
            for spill in self._spills:
                if spill is not None:
                    spill.free()

    def execute_batches(self, ctx):
        """Batch protocol: vectorized key evaluation, batched emission.

        Per-row memory accounting, partition placement, eviction and the
        alternate-strategy switch are byte-for-byte the row path's — only
        key evaluation (whole columns) and output transport (batches) are
        vectorized, so spill and adaptive decisions are identical across
        modes.
        """
        self._ctx = ctx
        self._memory = WorkMemory(ctx.task, ctx.pool.page_size)
        self._partitions = [dict() for __ in range(HASH_PARTITIONS)]
        self._spills = [None] * HASH_PARTITIONS
        ctx.task.register_consumer(self, depth=getattr(self, "depth", 1))
        try:
            self._build_batches(ctx)
            semi_switchable = (
                self.join_type == Quantifier.SEMI and not self.residual
            )
            if (
                self.alternate is not None
                and self.alternate_threshold is not None
                and self.build_row_count <= self.alternate_threshold
                and (self.join_type == Quantifier.INNER or semi_switchable)
            ):
                self.switched_to_alternate = True
                ctx.note("hash_join_switched")
                # The alternate probes row-at-a-time (index NL is
                # unmigrated); adapt its output at the boundary.
                yield from rows_to_batches(
                    self._execute_alternate(ctx), ctx.batch_rows
                )
                return
            yield from self._probe_batches(ctx)
        finally:
            ctx.task.unregister_consumer(self)
            self._memory.release_all()
            for spill in self._spills:
                if spill is not None:
                    spill.free()

    def _build(self, ctx):
        for env in self.right.execute(ctx):
            ctx.charge(CPU_HASH_BUILD_US)
            self.build_row_count += 1
            self._row_bytes = max(self._row_bytes, env_row_bytes(env))
            key = tuple(
                evaluate(expr, env, ctx.params) for expr in self.build_keys
            )
            index = hash(key) % HASH_PARTITIONS
            if self._partitions[index] is None:
                self._spills[index].append((key, env))
                continue
            self._memory.add(self._row_bytes)
            # The allocation may have reclaimed (evicted) this very
            # partition; rows then go straight to its spill file.
            partition = self._partitions[index]
            if partition is None:
                self._spills[index].append((key, env))
            else:
                partition.setdefault(key, []).append(env)

    def _build_batches(self, ctx):
        for batch in self.right.execute_batches(ctx):
            ctx.charge(batch.count * CPU_HASH_BUILD_BATCH_US)
            key_columns = [
                evaluate_batch(expr, batch, ctx.params)
                for expr in self.build_keys
            ]
            for position in range(batch.count):
                self.build_row_count += 1
                env = batch.env_at(position)
                self._row_bytes = max(self._row_bytes, env_row_bytes(env))
                key = tuple(column[position] for column in key_columns)
                index = hash(key) % HASH_PARTITIONS
                if self._partitions[index] is None:
                    self._spills[index].append((key, env))
                    continue
                self._memory.add(self._row_bytes)
                # Same re-check as the row path: the allocation may have
                # evicted this very partition.
                partition = self._partitions[index]
                if partition is None:
                    self._spills[index].append((key, env))
                else:
                    partition.setdefault(key, []).append(env)

    def _execute_alternate(self, ctx):
        """The index-NL switch: build rows become the outer input.

        For a **semi** join the build rows are deduplicated by key first:
        a semi join must emit each probe-side row at most once, and each
        probe row joins exactly one key value, so probing once per
        *distinct* key preserves the semantics (the alternate probes with
        inner-join emission, so the probe-side rows flow out).
        """
        if self.join_type == Quantifier.SEMI:
            seen_keys = set()
            for key, env in self._all_build_rows():
                if key in seen_keys:
                    continue
                seen_keys.add(key)
                yield from self.alternate.probe(ctx, env)
        else:
            for __, env in self._all_build_rows():
                yield from self.alternate.probe(ctx, env)

    def _all_build_rows(self):
        for partition in self._partitions:
            if partition is None:
                continue
            for key, rows in partition.items():
                for env in rows:
                    yield key, env
        for spill in self._spills:
            if spill is not None:
                yield from spill.read_all()

    def _probe(self, ctx):
        probe_spills = [None] * HASH_PARTITIONS
        for left_env in self.left.execute(ctx):
            ctx.charge(CPU_HASH_PROBE_US)
            key = tuple(
                evaluate(expr, left_env, ctx.params) for expr in self.probe_keys
            )
            index = hash(key) % HASH_PARTITIONS
            if self._partitions[index] is None:
                if probe_spills[index] is None:
                    probe_spills[index] = SpillFile(
                        ctx.temp_file, self._row_bytes, ctx.pool.page_size,
                        fault_plan=getattr(ctx, "fault_plan", None),
                        yield_hook=getattr(ctx, "yield_hook", None),
                    )
                probe_spills[index].append((key, left_env))
                self.probe_rows_spilled += 1
                continue
            yield from self._emit_matches(
                ctx, left_env, key, self._partitions[index]
            )
        # Spilled partitions: reload the build side and re-probe.
        for index in range(HASH_PARTITIONS):
            probe_spill = probe_spills[index]
            if probe_spill is None:
                if self._spills[index] is not None:
                    self._spills[index].free()
                continue
            build_table = {}
            if self._spills[index] is not None:
                for key, env in self._spills[index].read_all():
                    build_table.setdefault(key, []).append(env)
                self._spills[index].free()
            for key, left_env in probe_spill.read_all():
                ctx.charge(CPU_HASH_PROBE_US)
                yield from self._emit_matches(ctx, left_env, key, build_table)
            probe_spill.free()

    def _probe_batches(self, ctx):
        """Batch probe: vectorized probe-key columns, emission re-packed
        into batches; spill routing matches the row path row-for-row."""
        probe_spills = [None] * HASH_PARTITIONS
        builder = BatchBuilder(ctx.batch_rows)
        for batch in self.left.execute_batches(ctx):
            ctx.charge(batch.count * CPU_HASH_PROBE_BATCH_US)
            key_columns = [
                evaluate_batch(expr, batch, ctx.params)
                for expr in self.probe_keys
            ]
            for position in range(batch.count):
                key = tuple(column[position] for column in key_columns)
                index = hash(key) % HASH_PARTITIONS
                if self._partitions[index] is None:
                    if probe_spills[index] is None:
                        probe_spills[index] = SpillFile(
                            ctx.temp_file, self._row_bytes,
                            ctx.pool.page_size,
                            fault_plan=getattr(ctx, "fault_plan", None),
                            yield_hook=getattr(ctx, "yield_hook", None),
                        )
                    probe_spills[index].append(
                        (key, batch.env_at(position))
                    )
                    self.probe_rows_spilled += 1
                    continue
                for out_env in self._emit_matches(
                    ctx, batch.env_at(position), key,
                    self._partitions[index], row_cost=CPU_ROW_BATCH_US,
                ):
                    done = builder.add(out_env)
                    if done is not None:
                        yield done
        # Spilled partitions: reload the build side and re-probe.  This
        # leg stays row-at-a-time (spill files read back rows), so it
        # charges the unamortized row constants.
        for index in range(HASH_PARTITIONS):
            probe_spill = probe_spills[index]
            if probe_spill is None:
                if self._spills[index] is not None:
                    self._spills[index].free()
                continue
            build_table = {}
            if self._spills[index] is not None:
                for key, env in self._spills[index].read_all():
                    build_table.setdefault(key, []).append(env)
                self._spills[index].free()
            for key, left_env in probe_spill.read_all():
                ctx.charge(CPU_HASH_PROBE_US)
                for out_env in self._emit_matches(
                    ctx, left_env, key, build_table
                ):
                    done = builder.add(out_env)
                    if done is not None:
                        yield done
            probe_spill.free()
        tail = builder.finish()
        if tail is not None:
            yield tail

    def _emit_matches(self, ctx, left_env, key, table, row_cost=CPU_ROW_US):
        rows = table.get(key)
        matched = False
        if rows and all(value is not None for value in key):
            for right_env in rows:
                merged = {**left_env, **right_env}
                if self.residual and not all(
                    evaluate_predicate(c.expr, merged, ctx.params)
                    for c in self.residual
                ):
                    continue
                matched = True
                if self.join_type == Quantifier.SEMI:
                    yield left_env
                    return
                if self.join_type == Quantifier.ANTI:
                    break
                ctx.charge(row_cost)
                yield merged
        if not matched:
            if self.join_type == Quantifier.ANTI:
                yield left_env
            elif self.join_type == Quantifier.LEFT:
                yield null_extend(left_env, self.right_quantifiers)


# --------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------- #

def null_extend(env, quantifiers):
    """Left-outer NULL extension for the null-supplied side."""
    extended = dict(env)
    for quantifier in quantifiers:
        extended[quantifier.id] = (None,) * max(1, len(quantifier.columns))
    return extended


def classify_predicate(expr, qid, params):
    """Map a conjunct onto a histogram-updatable shape, or None.

    Returns ('eq', column_index, value) / ('range', ci, (low, high, li, hi))
    / ('null', ci, negated) / ('like', ci, pattern).
    """
    if isinstance(expr, ast.BinaryOp) and expr.op in ("=", "<", "<=", ">", ">="):
        for column_side, value_side, flipped in (
            (expr.left, expr.right, False), (expr.right, expr.left, True)
        ):
            if not (
                isinstance(column_side, ast.ColumnRef)
                and column_side.bound
                and column_side.quantifier_id == qid
            ):
                continue
            value = _static_value(value_side, params)
            if value is _NO_VALUE or value is None:
                return None
            op = expr.op
            if flipped:
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            ci = column_side.column_index
            if op == "=":
                return ("eq", ci, value)
            if op == "<":
                return ("range", ci, (None, value, True, False))
            if op == "<=":
                return ("range", ci, (None, value, True, True))
            if op == ">":
                return ("range", ci, (value, None, False, True))
            return ("range", ci, (value, None, True, True))
    if isinstance(expr, ast.Between) and not expr.negated:
        operand = expr.operand
        if (
            isinstance(operand, ast.ColumnRef)
            and operand.quantifier_id == qid
        ):
            low = _static_value(expr.low, params)
            high = _static_value(expr.high, params)
            if low not in (_NO_VALUE, None) and high not in (_NO_VALUE, None):
                return ("range", operand.column_index, (low, high, True, True))
    if isinstance(expr, ast.IsNull) and not expr.negated:
        operand = expr.operand
        if isinstance(operand, ast.ColumnRef) and operand.quantifier_id == qid:
            return ("null", operand.column_index, None)
    if isinstance(expr, ast.Like) and not expr.negated:
        operand = expr.operand
        if isinstance(operand, ast.ColumnRef) and operand.quantifier_id == qid:
            pattern = _static_value(expr.pattern, params)
            if isinstance(pattern, str):
                return ("like", operand.column_index, pattern)
    return None


class _NoValue:
    pass


_NO_VALUE = _NoValue()


def _static_value(expr, params):
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.Parameter) and params is not None:
        try:
            if expr.name is not None:
                return params[expr.name]
            return params[expr.ordinal]
        except (KeyError, IndexError, TypeError):
            return _NO_VALUE
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        inner = _static_value(expr.operand, params)
        if inner not in (_NO_VALUE, None):
            return -inner
    return _NO_VALUE
