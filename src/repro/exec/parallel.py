"""Intra-query parallelism (paper Section 4.4).

Manegold et al.'s load-balanced scheme, with the paper's extensions:

* a right-deep pipeline of hash joins is executed by N workers that fetch
  rows **first-come, first-serve** from the single scan feeding the
  pipeline, each worker probing *all* hash tables — so any number of
  workers can participate regardless of how many joins the plan has, and
  the scan keeps its sequential access pattern;
* the **build phases are parallelized the same way**: workers fetch build
  rows FCFS and build private hash tables that are then **merged**;
* additional operator kinds participate in the pipeline (nested-loop
  filters, Bloom filters, hash group by);
* the worker count can be **reduced mid-query**; reducing to one costs
  only slightly more than never having parallelized (the graceful
  adaptation the paper highlights).

Workers are simulated deterministically: each worker accumulates busy
time, every work morsel goes to the earliest-available worker, and the
pipeline's wall-clock time is the maximum worker time — charged to the
shared simulated clock at the end.
"""

from repro.common.errors import ExecutionError
from repro.optimizer.costmodel import (
    CPU_HASH_BUILD_US,
    CPU_HASH_PROBE_US,
    CPU_PREDICATE_US,
    CPU_ROW_US,
)

#: Fixed cost of merging one private hash-table entry during build merge.
MERGE_ENTRY_US = 0.2

#: Per-worker setup cost (the "only slightly worse" overhead when the
#: worker count drops to one mid-flight).
WORKER_SETUP_US = 50.0


class WorkerPool:
    """Deterministic FCFS worker simulation."""

    def __init__(self, n_workers):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self._times = [0.0] * n_workers
        self.setup_us = n_workers * WORKER_SETUP_US
        self.reductions = 0

    @property
    def n_workers(self):
        return len(self._times)

    def dispatch(self, cost_us):
        """Run one morsel on the earliest-available worker (FCFS)."""
        index = min(range(len(self._times)), key=self._times.__getitem__)
        self._times[index] += cost_us

    def reduce_to(self, n_workers):
        """Drop to ``n_workers``; survivors inherit the stragglers' frontier.

        Remaining work after a reduction is simply dispatched over fewer
        workers; the time already spent is preserved by folding the
        removed workers' busy time into the survivors' start offset.
        """
        if n_workers < 1:
            raise ValueError("cannot reduce below one worker")
        if n_workers >= len(self._times):
            return
        self.reductions += 1
        frontier = max(self._times)
        survivors = [max(time, frontier) for time in self._times[:n_workers]]
        self._times = survivors

    def wall_clock_us(self):
        return max(self._times) + self.setup_us

    def total_work_us(self):
        return sum(self._times) + self.setup_us

    def imbalance(self):
        """max/mean busy time: 1.0 is perfect balance."""
        mean = sum(self._times) / len(self._times)
        if mean == 0:
            return 1.0
        return max(self._times) / mean


class BloomFilter:
    """A simple Bloom filter stage (bitset over hash positions)."""

    def __init__(self, n_bits=8192, n_hashes=3):
        self._bits = bytearray(n_bits // 8 + 1)
        self._n_bits = n_bits
        self._n_hashes = n_hashes

    def add(self, key):
        for position in self._positions(key):
            self._bits[position // 8] |= 1 << (position % 8)

    def might_contain(self, key):
        return all(
            self._bits[position // 8] & (1 << (position % 8))
            for position in self._positions(key)
        )

    def _positions(self, key):
        base = hash(key)
        for i in range(self._n_hashes):
            yield (base ^ (i * 0x9E3779B9)) % self._n_bits


class JoinStage:
    """One hash join in the pipeline: build rows keyed by ``build_key``."""

    def __init__(self, build_rows, build_key, probe_key,
                 row_fetch_us=CPU_ROW_US, build_us=CPU_HASH_BUILD_US):
        self.build_rows = build_rows
        self.build_key = build_key
        self.probe_key = probe_key
        self.row_fetch_us = row_fetch_us
        #: Per-row hash insert cost; batch mode passes the amortized
        #: batch constant (workers fetch whole batches FCFS).
        self.build_us = build_us
        self.table = None

    def build(self, pool):
        """Parallel build: workers fetch FCFS into private tables, merged."""
        n = pool.n_workers
        private = [dict() for __ in range(n)]
        for index, row in enumerate(self.build_rows):
            pool.dispatch(self.row_fetch_us + self.build_us)
            table = private[index % n]
            table.setdefault(self.build_key(row), []).append(row)
        merged = {}
        for table in private:
            for key, rows in table.items():
                pool.dispatch(MERGE_ENTRY_US * len(rows))
                merged.setdefault(key, []).extend(rows)
        self.table = merged

    def probe(self, row):
        return self.table.get(self.probe_key(row), [])


class BloomStage:
    """A Bloom filter built from a key set, probed during the pipeline."""

    def __init__(self, keys, probe_key):
        self.keys = keys
        self.probe_key = probe_key
        self.filter = None

    def build(self, pool):
        self.filter = BloomFilter()
        for key in self.keys:
            pool.dispatch(CPU_PREDICATE_US)
            self.filter.add(key)

    def passes(self, row):
        return self.filter.might_contain(self.probe_key(row))


class FilterStage:
    """A per-row predicate stage (the nested-loop-join extension)."""

    def __init__(self, predicate):
        self.predicate = predicate

    def build(self, pool):
        pass

    def passes(self, row):
        return self.predicate(row)


class GroupByStage:
    """A terminal hash group by executed with worker-private tables."""

    def __init__(self, key_fn, init_fn, accumulate_fn, merge_fn):
        self.key_fn = key_fn
        self.init_fn = init_fn
        self.accumulate_fn = accumulate_fn
        self.merge_fn = merge_fn


class ParallelPipeline:
    """A scan feeding join/filter stages, optionally into a group by."""

    def __init__(self, probe_rows, stages, group_by=None,
                 probe_fetch_us=CPU_ROW_US, probe_us=CPU_HASH_PROBE_US):
        self.probe_rows = probe_rows
        self.stages = stages
        self.group_by = group_by
        self.probe_fetch_us = probe_fetch_us
        #: Per-row hash probe cost; batch mode passes the amortized
        #: batch constant.
        self.probe_us = probe_us

    def run(self, n_workers, ctx=None, reduce_to=None, reduce_at_fraction=0.5):
        """Execute; returns (output rows or group dict, PipelineStats).

        ``reduce_to`` simulates the server pulling threads mid-query: after
        ``reduce_at_fraction`` of the probe input, the worker count drops.
        """
        pool = WorkerPool(n_workers)
        for stage in self.stages:
            stage.build(pool)
        probe_rows = list(self.probe_rows)
        reduce_point = (
            int(len(probe_rows) * reduce_at_fraction)
            if reduce_to is not None
            else None
        )
        n_group_tables = pool.n_workers
        group_tables = (
            [dict() for __ in range(n_group_tables)]
            if self.group_by is not None
            else None
        )
        output = []
        for index, row in enumerate(probe_rows):
            if reduce_point is not None and index == reduce_point:
                pool.reduce_to(reduce_to)
            matches = self._probe_row(pool, row)
            if self.group_by is not None:
                table = group_tables[index % max(1, pool.n_workers)]
                for match in matches:
                    key = self.group_by.key_fn(match)
                    state = table.get(key)
                    if state is None:
                        state = self.group_by.init_fn()
                        table[key] = state
                    pool.dispatch(CPU_HASH_BUILD_US)
                    self.group_by.accumulate_fn(state, match)
            else:
                output.extend(matches)
        if self.group_by is not None:
            merged = {}
            for table in group_tables:
                for key, state in table.items():
                    pool.dispatch(MERGE_ENTRY_US)
                    if key in merged:
                        self.group_by.merge_fn(merged[key], state)
                    else:
                        merged[key] = state
            output = merged
        stats = PipelineStats(
            wall_clock_us=pool.wall_clock_us(),
            total_work_us=pool.total_work_us(),
            imbalance=pool.imbalance(),
            workers_final=pool.n_workers,
            reductions=pool.reductions,
        )
        if ctx is not None:
            ctx.clock.advance(int(stats.wall_clock_us))
        return output, stats

    def _probe_row(self, pool, row):
        """One FCFS morsel: fetch the row, run it through every stage."""
        cost = self.probe_fetch_us
        current = [row]
        for stage in self.stages:
            if isinstance(stage, JoinStage):
                next_rows = []
                for item in current:
                    cost += self.probe_us
                    for match in stage.probe(item):
                        next_rows.append((item, match))
                current = next_rows
            elif isinstance(stage, (BloomStage, FilterStage)):
                cost += CPU_PREDICATE_US * len(current)
                current = [item for item in current if stage.passes(item)]
            else:
                raise ExecutionError("unknown stage %r" % (type(stage).__name__,))
            if not current:
                break
        pool.dispatch(cost)
        return current


class PipelineStats:
    """Outcome of one parallel pipeline execution."""

    def __init__(self, wall_clock_us, total_work_us, imbalance,
                 workers_final, reductions):
        self.wall_clock_us = wall_clock_us
        self.total_work_us = total_work_us
        self.imbalance = imbalance
        self.workers_final = workers_final
        self.reductions = reductions

    def speedup_over(self, baseline_stats):
        return baseline_stats.wall_clock_us / self.wall_clock_us

    def __repr__(self):
        return (
            "PipelineStats(wall=%.0fus, work=%.0fus, imbalance=%.3f, "
            "workers=%d)"
            % (self.wall_clock_us, self.total_work_us, self.imbalance,
               self.workers_final)
        )
