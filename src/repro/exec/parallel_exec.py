"""Engine integration of intra-query parallelism (Section 4.4).

When the server's ``max_query_tasks`` option allows it, plans whose join
core is a left-deep chain of **hash joins over base-table scans** execute
their build and probe phases through the FCFS worker pipeline of
:mod:`repro.exec.parallel` instead of the serial Volcano operators — the
same eligibility the paper describes (the technique extends to arbitrary
compositions of hash joins; other shapes simply run serially).

Division of labour:

* leaf scans are materialized through the ordinary scan operators (I/O is
  charged serially — the paper keeps table scans sequential on the single
  disk and parallelizes the CPU-side build/probe work);
* the pipeline charges the parallel phases' CPU to simulated workers and
  advances the clock by the *critical path*, not the total work;
* everything above the join core (aggregation, sort, projection) runs
  serially on the joined rows.
"""

from repro.exec.batch import batches_to_rows
from repro.exec.expr import evaluate
from repro.exec.operators import Operator
from repro.exec.parallel import JoinStage, ParallelPipeline
from repro.optimizer import plans as p
from repro.optimizer.costmodel import (
    CPU_HASH_BUILD_BATCH_US,
    CPU_HASH_PROBE_BATCH_US,
    CPU_ROW_BATCH_US,
)
from repro.sql.binder import Quantifier


def parallelizable_join_core(plan):
    """The topmost hash-join chain runnable in parallel, or None.

    Walks down through the serial wrapper nodes (project, group by,
    having, sort, distinct, limit, filter); accepts a left-deep chain of
    INNER hash joins whose right children and leftmost leaf are base-table
    scans.  Returns (wrapper chain top-down, join chain bottom-up, leaf).
    """
    wrappers = []
    node = plan
    while isinstance(node, (
        p.ProjectPlan, p.HashGroupByPlan, p.HavingPlan, p.SortPlan,
        p.HashDistinctPlan, p.LimitPlan, p.FilterPlan,
    )):
        wrappers.append(node)
        node = node.children[0]
    joins = []
    while isinstance(node, p.HashJoinPlan):
        if node.join_type != Quantifier.INNER:
            return None
        if not isinstance(node.right, (p.SeqScanPlan, p.IndexScanPlan)):
            return None
        if node.conjuncts and any(c.equi is None for c in node.conjuncts):
            return None
        joins.append(node)
        node = node.left
    if not joins:
        return None
    if not isinstance(node, (p.SeqScanPlan, p.IndexScanPlan)):
        return None
    joins.reverse()  # bottom-up: first join applies to the leaf scan
    return wrappers, joins, node


class _MaterializedRows(Operator):
    """Feeds pre-computed environment rows into the serial operator tree."""

    def __init__(self, rows):
        self.rows = rows

    def execute(self, ctx):
        yield from self.rows


def execute_parallel(plan, executor, ctx, n_workers):
    """Run ``plan`` with its join core parallelized; returns (rows, stats).

    Returns (None, None) when the plan shape is not eligible — the caller
    falls back to the serial path.
    """
    core = parallelizable_join_core(plan)
    if core is None or n_workers < 2:
        return None, None
    wrappers, joins, leaf = core
    if ctx.metrics is not None:
        ctx.metrics.counter("exec.parallel_queries").inc()
        ctx.metrics.gauge("exec.parallel_workers").set(n_workers)

    # 1. Materialize the leaf (probe) input and every build input through
    #    the ordinary operators: scan I/O stays serial and sequential.  In
    #    batch mode the scans run vectorized (and charge the amortized
    #    batch constants); the materialized rows feed the pipeline either
    #    way.
    batch_mode = getattr(ctx, "batch_mode", False)
    probe_rows = _materialize(executor.build(leaf, depth=1), ctx, batch_mode)
    stages = []
    for join in joins:
        build_rows = _materialize(
            executor.build(join.right, depth=1), ctx, batch_mode
        )
        stages.append(_make_stage(join, build_rows, ctx.params, batch_mode))

    # 2. Parallel build + probe via the FCFS worker pipeline.  Batch mode
    #    models workers fetching whole batches FCFS: the per-morsel fetch
    #    and probe constants amortize exactly like the serial operators'.
    if batch_mode:
        pipeline = ParallelPipeline(
            probe_rows, stages,
            probe_fetch_us=CPU_ROW_BATCH_US,
            probe_us=CPU_HASH_PROBE_BATCH_US,
        )
    else:
        pipeline = ParallelPipeline(probe_rows, stages)
    output, stats = pipeline.run(n_workers=n_workers, ctx=ctx)

    # 3. Flatten the pipeline's nested (probe, build) tuples back into
    #    environment rows and run the serial remainder of the plan.
    joined_envs = [_flatten_env(item) for item in output]
    serial_top = _rebuild_serial(wrappers, executor, joined_envs)
    if batch_mode:
        rows = list(batches_to_rows(serial_top.execute_batches(ctx)))
    else:
        rows = list(serial_top.execute(ctx))
    return rows, stats


def _materialize(operator, ctx, batch_mode):
    if batch_mode:
        return list(batches_to_rows(operator.execute_batches(ctx)))
    return list(operator.execute(ctx))


def _make_stage(join, build_envs, params, batch_mode=False):
    build_keys = join.build_keys
    probe_keys = join.probe_keys

    def build_key(env):
        return tuple(evaluate(expr, env, params) for expr in build_keys)

    def probe_key(item):
        return tuple(
            evaluate(expr, _flatten_env(item), params) for expr in probe_keys
        )

    if batch_mode:
        return JoinStage(
            build_envs, build_key, probe_key,
            row_fetch_us=CPU_ROW_BATCH_US,
            build_us=CPU_HASH_BUILD_BATCH_US,
        )
    return JoinStage(build_envs, build_key, probe_key)


def _flatten_env(item):
    """Merge the pipeline's nested ((env, env), env) tuples into one env."""
    if isinstance(item, dict):
        return item
    left, right = item
    merged = dict(_flatten_env(left))
    merged.update(_flatten_env(right))
    return merged


def _rebuild_serial(wrappers, executor, joined_envs):
    """Re-hang the serial wrapper chain over the materialized join rows."""
    operator = _MaterializedRows(joined_envs)
    for wrapper in reversed(wrappers):
        operator = _build_wrapper(wrapper, operator)
    return operator


def _build_wrapper(wrapper, child_operator):
    from repro.exec.aggregates import (
        HashDistinctOp, HashGroupByOp, HavingOp, LimitOp, ProjectOp, SortOp,
    )
    from repro.exec.operators import FilterOp

    if isinstance(wrapper, p.ProjectPlan):
        return ProjectOp(child_operator, wrapper.items)
    if isinstance(wrapper, p.HashGroupByPlan):
        operator = HashGroupByOp(
            child_operator, wrapper.group_keys, wrapper.aggregates
        )
        operator.depth = 0
        return operator
    if isinstance(wrapper, p.HavingPlan):
        return HavingOp(child_operator, wrapper.conjunct_exprs)
    if isinstance(wrapper, p.SortPlan):
        operator = SortOp(child_operator, wrapper.sort_keys)
        operator.depth = 0
        return operator
    if isinstance(wrapper, p.HashDistinctPlan):
        operator = HashDistinctOp(child_operator)
        operator.depth = 0
        return operator
    if isinstance(wrapper, p.LimitPlan):
        return LimitOp(child_operator, wrapper.limit)
    if isinstance(wrapper, p.FilterPlan):
        return FilterOp(child_operator, wrapper.conjuncts)
    raise AssertionError("unexpected wrapper %r" % (type(wrapper).__name__,))
