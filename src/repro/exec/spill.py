"""Work-memory accounting and temp-file spilling shared by operators.

Operators account their work memory in pages against the statement's
:class:`~repro.exec.memory.Task`; rows that no longer fit are written to
the temporary file in page-sized chunks (charging device time through the
volume, exactly like any other page I/O).
"""

from repro.common.errors import ExecutionError, IOFaultError, SpillWriteError
from repro.faults.plan import SPILL_WRITE_ERROR

#: Rough per-value bytes when estimating row footprints.
VALUE_BYTES = 16
ROW_OVERHEAD_BYTES = 32


def env_row_bytes(env):
    """Estimated bytes of one environment row."""
    total = ROW_OVERHEAD_BYTES
    for row in env.values():
        try:
            total += VALUE_BYTES * len(row)
        except TypeError:
            total += VALUE_BYTES
    return total


class WorkMemory:
    """Page-accounted memory for one operator."""

    def __init__(self, task, page_size):
        self.task = task
        self.page_size = page_size
        self.bytes_used = 0
        self.pages_held = 0

    def add(self, n_bytes):
        """Account ``n_bytes`` more; may trigger reclamation or the hard
        limit via the task."""
        self.bytes_used += int(n_bytes)
        needed = -(-self.bytes_used // self.page_size)
        if needed > self.pages_held:
            # task.allocate may reclaim, re-entering *this* operator's
            # relinquish_memory (which shrinks pages_held via remove), so
            # apply the delta computed now rather than overwriting
            # pages_held with the pre-reclaim target — otherwise
            # pages_held overstates the net allocation and teardown
            # over-releases, corrupting the task's accounting for every
            # other consumer.
            delta = needed - self.pages_held
            self.task.allocate(delta)
            self.pages_held += delta

    def remove(self, n_bytes):
        self.bytes_used = max(0, self.bytes_used - int(n_bytes))
        needed = -(-self.bytes_used // self.page_size)
        if needed < self.pages_held:
            # Shrink our claim before returning the pages: the task's
            # accounting must never show consumers holding more than the
            # task has allocated.
            surplus = self.pages_held - needed
            self.pages_held = needed
            self.task.release(surplus)

    def release_all(self):
        held = self.pages_held
        self.pages_held = 0
        self.bytes_used = 0
        if held:
            self.task.release(held)

    def would_exceed_soft(self, n_bytes):
        needed = -(-(self.bytes_used + n_bytes) // self.page_size)
        return needed - self.pages_held > self.task.headroom_pages()


class SpillFile:
    """Rows written to the temporary file in page-sized chunks.

    With a fault plan attached, each page flush may suffer injected
    spill-write failures; the operator-level retry budget
    (``rates.spill_retry_limit``) absorbs them, and persistent failure
    surfaces as :class:`SpillWriteError` with the staged page freed —
    the statement aborts, the temp file does not leak.
    """

    def __init__(self, temp_file, row_bytes_estimate, page_size, fault_plan=None,
                 yield_hook=None):
        self.temp_file = temp_file
        self.rows_per_page = max(1, page_size // max(1, row_bytes_estimate))
        self.fault_plan = fault_plan
        #: Workload-scheduler yield point: fired before each page flush
        #: so sibling sessions can run while this one does spill I/O.
        self.yield_hook = yield_hook
        self._pages = []
        self._buffer = []
        self.row_count = 0

    def append(self, row):
        self._buffer.append(row)
        self.row_count += 1
        if len(self._buffer) >= self.rows_per_page:
            self._flush()

    def _flush(self):
        if not self._buffer:
            return
        if self.yield_hook is not None:
            self.yield_hook()
        page_no = self.temp_file.allocate_page()
        plan = self.fault_plan
        if plan is not None:
            attempt = 0
            while plan.should(
                SPILL_WRITE_ERROR, plan.rates.spill_write_error
            ):
                plan.record(
                    SPILL_WRITE_ERROR,
                    "page=%d attempt=%d" % (page_no, attempt),
                )
                attempt += 1
                if attempt > plan.rates.spill_retry_limit:
                    self.temp_file.free_page(page_no)
                    raise SpillWriteError(
                        "spill write to temp page %d still failing after "
                        "%d retries" % (page_no, plan.rates.spill_retry_limit)
                    )
                plan.note_retry(SPILL_WRITE_ERROR)
        try:
            self.temp_file.write(page_no, list(self._buffer))
        except IOFaultError:
            self.temp_file.free_page(page_no)
            raise
        self._pages.append(page_no)
        self._buffer = []

    def append_batch(self, batch):
        """Append a whole :class:`~repro.exec.batch.Batch` of rows.

        Row-for-row identical to repeated :meth:`append` calls — the
        same page-granular flushes, fault-injection points and yield
        hooks fire in the same order — so batch-mode spills are
        byte-compatible with row-mode spills.
        """
        for row in batch.rows():
            self.append(row)

    def finish_writing(self):
        self._flush()

    def read_all(self):
        """Read every spilled row back (charging I/O), in write order."""
        self.finish_writing()
        for page_no in self._pages:
            for row in self.temp_file.read(page_no):
                yield row

    def read_batches(self, batch_rows):
        """Read spilled rows back re-packed into batches (the batch
        path's reload leg); same page reads and row order as
        :meth:`read_all`."""
        from repro.exec.batch import rows_to_batches

        return rows_to_batches(self.read_all(), batch_rows)

    def free(self):
        self.finish_writing()
        for page_no in self._pages:
            self.temp_file.free_page(page_no)
        self._pages = []
        self.row_count = 0


class SpillableBuffer:
    """An append-then-rescan row buffer that overflows to the temp file.

    Used to materialize nested-loop-join inner inputs and derived tables:
    rows stay in accounted work memory until the soft limit pushes the
    tail to disk.
    """

    def __init__(self, ctx, row_bytes_estimate=64):
        self.ctx = ctx
        self.memory = WorkMemory(ctx.task, ctx.pool.page_size)
        self.row_bytes = row_bytes_estimate
        self._in_memory = []
        self._spill = None
        self._sealed = False

    def append(self, row):
        if self._sealed:
            raise ExecutionError("buffer already sealed")
        if self._spill is None and self.memory.would_exceed_soft(self.row_bytes):
            self._spill = SpillFile(
                self.ctx.temp_file,
                self.row_bytes,
                self.ctx.pool.page_size,
                fault_plan=getattr(self.ctx, "fault_plan", None),
                yield_hook=getattr(self.ctx, "yield_hook", None),
            )
        if self._spill is not None:
            self._spill.append(row)
        else:
            self._in_memory.append(row)
            self.memory.add(self.row_bytes)

    def seal(self):
        if self._spill is not None:
            self._spill.finish_writing()
        self._sealed = True

    @property
    def spilled(self):
        """Whether any rows overflowed to the temporary file."""
        return self._spill is not None

    def __len__(self):
        return len(self._in_memory) + (
            self._spill.row_count if self._spill is not None else 0
        )

    def scan(self):
        for row in self._in_memory:
            yield row
        if self._spill is not None:
            yield from self._spill.read_all()

    def free(self):
        self._in_memory = []
        self.memory.release_all()
        if self._spill is not None:
            self._spill.free()
            self._spill = None
