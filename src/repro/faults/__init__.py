"""Deterministic fault injection (:class:`FaultPlan` + injectors).

Usage::

    from repro.faults import FaultPlan, FaultRates
    server = Server(ServerConfig(fault_plan=FaultPlan(seed=7)))

or, for an entire test run::

    REPRO_FAULTS=7 python -m pytest -q

Every server then wraps its disk in a :class:`FaultyDisk`, hands the
plan to its simulated OS (working-set probe outages), threads it to the
spill files, and exports ``faults.injected`` / ``faults.retries`` /
``faults.statement_aborts`` through its metrics registry.  Replaying the
same seed against the same workload yields a byte-identical injection
log (:meth:`FaultPlan.log_lines`).
"""

import os

from repro.faults.injectors import FaultyDisk, HostileProcess
from repro.faults.plan import (
    ALL_SITES,
    DISK_READ_ERROR,
    DISK_READ_LATENCY,
    DISK_WRITE_ERROR,
    DISK_WRITE_LATENCY,
    HOSTILE_GRAB,
    NET_LATENCY,
    NET_PARTITION,
    NET_SEND_DROP,
    SPILL_WRITE_ERROR,
    WORKING_SET_OUTAGE,
    FaultPlan,
    FaultRates,
    FaultRecord,
)

#: Environment variable holding the chaos seed (an integer).
FAULTS_ENV_VAR = "REPRO_FAULTS"


def plan_from_env(environ=None):
    """Build a :class:`FaultPlan` from ``REPRO_FAULTS``, or return None.

    The variable holds the integer seed; unset, empty, ``0``, or
    non-numeric values disable injection.  Called once per server, so
    every server in a process gets its *own* plan (independent logs,
    per-server determinism).
    """
    environ = environ if environ is not None else os.environ
    raw = environ.get(FAULTS_ENV_VAR, "").strip()
    if not raw:
        return None
    try:
        seed = int(raw)
    except ValueError:
        return None
    if seed == 0:
        return None
    return FaultPlan(seed)


__all__ = [
    "ALL_SITES",
    "DISK_READ_ERROR",
    "DISK_READ_LATENCY",
    "DISK_WRITE_ERROR",
    "DISK_WRITE_LATENCY",
    "FAULTS_ENV_VAR",
    "FaultPlan",
    "FaultRates",
    "FaultRecord",
    "FaultyDisk",
    "HOSTILE_GRAB",
    "HostileProcess",
    "NET_LATENCY",
    "NET_PARTITION",
    "NET_SEND_DROP",
    "SPILL_WRITE_ERROR",
    "WORKING_SET_OUTAGE",
    "plan_from_env",
]
