"""Fault injectors: the hands of a :class:`~repro.faults.plan.FaultPlan`.

Three layers, matching the environments the paper's governors must ride
out:

* :class:`FaultyDisk` — a transparent wrapper over any
  :class:`repro.storage.disk.Disk` that injects transient read/write
  errors and latency spikes.  The bounded retry-with-backoff lives in
  :class:`repro.storage.pagedfile.Volume`, so every consumer of a volume
  (buffer pool, temp file, calibration) degrades the same way.
* :class:`HostileProcess` — a competing process that grabs bursts of
  physical memory on a seeded schedule and releases them later, forcing
  the buffer governor to shrink and re-grow the pool.
* Working-set probe outages are injected inside
  :meth:`repro.ossim.memory.OperatingSystem.working_set` itself (the
  OS consults the plan it was handed), because the probe is a read-side
  query with no wrapper seam.
"""

from repro.common.errors import TransientIOError
from repro.faults.plan import (
    DISK_READ_ERROR,
    DISK_READ_LATENCY,
    DISK_WRITE_ERROR,
    DISK_WRITE_LATENCY,
    HOSTILE_GRAB,
)


class FaultyDisk:
    """Wrap a :class:`repro.storage.disk.Disk`, injecting I/O faults.

    Composition, not inheritance: everything except ``read_page`` /
    ``write_page`` delegates to the wrapped device, so cost models,
    counters, head position, and geometry behave identically.  A raised
    :class:`TransientIOError` still charges ``error_latency_us`` of
    simulated time — a failed transfer is not free.
    """

    def __init__(self, inner, plan):
        self.inner = inner
        self.plan = plan

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def _maybe_spike(self, site, page_no):
        rates = self.plan.rates
        if self.plan.should(site, rates.disk_latency):
            self.plan.record(
                site, "page=%d spike_us=%d" % (page_no, rates.latency_spike_us)
            )
            self.inner.clock.advance(int(rates.latency_spike_us))

    def _maybe_fail(self, site, rate, page_no, verb):
        if self.plan.should(site, rate):
            self.plan.record(site, "page=%d" % page_no)
            self.inner.clock.advance(int(self.plan.rates.error_latency_us))
            raise TransientIOError(
                "injected transient %s error on page %d of %s"
                % (verb, page_no, self.inner.name),
                site=site,
            )

    def read_page(self, page_no):
        """Read one page, possibly spiking latency or failing transiently."""
        self._maybe_spike(DISK_READ_LATENCY, page_no)
        self._maybe_fail(
            DISK_READ_ERROR, self.plan.rates.disk_read_error, page_no, "read"
        )
        return self.inner.read_page(page_no)

    def write_page(self, page_no):
        """Write one page, possibly spiking latency or failing transiently."""
        self._maybe_spike(DISK_WRITE_LATENCY, page_no)
        self._maybe_fail(
            DISK_WRITE_ERROR, self.plan.rates.disk_write_error, page_no, "write"
        )
        return self.inner.write_page(page_no)

    def __repr__(self):
        return "FaultyDisk(%r)" % (self.inner,)


class HostileProcess:
    """A competing process grabbing memory in seeded bursts.

    Models the paper's "other software and system tools whose
    configuration and memory usage vary ... from moment to moment", but
    adversarially: every ``hostile_interval_us`` (plus seeded jitter) it
    allocates ``hostile_grab_bytes``, holds them for ``hostile_hold_us``,
    then releases.  The buffer governor must shrink the pool through the
    burst and re-grow afterwards without tripping quota sanitizers.

    Disabled when ``rates.hostile_interval_us`` is 0 (the default).
    """

    def __init__(self, os, clock, plan, name="hostile"):
        self.process = os.spawn(name)
        self._clock = clock
        self._plan = plan
        self.bursts = 0
        self.held_bytes = 0
        self._schedule_next()

    def _schedule_next(self):
        rates = self._plan.rates
        if rates.hostile_interval_us <= 0:
            return
        delay = int(rates.hostile_interval_us)
        if rates.hostile_interval_jitter_us > 0:
            delay += self._plan.draw_uniform(
                HOSTILE_GRAB, 0, rates.hostile_interval_jitter_us
            )
        self._clock.call_after(delay, self._grab)

    def _grab(self):
        rates = self._plan.rates
        grab = int(rates.hostile_grab_bytes)
        self.process.allocate(grab)
        self.held_bytes += grab
        self.bursts += 1
        self._plan.record(
            HOSTILE_GRAB,
            "grab bytes=%d hold_us=%d" % (grab, rates.hostile_hold_us),
        )
        self._clock.call_after(
            int(rates.hostile_hold_us), self._make_release(grab)
        )
        self._schedule_next()

    def _make_release(self, grab):
        def release():
            self.process.allocate(-grab)
            self.held_bytes -= grab

        return release

    def __repr__(self):
        return "HostileProcess(bursts=%d, held=%d)" % (
            self.bursts, self.held_bytes
        )
