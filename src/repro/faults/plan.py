"""The deterministic fault plan.

The paper's thesis is self-management under hostile, shifting conditions:
competing processes grabbing RAM, slow or flaky media, cache sizes the
governor must track "without seriously degrading performance".  This
module makes that hostility *reproducible*: a :class:`FaultPlan` is a
seeded source of injection decisions, measured on the simulated clock
(never wall time — SIM001), that drives the injectors in
:mod:`repro.faults.injectors` and keeps a byte-replayable log of every
fault it fires.

Determinism contract: each injection *site* owns an independent RNG
stream derived from ``(seed, site)``, so the decision sequence at one
site never depends on how often another site was consulted.  Replaying
the same seed against the same workload yields an identical
:meth:`FaultPlan.log_lines` text.
"""

import collections
import dataclasses
import random

from repro.common.units import MiB

# --------------------------------------------------------------------- #
# injection sites (literal, greppable — mirrors the metric-name rule)
# --------------------------------------------------------------------- #

DISK_READ_ERROR = "disk.read_error"
DISK_WRITE_ERROR = "disk.write_error"
DISK_READ_LATENCY = "disk.read_latency"
DISK_WRITE_LATENCY = "disk.write_latency"
WORKING_SET_OUTAGE = "ossim.working_set_outage"
HOSTILE_GRAB = "ossim.hostile_grab"
SPILL_WRITE_ERROR = "exec.spill_write"
LOG_FORCE_ERROR = "wal.force_error"
LOG_TORN_TAIL = "wal.torn_tail"
CKPT_CRASH = "wal.checkpoint_crash"
#: Not an injection site but a *decision* stream: the workload scheduler
#: draws its yield-or-continue choices here, so interleavings are seeded
#: exactly like faults (same seed → byte-identical session traces) while
#: never appearing in the injection log (``should`` does not record).
SCHED_INTERLEAVE = "sched.interleave"
#: Decision stream like ``sched.interleave``: which grantable waiter a
#: freed lock wakes.  Seeded so contended wakeup order is part of the
#: same-seed determinism contract, never recorded in the injection log.
LOCK_WAKEUP = "locks.wakeup"
#: Replication network faults: one shipped WAL frame dropped in flight
#: (go-back-N retransmits it), and a bounded link partition (every send
#: fails until the seeded heal time).  Per-link decision streams are
#: suffixed ``site#link`` so one link's draws never disturb another's;
#: ``record`` logs the canonical site with a ``link=`` detail.
NET_SEND_DROP = "net.send_drop"
NET_PARTITION = "net.partition"
#: Decision stream like ``sched.interleave``: per-link latency draws for
#: the simulated network.  Never recorded in the injection log.
NET_LATENCY = "net.latency"

ALL_SITES = (
    DISK_READ_ERROR, DISK_WRITE_ERROR, DISK_READ_LATENCY,
    DISK_WRITE_LATENCY, WORKING_SET_OUTAGE, HOSTILE_GRAB, SPILL_WRITE_ERROR,
    LOG_FORCE_ERROR, LOG_TORN_TAIL, CKPT_CRASH, SCHED_INTERLEAVE,
    LOCK_WAKEUP, NET_SEND_DROP, NET_PARTITION, NET_LATENCY,
)

#: One injected fault, as recorded in the replayable log.
FaultRecord = collections.namedtuple(
    "FaultRecord", ["sequence", "time_us", "site", "detail"]
)


@dataclasses.dataclass
class FaultRates:
    """Per-site injection probabilities and shapes.

    The defaults are the *chaos-CI* rates: low enough that every fault is
    absorbed by a bounded retry (abort probability per I/O is
    ``rate ** (retry limit + 1)``), high enough that a full test-suite
    run injects thousands of faults.  Tests crank individual rates to
    force the abort paths.
    """

    #: Probability of a transient error per device read / write attempt.
    disk_read_error: float = 0.003
    disk_write_error: float = 0.003
    #: Probability of a latency spike per device transfer, and its cost.
    disk_latency: float = 0.002
    latency_spike_us: int = 1500
    #: Simulated time a *failed* I/O attempt still burns.
    error_latency_us: int = 200
    #: Probability that one OS working-set probe blacks out.
    working_set_outage: float = 0.01
    #: Probability that one spill-file page write fails.
    spill_write_error: float = 0.003
    #: Probability that one log-force page write fails transiently.
    log_force_error: float = 0.002
    #: Probability the final log page tears during a simulated crash, and
    #: that a checkpoint dies between its BEGIN and END records.  Both
    #: default to 0: they only make sense under the crash harness, which
    #: raises them (or forces the outcome) explicitly.
    torn_tail: float = 0.0
    ckpt_crash: float = 0.0
    #: Hostile-process burst schedule; ``hostile_interval_us = 0``
    #: disables the injector (the default: memory-grab bursts perturb
    #: governor behaviour and are opted into by tests/experiments).
    hostile_interval_us: int = 0
    hostile_interval_jitter_us: int = 0
    hostile_hold_us: int = 2_000_000
    hostile_grab_bytes: int = 64 * MiB
    #: Bounded-retry budgets for the graceful-degradation paths.
    io_retry_limit: int = 5
    io_retry_backoff_us: int = 100
    spill_retry_limit: int = 4
    #: Replication network shape: per-frame drop probability, per-send
    #: partition-onset probability with bounded seeded duration, and the
    #: per-frame delivery latency band.  Drop/partition default to 0 so
    #: nothing outside the replication tier ever draws on them.
    net_send_drop: float = 0.0
    net_partition: float = 0.0
    net_partition_min_us: int = 5_000
    net_partition_max_us: int = 40_000
    net_latency_min_us: int = 50
    net_latency_max_us: int = 400
    #: Bounded retransmission budget for one synchronous ship (per
    #: commit-settle attempt); exhaustion degrades the statement, not
    #: the server.
    net_ship_retry_limit: int = 8


class FaultPlan:
    """A seeded, clock-stamped schedule of injected faults.

    Construct with a seed (and optionally custom :class:`FaultRates`),
    hand it to ``ServerConfig(fault_plan=...)`` — or export
    ``REPRO_FAULTS=<seed>`` and let every server build its own plan.
    The server :meth:`bind`\\ s the plan to its clock, metrics registry,
    and tracer; injectors then consult :meth:`should` and call
    :meth:`record` for every fault that fires.
    """

    def __init__(self, seed, rates=None, budgets=None):
        self.seed = int(seed)
        self.rates = rates if rates is not None else FaultRates()
        #: Optional ``{site: max injections}`` caps.  A site at budget
        #: stops drawing entirely, so long soak runs can bound total
        #: injected aborts.  The budget map is part of the determinism
        #: configuration: two runs compare equal only with equal budgets.
        self.budgets = dict(budgets) if budgets else {}
        self._site_counts = collections.Counter()
        self._rngs = {}
        #: The replayable injection log: a list of :class:`FaultRecord`.
        self.log = []
        self._sequence = 0
        # Plain attributes mirror the metric counters so the plan is
        # fully inspectable without a registry.
        self.injected = 0
        self.retries = 0
        self.statement_aborts = 0
        self._clock = None
        self._tracer_fn = None
        self._m_injected = None
        self._m_retries = None
        self._m_aborts = None

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #

    def bind(self, clock, metrics=None, tracer_fn=None):
        """Attach the plan to a server's clock, metrics, and tracer.

        ``tracer_fn`` is a zero-argument callable returning the server's
        current tracer (or None) — evaluated per injection, so a tracer
        attached mid-run still sees later faults.
        """
        self._clock = clock
        self._tracer_fn = tracer_fn
        if metrics is not None:
            self._m_injected = metrics.counter("faults.injected")
            self._m_retries = metrics.counter("faults.retries")
            self._m_aborts = metrics.counter("faults.statement_aborts")
        return self

    # ------------------------------------------------------------------ #
    # decisions
    # ------------------------------------------------------------------ #

    def _rng(self, site):
        rng = self._rngs.get(site)
        if rng is None:
            rng = self._rngs[site] = random.Random("%d:%s" % (self.seed, site))
        return rng

    def should(self, site, probability):
        """One seeded draw on ``site``'s private stream.

        A site whose budget is exhausted returns False *without drawing*,
        keeping the remaining decision sequence at every site unchanged.
        """
        if probability <= 0.0:
            return False
        if self.site_budget_remaining(site) == 0:
            return False
        return self._rng(site).random() < probability

    def site_budget_remaining(self, site):
        """Injections left in ``site``'s budget (None = unbounded)."""
        budget = self.budgets.get(site)
        if budget is None:
            return None
        return max(0, budget - self._site_counts[site])

    def draw_uniform(self, site, low, high):
        """A uniform integer draw on ``site``'s stream (burst shaping)."""
        if high <= low:
            return int(low)
        return self._rng(site).randrange(int(low), int(high))

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    @property
    def now_us(self):
        return self._clock.now if self._clock is not None else -1

    def record(self, site, detail=""):
        """Log one fired injection; returns its :class:`FaultRecord`."""
        record = FaultRecord(self._sequence, self.now_us, site, detail)
        self._sequence += 1
        self.log.append(record)
        self._site_counts[site] += 1
        self.injected += 1
        if self._m_injected is not None:
            self._m_injected.inc()
        if self._tracer_fn is not None:
            tracer = self._tracer_fn()
            if tracer is not None and hasattr(tracer, "record_fault"):
                tracer.record_fault(
                    record.sequence, record.time_us, site, detail
                )
        return record

    def note_retry(self, site):
        """Count one bounded-retry recovery attempt at ``site``."""
        self.retries += 1
        if self._m_retries is not None:
            self._m_retries.inc()

    def note_statement_abort(self):
        """Count one statement terminated by a fault-typed error."""
        self.statement_aborts += 1
        if self._m_aborts is not None:
            self._m_aborts.inc()

    # ------------------------------------------------------------------ #
    # replay / post-mortem surface
    # ------------------------------------------------------------------ #

    def log_lines(self):
        """Canonical text form of the injection log.

        Two runs with the same seed and workload must produce
        byte-identical output — the determinism tests compare exactly
        this string.
        """
        return "\n".join(
            "%06d %12d %s %s" % (r.sequence, r.time_us, r.site, r.detail)
            for r in self.log
        )

    def injections_by_site(self):
        """``{site: count}`` summary of the log."""
        summary = {}
        for record in self.log:
            summary[record.site] = summary.get(record.site, 0) + 1
        return summary

    def __repr__(self):
        return "FaultPlan(seed=%d, injected=%d, retries=%d, aborts=%d)" % (
            self.seed, self.injected, self.retries, self.statement_aborts
        )
