"""Query optimization (paper Sections 4.1–4.2).

The optimizer re-optimizes every statement at each invocation, so it is
built to be cheap: a proprietary-style **branch-and-bound, depth-first
enumeration over left-deep processing trees**, with:

* heuristic table ranking that automatically defers Cartesian products;
* incremental prefix costing with aggressive pruning against the best
  complete plan ("the essence of the algorithm's branch-and-bound
  paradigm");
* an **optimizer governor** that spreads a quota of node visits unevenly
  across the search tree (half to the first child, half of the remainder
  to the next, ...), returns unused quota on prunes, and redistributes
  quota from the root whenever a new optimal plan improves the best cost
  by at least 20%;
* a **DTT-based cost model** whose objective is rank fidelity (eq. 3), not
  absolute accuracy, including the deliberately optimistic
  half-the-buffer-pool assumption for intermediate results;
* a **plan cache** for statements inside procedures, with a training
  period and decaying-logarithmic re-verification;
* a heuristic **bypass path** for simple single-table DML where the cost
  of optimization approaches the cost of execution.
"""

from repro.optimizer.plans import (
    FilterPlan,
    HashDistinctPlan,
    HashGroupByPlan,
    HashJoinPlan,
    IndexNLJoinPlan,
    IndexScanPlan,
    LimitPlan,
    NLJoinPlan,
    PlanNode,
    ProcedureScanPlan,
    ProjectPlan,
    RecursiveUnionPlan,
    SeqScanPlan,
    SortPlan,
)
from repro.optimizer.selectivity import SelectivityEstimator
from repro.optimizer.costmodel import CostModel, CostModelContext
from repro.optimizer.enumeration import EnumerationStats, JoinEnumerator, OptimizerGovernor
from repro.optimizer.optimizer import Optimizer, OptimizerResult
from repro.optimizer.plancache import PlanCache

__all__ = [
    "PlanNode",
    "SeqScanPlan",
    "IndexScanPlan",
    "FilterPlan",
    "ProjectPlan",
    "NLJoinPlan",
    "IndexNLJoinPlan",
    "HashJoinPlan",
    "HashGroupByPlan",
    "HashDistinctPlan",
    "SortPlan",
    "LimitPlan",
    "RecursiveUnionPlan",
    "ProcedureScanPlan",
    "SelectivityEstimator",
    "CostModel",
    "CostModelContext",
    "JoinEnumerator",
    "OptimizerGovernor",
    "EnumerationStats",
    "Optimizer",
    "OptimizerResult",
    "PlanCache",
]
