"""The DTT-based cost model (paper Section 4.2).

The model prices plans in simulated microseconds from two ingredients:

* **I/O** via the Disk Transfer Time curves stored in the catalog — the
  amortized cost of one page transfer as a function of band size (band 1
  being sequential);
* **CPU** via per-row/per-page constants shared with the executor, so that
  expected and actual costs live on the same scale.

Its goal is the paper's eq. (3): *rank fidelity* — for plans P1, P2,
``CostE(P1) > CostE(P2)`` iff ``CostA(P1) > CostA(P2)`` — not absolute
accuracy.  The deliberately optimistic treatment of intermediate results
("assume that half the buffer pool is available for each quantifier ...
the point is not to cost intermediate results accurately, but to prune
grossly inefficient strategies quickly") lives in
:meth:`CostModelContext.optimistic_resident_fraction`.
"""

import math

from repro.dtt.model import READ, WRITE

#: CPU cost constants (simulated microseconds).  The executor charges the
#: same constants, which is what makes eq. (3) hold by construction on a
#: model-backed device.
CPU_ROW_US = 0.5          # handle one row through an operator
CPU_PREDICATE_US = 0.2    # evaluate one predicate on one row
CPU_HASH_BUILD_US = 1.0   # insert one row into a hash table
CPU_HASH_PROBE_US = 0.6   # probe one row against a hash table
CPU_SORT_FACTOR_US = 0.15  # per comparison in n log n sorting
BUFFER_HIT_US = 3.0       # touch one resident page
INDEX_NODE_US = 4.0       # binary search within one index node
OPTIMIZER_NODE_US = 25.0  # visiting one join-enumeration search node

#: Vectorized batch execution amortizes per-row dispatch (dict lookups,
#: generator frames, per-row expression walks) over whole column batches;
#: the migrated operators charge the row constants divided by this
#: factor.  8x models the dispatch share of the row constants — the CPU
#: half a real engine eliminates when only the per-batch setup remains —
#: not the Python harness's end-to-end wall ratio, which also carries
#: unvectorizable work (hash inserts, version checks, I/O simulation)
#: and lands at ~1.5-2.6x on the scan/group/join mix.
BATCH_AMORTIZATION = 8.0
CPU_ROW_BATCH_US = CPU_ROW_US / BATCH_AMORTIZATION
CPU_PREDICATE_BATCH_US = CPU_PREDICATE_US / BATCH_AMORTIZATION
CPU_HASH_BUILD_BATCH_US = CPU_HASH_BUILD_US / BATCH_AMORTIZATION
CPU_HASH_PROBE_BATCH_US = CPU_HASH_PROBE_US / BATCH_AMORTIZATION
CPU_SORT_FACTOR_BATCH_US = CPU_SORT_FACTOR_US / BATCH_AMORTIZATION


class CostModelContext:
    """Runtime state the cost model needs: DTT model, pool, memory limits."""

    def __init__(self, dtt_model, page_size, pool_pages,
                 soft_limit_pages=None, resident_fraction_fn=None):
        self.dtt_model = dtt_model
        self.page_size = page_size
        self.pool_pages = max(1, int(pool_pages))
        #: The memory governor's *predicted* soft limit for this statement
        #: (pages available to memory-intensive operators).
        self.soft_limit_pages = (
            soft_limit_pages if soft_limit_pages is not None else self.pool_pages
        )
        #: Callable (table_storage) -> fraction of the table resident in
        #: the buffer pool (the real-time table statistic of Section 3.2).
        self._resident_fraction_fn = resident_fraction_fn

    def resident_fraction(self, storage):
        if self._resident_fraction_fn is None or storage is None:
            return 0.0
        return self._resident_fraction_fn(storage)

    def optimistic_resident_fraction(self, table_pages):
        """Half the buffer pool per quantifier — the paper's optimistic
        prefix-costing assumption."""
        if table_pages <= 0:
            return 1.0
        return min(1.0, (self.pool_pages / 2.0) / table_pages)

    # DTT shortcuts ------------------------------------------------------- #

    def read_us(self, band):
        return self.dtt_model.cost_us(READ, self.page_size, max(1, band))

    def write_us(self, band):
        return self.dtt_model.cost_us(WRITE, self.page_size, max(1, band))


class CostModel:
    """Prices individual operators; all costs in simulated microseconds."""

    def __init__(self, context):
        self.ctx = context

    # ------------------------------------------------------------------ #
    # scans
    # ------------------------------------------------------------------ #

    def seq_scan(self, table_pages, table_rows, n_predicates,
                 resident_fraction):
        """Full sequential scan with pushed-down filters."""
        miss_pages = table_pages * (1.0 - resident_fraction)
        io = miss_pages * self.ctx.read_us(1)
        cpu = (
            table_pages * BUFFER_HIT_US
            + table_rows * CPU_ROW_US
            + table_rows * n_predicates * CPU_PREDICATE_US
        )
        return io + cpu

    #: Band size charged for the leaf/table alternation of an index scan:
    #: even a perfectly clustered scan ping-pongs between the index file
    #: and the table file, so neither stream is truly sequential.
    ALTERNATION_BAND = 32

    def index_scan(self, index_height, index_leaf_pages, table_pages,
                   matching_rows, clustering_fraction, resident_fraction,
                   n_residual_predicates=0):
        """Sargable B+-tree scan: descend once, walk leaves, fetch rows."""
        descent = index_height * INDEX_NODE_US + self._random_read(
            index_leaf_pages, resident_fraction
        )
        miss = 1.0 - resident_fraction
        alternation_us = self.ctx.read_us(self.ALTERNATION_BAND)
        leaf_pages_read = max(1.0, matching_rows / 64.0)
        leaf_walk = leaf_pages_read * (BUFFER_HIT_US + miss * alternation_us)
        row_fetch = self.row_fetches(
            matching_rows, table_pages, clustering_fraction, resident_fraction
        )
        cpu = matching_rows * (
            CPU_ROW_US + n_residual_predicates * CPU_PREDICATE_US
        )
        return descent + leaf_walk + row_fetch + cpu

    def index_probe(self, index_height, index_leaf_pages, table_pages,
                    rows_per_probe, clustering_fraction, resident_fraction):
        """One equality probe into an index plus row fetches."""
        descent = index_height * INDEX_NODE_US + (
            1.0 - resident_fraction
        ) * self.ctx.read_us(max(1, index_leaf_pages))
        row_fetch = self.row_fetches(
            rows_per_probe, table_pages, clustering_fraction, resident_fraction
        )
        return descent + row_fetch + rows_per_probe * CPU_ROW_US

    def row_fetches(self, rows, table_pages, clustering_fraction,
                    resident_fraction):
        """Cost of fetching ``rows`` base rows located via an index."""
        if rows <= 0:
            return 0.0
        # Clustered fraction reads (mostly) sequential pages; the rest are
        # random touches over the table's band.
        random_rows = rows * (1.0 - clustering_fraction)
        clustered_pages = rows * clustering_fraction / 64.0
        miss = 1.0 - resident_fraction
        io = (
            random_rows * miss * self.ctx.read_us(max(1, table_pages))
            + clustered_pages * miss * self.ctx.read_us(self.ALTERNATION_BAND)
        )
        cpu = rows * BUFFER_HIT_US / 8.0
        return io + cpu

    def _random_read(self, area_pages, resident_fraction):
        return (1.0 - resident_fraction) * self.ctx.read_us(max(1, area_pages))

    # ------------------------------------------------------------------ #
    # joins
    # ------------------------------------------------------------------ #

    def nested_loop_join(self, outer_rows, inner_scan_cost, n_predicates,
                         output_rows):
        """Plain NLJ: re-run the inner per outer row."""
        return (
            outer_rows * inner_scan_cost
            + outer_rows * n_predicates * CPU_PREDICATE_US
            + output_rows * CPU_ROW_US
        )

    def index_nl_join(self, outer_rows, probe_cost_cold, probe_cost_warm,
                      warmup_pages, output_rows):
        """Repeated index probes with cache warm-up saturation.

        The first probes take cold-cache misses; once roughly the index's
        and table's pages have been touched (and fit in the pool), further
        probes run at the warm cost.
        """
        cold_probes = min(outer_rows, max(0.0, warmup_pages))
        warm_probes = max(0.0, outer_rows - cold_probes)
        return (
            cold_probes * probe_cost_cold
            + warm_probes * probe_cost_warm
            + output_rows * CPU_ROW_US
        )

    def hash_join(self, build_rows, probe_rows, build_row_bytes,
                  memory_pages, output_rows):
        """Grace-style hash join with partition spilling past the quota."""
        build_pages = self._pages(build_rows, build_row_bytes)
        cpu = (
            build_rows * CPU_HASH_BUILD_US
            + probe_rows * CPU_HASH_PROBE_US
            + output_rows * CPU_ROW_US
        )
        memory = max(1, memory_pages if memory_pages is not None
                     else self.ctx.soft_limit_pages)
        if build_pages <= memory:
            return cpu
        # Fraction that does not fit spills: written and re-read once, on
        # both the build and probe sides (probe scaled by the same ratio).
        spill_fraction = 1.0 - memory / build_pages
        probe_pages = self._pages(probe_rows, build_row_bytes)
        spilled_pages = (build_pages + probe_pages) * spill_fraction
        io = spilled_pages * (self.ctx.write_us(1) + self.ctx.read_us(1))
        return cpu + io

    # ------------------------------------------------------------------ #
    # aggregation / sorting / distinct
    # ------------------------------------------------------------------ #

    def hash_group_by(self, input_rows, group_count, group_row_bytes,
                      memory_pages):
        cpu = input_rows * CPU_HASH_BUILD_US + group_count * CPU_ROW_US
        group_pages = self._pages(group_count, group_row_bytes)
        memory = max(1, memory_pages if memory_pages is not None
                     else self.ctx.soft_limit_pages)
        if group_pages <= memory:
            return cpu
        # Low-memory fallback territory: temp-table traffic.
        spill_pages = group_pages - memory
        return cpu + spill_pages * 4 * (self.ctx.write_us(1) + self.ctx.read_us(1))

    def sort(self, rows, row_bytes, memory_pages):
        if rows <= 1:
            return CPU_ROW_US
        cpu = rows * math.log2(max(2.0, rows)) * CPU_SORT_FACTOR_US
        data_pages = self._pages(rows, row_bytes)
        memory = max(1, memory_pages if memory_pages is not None
                     else self.ctx.soft_limit_pages)
        if data_pages <= memory:
            return cpu
        # External merge sort: one spill pass plus merge reads.
        passes = max(1, math.ceil(math.log(max(2, data_pages / memory), 8)))
        io = data_pages * passes * (self.ctx.write_us(1) + self.ctx.read_us(1))
        return cpu + io

    def hash_distinct(self, input_rows, distinct_rows, row_bytes,
                      memory_pages):
        return self.hash_group_by(input_rows, distinct_rows, row_bytes,
                                  memory_pages)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _pages(self, rows, row_bytes):
        return max(1.0, rows * max(1, row_bytes) / self.ctx.page_size)
