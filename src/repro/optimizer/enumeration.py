"""Branch-and-bound, depth-first join enumeration with the optimizer
governor (paper Section 4.1).

The search space is a tree: the root is the empty join strategy; each node
at level *k* is a ``(quantifier, access method, join method)`` 3-tuple
extending the level-*(k-1)* prefix of a left-deep processing tree.  The
enumerator:

* ranks candidate quantifiers heuristically and **defers Cartesian
  products** by preferring quantifiers connected to the placed prefix;
* **costs prefixes incrementally** and prunes as soon as a prefix's cost
  meets the best complete plan's cost (any extension only adds cost);
* respects **outer/semi-join ordering constraints** (preserved side before
  null-supplied side);
* is governed by a **quota of node visits**, split unevenly across
  children — half to the most promising child, half of the remainder to
  the next, and so on — with unused quota returned upward on prunes and a
  full redistribution whenever a new best plan improves the incumbent by
  at least 20%;
* keeps its state on the recursion stack (depth-first search "has the
  significant advantage of using very little memory"), and accounts that
  memory so the 100-way-join experiment can report it.
"""

import math

from repro.common.errors import OptimizerError
from repro.optimizer.costmodel import OPTIMIZER_NODE_US
from repro.sql.binder import Quantifier

#: Improvement ratio that triggers quota redistribution from the root.
REDISTRIBUTION_IMPROVEMENT = 0.20

#: Floor for the cost-proportional effort cap: a search never stops on
#: effort grounds before this many nodes, so small queries (whose spaces
#: complete naturally well under it) are unaffected.
MIN_EFFORT_NODES = 128

#: Rough per-stack-frame bytes for optimizer memory accounting.
_FRAME_BYTES = 320
_CANDIDATE_BYTES = 96


class EnumerationStats:
    """Observability for the search (drives experiments E5/E6)."""

    def __init__(self):
        self.nodes_visited = 0
        self.plans_completed = 0
        self.prunes = 0
        self.quota_denials = 0
        self.effort_stops = 0
        self.improvements = 0
        self.first_plan_cost = None
        self.best_cost_trace = []  # [(nodes_visited, best_cost)]
        self.peak_memory_bytes = 0
        self.max_depth = 0

    def note_memory(self, depth, candidate_count):
        self.max_depth = max(self.max_depth, depth)
        in_use = depth * _FRAME_BYTES + candidate_count * _CANDIDATE_BYTES
        self.peak_memory_bytes = max(self.peak_memory_bytes, in_use)


class OptimizerGovernor:
    """Distributes the visit quota across the search tree.

    ``mode='governor'`` is the paper's scheme (halving allocation plus
    redistribution on big improvements); ``mode='fifo'`` is the ablation
    baseline that hands the whole remaining quota to each child in order
    (plain early halting).
    """

    def __init__(self, quota, mode="governor", effort_factor=None):
        if mode not in ("governor", "fifo"):
            raise ValueError("mode must be 'governor' or 'fifo'")
        self.initial_quota = quota
        self.mode = mode
        #: Cost-proportional effort cap (Section 4.1: "query optimization
        #: must therefore be cheap"): once a complete strategy exists, stop
        #: searching when the simulated time already spent optimizing
        #: (``nodes_visited * OPTIMIZER_NODE_US``) exceeds ``effort_factor``
        #: times the incumbent plan's own estimated cost — past that point
        #: the search can no longer pay for itself.  ``None`` disables the
        #: cap (exhaustive/ablation rigs construct their own governors).
        self.effort_factor = effort_factor

    def child_quota(self, remaining, child_rank):
        if self.mode == "fifo":
            return remaining
        # Half to the first child, half of the remainder to the second...
        return max(1, remaining // 2)


class _Step:
    """One placed 3-tuple of the left-deep strategy."""

    __slots__ = (
        "quantifier", "access", "index_schema", "sarg", "join_method",
        "probe_info", "out_rows", "step_cost", "new_conjuncts",
    )

    def __init__(self, quantifier, access, index_schema, sarg, join_method,
                 probe_info, out_rows, step_cost, new_conjuncts):
        self.quantifier = quantifier
        self.access = access              # 'seq' | 'index' | 'derived' | ...
        self.index_schema = index_schema
        self.sarg = sarg
        self.join_method = join_method    # None | 'nlj' | 'inlj' | 'hash'
        self.probe_info = probe_info      # for inlj: (index, probe exprs)
        self.out_rows = out_rows
        self.step_cost = step_cost
        self.new_conjuncts = new_conjuncts


class JoinEnumerator:
    """Enumerates left-deep join strategies for one query block."""

    def __init__(self, block, cost_model, estimator, catalog,
                 governor=None, quantifier_info=None, use_indexes=True):
        self.block = block
        self.cost_model = cost_model
        self.estimator = estimator
        self.catalog = catalog
        #: When False, index-NL probe steps are never generated (the
        #: force-heap-scan plan-variation mode used by the NoREC oracle).
        self.use_indexes = use_indexes
        self.governor = governor if governor is not None else OptimizerGovernor(5000)
        self.stats = EnumerationStats()
        #: qid -> _QuantifierInfo (precomputed sizes and local conjuncts).
        self.info = quantifier_info if quantifier_info is not None else {}
        self._best_steps = None
        self._best_cost = math.inf
        self._redistribute_requested = False
        #: qid -> join conjuncts referencing it, precomputed once: the
        #: candidate scan walks this short list instead of re-filtering
        #: every block conjunct at every node of the search.
        self._join_conjuncts = {}
        for quantifier in self.block.quantifiers:
            self._join_conjuncts[quantifier.id] = [
                conjunct for conjunct in self.block.conjuncts
                if conjunct.is_join and quantifier.id in conjunct.refs
            ]

    # ------------------------------------------------------------------ #
    # entry point
    # ------------------------------------------------------------------ #

    def enumerate(self):
        """Returns (best step list, stats); raises if no plan was found."""
        quantifiers = list(self.block.quantifiers)
        if not quantifiers:
            return [], self.stats
        self._recurse(frozenset(), [], 1.0, 0.0, self.governor.initial_quota)
        if self._best_steps is None:
            raise OptimizerError(
                "no join strategy found for %d quantifiers (quota %d)"
                % (len(quantifiers), self.governor.initial_quota)
            )
        return self._best_steps, self.stats

    @property
    def best_cost(self):
        return self._best_cost

    # ------------------------------------------------------------------ #
    # depth-first search
    # ------------------------------------------------------------------ #

    def _recurse(self, placed, steps, prefix_rows, prefix_cost, quota):
        """Explore extensions of ``steps``; returns unused quota."""
        self.stats.nodes_visited += 1
        quota -= 1
        if len(placed) == len(self.block.quantifiers):
            self._complete(steps, prefix_cost)
            return quota
        if self._effort_exhausted():
            self.stats.effort_stops += 1
            return quota
        candidates = self._candidates(placed, steps, prefix_rows, prefix_cost)
        self.stats.note_memory(len(steps) + 1, len(candidates))
        for rank, (step, total_cost) in enumerate(candidates):
            if total_cost >= self._best_cost:
                # Candidates are cost-ordered: every later one prunes too.
                self.stats.prunes += 1
                break
            if quota <= 0:
                self.stats.quota_denials += 1
                break
            # The halving schedule limits breadth, but a child always gets
            # at least enough quota to dive to one complete plan — without
            # this floor no strategy would ever complete on deep joins,
            # and the paper guarantees "the first join strategy generated"
            # exists.
            levels_remaining = len(self.block.quantifiers) - len(placed)
            child_quota = min(
                quota,
                max(self.governor.child_quota(quota, rank), levels_remaining),
            )
            unused = self._recurse(
                placed | {step.quantifier.id},
                steps + [step],
                step.out_rows,
                total_cost,
                child_quota,
            )
            quota -= child_quota - unused
            if self._redistribute_requested:
                # A >=20% improvement somewhere below: restart this node's
                # allocation pattern from its full remaining quota (the
                # redistribution propagates up to the root as the stack
                # unwinds).
                self._redistribute_requested = len(steps) > 0
        return max(0, quota)

    def _effort_exhausted(self):
        """True when the cost-proportional effort cap says to stop: a
        complete strategy exists and the simulated optimization time spent
        so far exceeds ``effort_factor`` times the incumbent's cost."""
        factor = self.governor.effort_factor
        if factor is None or self._best_steps is None:
            return False
        if self.stats.nodes_visited < MIN_EFFORT_NODES:
            return False
        budget_nodes = factor * self._best_cost / OPTIMIZER_NODE_US
        return self.stats.nodes_visited >= budget_nodes

    def _complete(self, steps, cost):
        self.stats.plans_completed += 1
        if self.stats.first_plan_cost is None:
            self.stats.first_plan_cost = cost
        if cost < self._best_cost:
            if self._best_cost < math.inf and cost <= self._best_cost * (
                1.0 - REDISTRIBUTION_IMPROVEMENT
            ):
                self.stats.improvements += 1
                self._redistribute_requested = True
            self._best_cost = cost
            self._best_steps = list(steps)
            self.stats.best_cost_trace.append(
                (self.stats.nodes_visited, cost)
            )

    # ------------------------------------------------------------------ #
    # candidate generation (the 3-tuples)
    # ------------------------------------------------------------------ #

    def _candidates(self, placed, steps, prefix_rows, prefix_cost):
        eligible = [
            quantifier
            for quantifier in self.block.quantifiers
            if quantifier.id not in placed
            and quantifier.required_predecessors <= placed
        ]
        if not eligible:
            return []
        if placed:
            connected = [
                quantifier for quantifier in eligible
                if self._connects(quantifier, placed)
            ]
            # Defer Cartesian products: only fall back to disconnected
            # quantifiers when nothing connects.
            if connected:
                eligible = connected
        candidates = []
        for quantifier in eligible:
            for step in self._steps_for(quantifier, placed, steps, prefix_rows):
                candidates.append((step, prefix_cost + step.step_cost))
        candidates.sort(key=lambda pair: pair[1])
        return candidates

    def _connects(self, quantifier, placed):
        for conjunct in self._joinable_conjuncts(quantifier, placed):
            return True
        return bool(quantifier.on_conjuncts) and any(
            ref in placed for c in quantifier.on_conjuncts for ref in c.refs
        )

    def _joinable_conjuncts(self, quantifier, placed):
        """WHERE conjuncts that become fully placed by adding
        ``quantifier``."""
        for conjunct in self._join_conjuncts[quantifier.id]:
            if conjunct.refs - {quantifier.id} <= placed:
                yield conjunct

    def _steps_for(self, quantifier, placed, steps, prefix_rows):
        info = self.info[quantifier.id]
        new_conjuncts = list(self._joinable_conjuncts(quantifier, placed))
        on_conjuncts = list(quantifier.on_conjuncts) if placed else []
        join_selectivity = self._join_selectivity(
            quantifier, placed, new_conjuncts + on_conjuncts
        )
        out_rows = self._out_rows(
            quantifier, placed, prefix_rows, info.filtered_rows,
            join_selectivity,
        )
        produced = []
        if not placed:
            # Level 1: pure access-method choice.
            produced.append(_Step(
                quantifier, info.access_kind, None, None, None, None,
                info.filtered_rows, info.seq_scan_cost, [],
            ))
            for index_schema, sarg, cost, rows in info.index_access_options:
                produced.append(_Step(
                    quantifier, "index", index_schema, sarg, None, None,
                    rows, cost, [],
                ))
            return produced
        n_predicates = len(new_conjuncts) + len(on_conjuncts)
        # A LEFT quantifier's match condition is its ON clause alone:
        # WHERE conjuncts filter after NULL-extension, so they may not
        # drive index probes or hash keys.
        if quantifier.join_type == Quantifier.LEFT:
            condition_conjuncts = on_conjuncts
        else:
            condition_conjuncts = new_conjuncts + on_conjuncts
        # Nested-loop join: rescan the inner per outer row (with the
        # optimistic half-pool buffering for the repeated scans).
        nlj_cost = self.cost_model.nested_loop_join(
            prefix_rows, info.repeat_scan_cost, n_predicates, out_rows
        )
        produced.append(_Step(
            quantifier, info.access_kind, None, None, "nlj", None,
            out_rows, nlj_cost, new_conjuncts,
        ))
        # Index nested loops via an equi conjunct on an indexed column.
        for index_schema, probe_exprs, cold, warm, warmup in (
            self._probe_options(quantifier, placed, condition_conjuncts)
        ):
            cost = self.cost_model.index_nl_join(
                prefix_rows, cold, warm, warmup, out_rows
            )
            produced.append(_Step(
                quantifier, "index", index_schema, None, "inlj",
                (index_schema, probe_exprs), out_rows, cost, new_conjuncts,
            ))
        # Hash join on any equi conjunct of the match condition.
        if any(c.equi is not None for c in condition_conjuncts):
            hash_cost = (
                info.seq_scan_cost  # build side must be produced once
                + self.cost_model.hash_join(
                    info.filtered_rows, prefix_rows, info.row_bytes,
                    self.cost_model.ctx.soft_limit_pages, out_rows,
                )
            )
            produced.append(_Step(
                quantifier, info.access_kind, None, None, "hash", None,
                out_rows, hash_cost, new_conjuncts,
            ))
        return produced

    def _probe_options(self, quantifier, placed, conjuncts):
        if not self.use_indexes:
            return
        if quantifier.kind != Quantifier.BASE:
            return
        info = self.info[quantifier.id]
        table = quantifier.schema
        for index_schema in self.catalog.indexes_on(table.name):
            if index_schema.btree is None:
                continue
            leading = index_schema.column_names[0]
            leading_index = table.column_index(leading)
            for conjunct in conjuncts:
                if conjunct.equi is None:
                    continue
                (qa, ca), (qb, cb) = conjunct.equi
                if qa == quantifier.id and ca == leading_index and qb in placed:
                    probe_expr = conjunct.expr.right if (
                        conjunct.expr.left.quantifier_id == quantifier.id
                    ) else conjunct.expr.left
                elif qb == quantifier.id and cb == leading_index and qa in placed:
                    probe_expr = conjunct.expr.left if (
                        conjunct.expr.left.quantifier_id != quantifier.id
                    ) else conjunct.expr.right
                else:
                    continue
                btree = index_schema.btree
                rows_per_probe = max(
                    1.0,
                    info.base_rows / max(1.0, float(btree.stats.distinct_keys or 1)),
                )
                clustering = info.clustering.get(index_schema.name, 0.5)
                resident = self.cost_model.ctx.resident_fraction(
                    quantifier.schema.storage
                )
                cold = self.cost_model.index_probe(
                    btree.height, btree.stats.leaf_page_count,
                    info.table_pages, rows_per_probe, clustering, resident,
                )
                warm = self.cost_model.index_probe(
                    btree.height, btree.stats.leaf_page_count,
                    info.table_pages, rows_per_probe, clustering, 1.0,
                )
                warmup = (1.0 - resident) * (
                    btree.stats.leaf_page_count + info.table_pages
                )
                # The warm state is only reachable if the pages fit in the
                # pool at all.
                if warmup > self.cost_model.ctx.pool_pages:
                    warm = cold
                yield index_schema, [probe_expr], cold, warm, warmup
                break  # one probe option per index

    # ------------------------------------------------------------------ #
    # cardinality arithmetic
    # ------------------------------------------------------------------ #

    def _join_selectivity(self, quantifier, placed, conjuncts):
        selectivity = 1.0
        for conjunct in conjuncts:
            if not conjunct.is_join:
                selectivity *= self.estimator.local_selectivity(
                    conjunct.expr, quantifier
                )
                continue
            other_id = next(
                (ref for ref in conjunct.refs if ref != quantifier.id), None
            )
            if other_id is None or other_id not in placed:
                continue
            other = self.block.quantifier(other_id)
            selectivity *= self.estimator.join_conjunct_selectivity(
                conjunct, other, quantifier
            )
        return selectivity

    def _out_rows(self, quantifier, placed, prefix_rows, filtered_rows,
                  join_selectivity):
        if not placed:
            return max(1.0, filtered_rows)
        inner = prefix_rows * filtered_rows * join_selectivity
        if quantifier.join_type == Quantifier.SEMI:
            return max(1.0, min(prefix_rows, inner))
        if quantifier.join_type == Quantifier.ANTI:
            return max(1.0, prefix_rows - min(prefix_rows, inner))
        if quantifier.join_type == Quantifier.LEFT:
            return max(prefix_rows, inner, 1.0)
        return max(1.0, inner)


class QuantifierInfo:
    """Precomputed per-quantifier facts the enumerator consumes."""

    def __init__(self):
        self.base_rows = 1.0
        self.filtered_rows = 1.0
        self.table_pages = 1
        self.row_bytes = 64
        self.access_kind = "seq"
        self.seq_scan_cost = 0.0
        #: Cost of re-scanning during NLJ (optimistic buffering applied).
        self.repeat_scan_cost = 0.0
        #: [(index_schema, sarg, cost, rows)] sargable options at level 1.
        self.index_access_options = []
        self.local_conjuncts = []
        #: Single-quantifier WHERE conjuncts on a null-supplied (LEFT)
        #: quantifier: they must filter *after* the outer join, never
        #: inside its scan, or NULL-extended rows survive wrongly.
        self.post_join_conjuncts = []
        self.clustering = {}  # index name -> clustering fraction
        #: Optimized sub-plan for derived/procedure quantifiers.
        self.sub_plan = None
