"""The top-level optimizer: blocks in, physical plans out.

SQL Anywhere "(re)optimizes a query at each invocation", with two
exceptions reproduced here: simple single-table DML bypasses the cost-based
optimizer entirely (heuristic path), and statements inside stored
procedures go through the plan cache (:mod:`repro.optimizer.plancache`).
"""

import math

from repro.common.errors import OptimizerError
from repro.optimizer.costmodel import CostModel, CPU_ROW_US
from repro.optimizer.enumeration import (
    JoinEnumerator,
    OptimizerGovernor,
    QuantifierInfo,
)
from repro.optimizer.plans import (
    DerivedScanPlan,
    FilterPlan,
    HashDistinctPlan,
    HashGroupByPlan,
    HashJoinPlan,
    HavingPlan,
    IndexNLJoinPlan,
    IndexScanPlan,
    LimitPlan,
    NLJoinPlan,
    ProcedureScanPlan,
    ProjectPlan,
    RecursiveRefScanPlan,
    SeqScanPlan,
    SortPlan,
)
from repro.sql import ast
from repro.sql.binder import (
    BoundDelete,
    BoundInsert,
    BoundUpdate,
    Quantifier,
    QueryBlock,
)

#: Default visit quota for the governor ("the initial quota can be
#: specified within the application, if desired").
DEFAULT_QUOTA = 5000


class OptimizerResult:
    """A plan plus how it was obtained."""

    def __init__(self, plan, block=None, stats=None, bypassed=False,
                 cost=0.0, recursive_cte=None):
        self.plan = plan
        self.block = block
        self.stats = stats
        self.bypassed = bypassed
        self.cost = cost
        self.recursive_cte = recursive_cte

    def explain(self):
        return self.plan.explain() if self.plan is not None else "<no plan>"


class Optimizer:
    """Cost-based optimizer over one catalog + statistics + cost context."""

    def __init__(self, catalog, estimator, cost_context, quota=DEFAULT_QUOTA,
                 governor_mode="governor", metrics=None, effort_factor=None,
                 use_indexes=True):
        self.catalog = catalog
        self.estimator = estimator
        self.cost_context = cost_context
        self.cost_model = CostModel(cost_context)
        self.quota = quota
        self.governor_mode = governor_mode
        self.effort_factor = effort_factor
        self.last_stats = None
        self.metrics = metrics
        #: When False every SELECT access path falls back to heap scans:
        #: no sargable index options, no index-NL probes, no hash-join
        #: index alternates.  DML's heuristic bypass keeps its index picks
        #: (it must still locate rows to modify efficiently).
        self.use_indexes = use_indexes

    # ------------------------------------------------------------------ #
    # entry points
    # ------------------------------------------------------------------ #

    def optimize(self, bound):
        """Optimize any bound statement."""
        if isinstance(bound, QueryBlock):
            return self.optimize_select(bound)
        if isinstance(bound, BoundInsert):
            return OptimizerResult(None, bypassed=True)
        if isinstance(bound, BoundUpdate):
            return self.optimize_simple_dml(bound)
        if isinstance(bound, BoundDelete):
            return self.optimize_simple_dml(bound)
        raise OptimizerError("cannot optimize %r" % (type(bound).__name__,))

    def optimize_select(self, block, quota=None):
        """Full cost-based optimization of a query block."""
        recursive_cte = block.with_recursive
        plan, cost, stats = self._optimize_block(block, quota)
        self.last_stats = stats
        if self.metrics is not None:
            self.metrics.counter("optimizer.optimizations").inc()
            if stats is not None:
                self.metrics.counter("optimizer.nodes_visited").inc(
                    stats.nodes_visited
                )
        return OptimizerResult(
            plan, block, stats, cost=cost, recursive_cte=recursive_cte
        )

    def optimize_simple_dml(self, bound):
        """The heuristic bypass path (Section 4.1): single-table DML whose
        optimization cost would approach its execution cost skips the
        cost-based optimizer and picks an obvious index."""
        quantifier = bound.quantifier
        local = list(bound.conjuncts)
        access = self._heuristic_access(quantifier, local)
        access.est_rows = max(1.0, quantifier.schema.row_count * 0.1)
        if self.metrics is not None:
            self.metrics.counter("optimizer.bypassed").inc()
        return OptimizerResult(access, bypassed=True)

    def _heuristic_access(self, quantifier, conjuncts):
        table = quantifier.schema
        for index_schema in self.catalog.indexes_on(table.name):
            if index_schema.btree is None:
                continue
            leading = table.column_index(index_schema.column_names[0])
            for conjunct in conjuncts:
                sarg = _eq_sarg_for(conjunct.expr, quantifier.id, leading)
                if sarg is not None:
                    residual = [c for c in conjuncts if c is not conjunct]
                    return IndexScanPlan(
                        quantifier, index_schema, {"eq": [sarg]}, residual
                    )
        return SeqScanPlan(quantifier, conjuncts)

    # ------------------------------------------------------------------ #
    # block optimization
    # ------------------------------------------------------------------ #

    def _optimize_block(self, block, quota=None):
        if not block.quantifiers:
            plan = self._finish_plan(ProjectSource(), block)
            return plan, plan.est_cost_us, None
        info = {
            quantifier.id: self._quantifier_info(quantifier, block)
            for quantifier in block.quantifiers
        }
        governor = OptimizerGovernor(
            quota if quota is not None else self.quota, self.governor_mode,
            effort_factor=self.effort_factor,
        )
        enumerator = JoinEnumerator(
            block, self.cost_model, self.estimator, self.catalog,
            governor, info, use_indexes=self.use_indexes,
        )
        steps, stats = enumerator.enumerate()
        join_plan = self._build_join_tree(steps, block, info)
        constant_conjuncts = [
            conjunct for conjunct in block.conjuncts if not conjunct.refs
        ]
        if constant_conjuncts:
            filtered = FilterPlan(join_plan, constant_conjuncts)
            filtered.est_rows = join_plan.est_rows
            filtered.est_cost_us = join_plan.est_cost_us
            join_plan = filtered
        plan = self._finish_plan(join_plan, block)
        return plan, plan.est_cost_us, stats

    # ------------------------------------------------------------------ #
    # per-quantifier info
    # ------------------------------------------------------------------ #

    def _quantifier_info(self, quantifier, block):
        info = QuantifierInfo()
        single_refs = [
            conjunct
            for conjunct in block.conjuncts
            if conjunct.refs == frozenset({quantifier.id})
        ]
        if quantifier.join_type == Quantifier.LEFT:
            # WHERE conjuncts on the null-supplied side filter after the
            # outer join (pushing them into the scan would NULL-extend
            # rows the WHERE clause is supposed to eliminate).
            info.post_join_conjuncts = single_refs
            info.local_conjuncts = []
        else:
            info.local_conjuncts = single_refs
        local_selectivity = 1.0
        for conjunct in info.local_conjuncts:
            local_selectivity *= self.estimator.local_selectivity(
                conjunct.expr, quantifier
            )
        if quantifier.kind == Quantifier.BASE:
            self._base_info(quantifier, info, local_selectivity)
        elif quantifier.kind == Quantifier.PROCEDURE:
            stats = None
            if quantifier.procedure.stats is not None:
                stats = quantifier.procedure.stats
            if stats is not None:
                cpu, cardinality = stats.estimate(None)
            else:
                cpu, cardinality = 1000.0, 100.0
            info.base_rows = max(1.0, cardinality)
            info.filtered_rows = max(1.0, cardinality * local_selectivity)
            info.seq_scan_cost = cpu + info.base_rows * CPU_ROW_US
            info.repeat_scan_cost = info.base_rows * CPU_ROW_US
            info.access_kind = "procedure"
            info.sub_plan = self._optimize_block(quantifier.block)[0]
        elif quantifier.kind == Quantifier.RECURSIVE_REF:
            info.base_rows = 64.0  # working-table guess
            info.filtered_rows = max(1.0, info.base_rows * local_selectivity)
            info.seq_scan_cost = info.base_rows * CPU_ROW_US
            info.repeat_scan_cost = info.seq_scan_cost
            info.access_kind = "recursive"
        else:  # DERIVED
            sub_plan, sub_cost, __ = self._optimize_block(quantifier.block)
            info.sub_plan = sub_plan
            info.base_rows = max(1.0, sub_plan.est_rows)
            info.filtered_rows = max(1.0, info.base_rows * local_selectivity)
            info.row_bytes = 16 + 8 * max(1, len(quantifier.columns))
            info.seq_scan_cost = sub_cost + info.base_rows * CPU_ROW_US
            info.repeat_scan_cost = info.base_rows * CPU_ROW_US
            info.access_kind = "derived"
        return info

    def _base_info(self, quantifier, info, local_selectivity):
        table = quantifier.schema
        storage = table.storage
        info.base_rows = max(1.0, float(table.row_count))
        info.filtered_rows = max(1.0, info.base_rows * local_selectivity)
        info.table_pages = max(1, storage.page_count if storage else 1)
        info.row_bytes = table.row_bytes()
        resident = self.cost_context.resident_fraction(storage)
        n_predicates = len(info.local_conjuncts)
        info.seq_scan_cost = self.cost_model.seq_scan(
            info.table_pages, info.base_rows, n_predicates, resident
        )
        info.repeat_scan_cost = self.cost_model.seq_scan(
            info.table_pages, info.base_rows, n_predicates,
            self.cost_context.optimistic_resident_fraction(info.table_pages),
        )
        for index_schema in self.catalog.indexes_on(table.name):
            if index_schema.btree is None:
                continue
            info.clustering[index_schema.name] = (
                index_schema.btree.cached_clustering()
            )
            if not self.use_indexes:
                continue
            option = self._sargable_option(
                quantifier, info, index_schema, resident
            )
            if option is not None:
                info.index_access_options.append(option)

    def _sargable_option(self, quantifier, info, index_schema, resident):
        table = quantifier.schema
        leading_index = table.column_index(index_schema.column_names[0])
        sarg = None
        sarg_conjunct = None
        for conjunct in info.local_conjuncts:
            eq_value = _eq_sarg_for(conjunct.expr, quantifier.id, leading_index)
            if eq_value is not None:
                sarg = {"eq": [eq_value]}
                sarg_conjunct = conjunct
                break
            range_sarg = _range_sarg_for(
                conjunct.expr, quantifier.id, leading_index
            )
            if range_sarg is not None:
                sarg = range_sarg
                sarg_conjunct = conjunct
                break
        if sarg is None:
            return None
        selectivity = self.estimator.local_selectivity(
            sarg_conjunct.expr, quantifier
        )
        matching = max(1.0, info.base_rows * selectivity)
        btree = index_schema.btree
        cost = self.cost_model.index_scan(
            btree.height,
            btree.stats.leaf_page_count,
            info.table_pages,
            matching,
            info.clustering.get(index_schema.name, 0.5),
            resident,
            n_residual_predicates=max(0, len(info.local_conjuncts) - 1),
        )
        residual_selectivity = 1.0
        for conjunct in info.local_conjuncts:
            if conjunct is not sarg_conjunct:
                residual_selectivity *= self.estimator.local_selectivity(
                    conjunct.expr, quantifier
                )
        rows = max(1.0, matching * residual_selectivity)
        return (index_schema, sarg, cost, rows)

    # ------------------------------------------------------------------ #
    # plan construction
    # ------------------------------------------------------------------ #

    def _build_join_tree(self, steps, block, info):
        first = steps[0]
        plan = self._access_plan(first, block, info, sarg=first.sarg,
                                 index_schema=first.index_schema)
        plan.est_rows = first.out_rows
        plan.est_cost_us = first.step_cost
        cumulative = first.step_cost
        for step in steps[1:]:
            quantifier = step.quantifier
            conjuncts = list(step.new_conjuncts)
            post_join_filter = []
            if quantifier.join_type == Quantifier.LEFT:
                # Only the ON condition decides matching (and hence
                # NULL-extension); WHERE conjuncts placed at this step
                # filter the joined rows afterwards.
                post_join_filter = conjuncts + list(
                    info[quantifier.id].post_join_conjuncts
                )
                conjuncts = list(quantifier.on_conjuncts)
            elif quantifier.join_type in (Quantifier.SEMI, Quantifier.ANTI):
                conjuncts = conjuncts + list(quantifier.on_conjuncts)
            join_type = quantifier.join_type
            cumulative += step.step_cost
            if step.join_method == "inlj":
                index_schema, probe_exprs = step.probe_info
                node = IndexNLJoinPlan(
                    plan, None, join_type, conjuncts, index_schema,
                    probe_exprs,
                )
                node.quantifier = quantifier
                node.local_conjuncts = info[quantifier.id].local_conjuncts
            elif step.join_method == "hash":
                right = self._access_plan(step, block, info)
                build_keys, probe_keys = _hash_keys(conjuncts, quantifier.id)
                node = HashJoinPlan(
                    plan, right, join_type, conjuncts, build_keys, probe_keys
                )
                node.memory_pages = self.cost_context.soft_limit_pages
                self._attach_alternate(node, steps, step, block, info)
            else:
                right = self._access_plan(step, block, info)
                node = NLJoinPlan(plan, right, join_type, conjuncts)
            node.est_rows = step.out_rows
            node.est_cost_us = cumulative
            if post_join_filter:
                filtered = FilterPlan(node, post_join_filter)
                filtered.est_rows = node.est_rows
                filtered.est_cost_us = node.est_cost_us
                node = filtered
            plan = node
        return plan

    def _access_plan(self, step, block, info, sarg=None, index_schema=None):
        quantifier = step.quantifier
        q_info = info[quantifier.id]
        local = list(q_info.local_conjuncts)
        if quantifier.kind == Quantifier.BASE:
            if sarg is not None and index_schema is not None:
                plan = IndexScanPlan(quantifier, index_schema, sarg, local)
            else:
                plan = SeqScanPlan(quantifier, local)
        elif quantifier.kind == Quantifier.PROCEDURE:
            plan = ProcedureScanPlan(quantifier, q_info.sub_plan)
        elif quantifier.kind == Quantifier.RECURSIVE_REF:
            plan = RecursiveRefScanPlan(quantifier)
            if local:
                plan.est_rows = q_info.filtered_rows
                plan.est_cost_us = q_info.seq_scan_cost
                plan = FilterPlan(plan, local)
        else:
            plan = DerivedScanPlan(quantifier, q_info.sub_plan, local)
        plan.est_rows = q_info.filtered_rows
        plan.est_cost_us = q_info.seq_scan_cost
        return plan

    def _attach_alternate(self, hash_node, steps, step, block, info):
        """Annotate a hash join with an index-NL alternate (Section 4.3).

        Applicable when the probe side is a single base quantifier with an
        index on the probe column: if the build input turns out tiny, the
        executor probes that index per build row instead of scanning the
        probe side."""
        if not self.use_indexes:
            return
        placed_steps = steps[: steps.index(step)]
        if len(placed_steps) != 1:
            return
        probe_q = placed_steps[0].quantifier
        if probe_q.kind != Quantifier.BASE:
            return
        equi_conjunct = next(
            (c for c in hash_node.conjuncts if c.equi), None
        )
        if equi_conjunct is None:
            return
        (qa, ca), (qb, cb) = equi_conjunct.equi
        probe_col = ca if qa == probe_q.id else cb if qb == probe_q.id else None
        if probe_col is None:
            return
        table = probe_q.schema
        column_name = table.columns[probe_col].name
        for index_schema in self.catalog.indexes_on(table.name):
            if index_schema.btree is None:
                continue
            if index_schema.column_names[0] != column_name:
                continue
            build_side_expr = (
                equi_conjunct.expr.left
                if getattr(equi_conjunct.expr.left, "quantifier_id", None)
                != probe_q.id
                else equi_conjunct.expr.right
            )
            # The alternate always probes with inner-join emission: for a
            # semi join the executor deduplicates the build keys instead,
            # so the probed (probe-side) rows flow out exactly once.
            alternate = IndexNLJoinPlan(
                None, None, Quantifier.INNER, hash_node.conjuncts,
                index_schema, [build_side_expr],
            )
            alternate.quantifier = probe_q
            alternate.local_conjuncts = info[probe_q.id].local_conjuncts
            hash_node.alternate = alternate
            # Crossover: probing per build row beats scanning the probe
            # side when rows * probe_cost < probe-scan cost.
            q_info = info[probe_q.id]
            btree = index_schema.btree
            probe_cost = self.cost_model.index_probe(
                btree.height, btree.stats.leaf_page_count,
                q_info.table_pages, 1.0,
                q_info.clustering.get(index_schema.name, 0.5),
                self.cost_context.resident_fraction(table.storage),
            )
            hash_node.alternate_threshold = max(
                1, int(q_info.seq_scan_cost / max(probe_cost, 1e-6))
            )
            return

    # ------------------------------------------------------------------ #
    # post-join shaping (aggregation, ordering, projection)
    # ------------------------------------------------------------------ #

    def _finish_plan(self, plan, block):
        rows = max(1.0, getattr(plan, "est_rows", 1.0))
        cost = getattr(plan, "est_cost_us", 0.0)
        if block.is_aggregate:
            groups = self._estimate_groups(block, rows)
            node = HashGroupByPlan(plan, block.group_keys, block.aggregates)
            node.memory_pages = self.cost_context.soft_limit_pages
            group_bytes = 16 + 8 * (len(block.group_keys) + len(block.aggregates))
            cost += self.cost_model.hash_group_by(
                rows, groups, group_bytes, node.memory_pages
            )
            node.est_rows = groups
            node.est_cost_us = cost
            plan, rows = node, groups
            if block.having_conjuncts:
                node = HavingPlan(plan, block.having_conjuncts)
                rows = max(1.0, rows * 0.5)
                node.est_rows = rows
                node.est_cost_us = cost
                plan = node
        if block.order_by:
            node = SortPlan(plan, block.order_by)
            node.memory_pages = self.cost_context.soft_limit_pages
            cost += self.cost_model.sort(rows, 64, node.memory_pages)
            node.est_rows = rows
            node.est_cost_us = cost
            plan = node
        node = ProjectPlan(plan, block.select_items)
        node.est_rows = rows
        node.est_cost_us = cost + rows * CPU_ROW_US
        plan = node
        cost = plan.est_cost_us
        if block.distinct:
            node = HashDistinctPlan(plan)
            node.memory_pages = self.cost_context.soft_limit_pages
            distinct_rows = max(1.0, rows * 0.8)
            cost += self.cost_model.hash_distinct(
                rows, distinct_rows, 32, node.memory_pages
            )
            node.est_rows = distinct_rows
            node.est_cost_us = cost
            plan, rows = node, distinct_rows
        if block.limit is not None:
            node = LimitPlan(plan, block.limit)
            node.est_rows = min(rows, float(block.limit))
            node.est_cost_us = cost
            plan = node
        return plan

    def _estimate_groups(self, block, input_rows):
        if not block.group_keys:
            return 1.0
        distinct = 1.0
        for expr, __, __t in block.group_keys:
            distinct *= self._distinct_estimate(expr, block, input_rows)
        return max(1.0, min(input_rows, distinct))

    def _distinct_estimate(self, expr, block, input_rows):
        if isinstance(expr, ast.ColumnRef) and expr.bound:
            try:
                quantifier = block.quantifier(expr.quantifier_id)
            except KeyError:
                quantifier = None
            if quantifier is not None and quantifier.kind == Quantifier.BASE:
                histogram = self.estimator.stats.histogram(
                    quantifier.schema.name, expr.column_index
                )
                if histogram is not None and histogram.total_count() > 0:
                    return max(
                        1.0,
                        histogram.distinct_nonsingleton
                        + histogram.singleton_count,
                    )
        return max(1.0, math.sqrt(input_rows))


class ProjectSource:
    """Placeholder child for FROM-less selects (``SELECT 1 + 1``)."""

    est_rows = 1.0
    est_cost_us = 0.0

    @property
    def children(self):
        return []

    def describe(self):
        return "SingleRow"

    def tree_lines(self, indent=0):
        return ["%sSingleRow" % ("  " * indent,)]

    def walk(self):
        yield self


# --------------------------------------------------------------------- #
# sarg helpers
# --------------------------------------------------------------------- #

def _eq_sarg_for(expr, qid, column_index):
    """The comparand expression when ``expr`` is `col = <expr>` for the
    given column (literal/parameter comparand only)."""
    if not isinstance(expr, ast.BinaryOp) or expr.op != "=":
        return None
    for column_side, value_side in (
        (expr.left, expr.right), (expr.right, expr.left)
    ):
        if (
            isinstance(column_side, ast.ColumnRef)
            and column_side.bound
            and column_side.quantifier_id == qid
            and column_side.column_index == column_index
            and isinstance(value_side, (ast.Literal, ast.Parameter))
        ):
            return value_side
    return None


def _range_sarg_for(expr, qid, column_index):
    """A range sarg dict for `col <op> literal` / BETWEEN."""
    if isinstance(expr, ast.Between) and not expr.negated:
        operand = expr.operand
        if (
            isinstance(operand, ast.ColumnRef)
            and operand.quantifier_id == qid
            and operand.column_index == column_index
            and isinstance(expr.low, (ast.Literal, ast.Parameter))
            and isinstance(expr.high, (ast.Literal, ast.Parameter))
        ):
            return {"low": expr.low, "low_inclusive": True,
                    "high": expr.high, "high_inclusive": True}
    if not isinstance(expr, ast.BinaryOp):
        return None
    if expr.op not in ("<", "<=", ">", ">="):
        return None
    for column_side, value_side, flip in (
        (expr.left, expr.right, False), (expr.right, expr.left, True)
    ):
        if (
            isinstance(column_side, ast.ColumnRef)
            and column_side.bound
            and column_side.quantifier_id == qid
            and column_side.column_index == column_index
            and isinstance(value_side, (ast.Literal, ast.Parameter))
        ):
            op = expr.op
            if flip:
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
            if op == "<":
                return {"high": value_side, "high_inclusive": False}
            if op == "<=":
                return {"high": value_side, "high_inclusive": True}
            if op == ">":
                return {"low": value_side, "low_inclusive": False}
            return {"low": value_side, "low_inclusive": True}
    return None


def _hash_keys(conjuncts, build_qid):
    """(build_keys, probe_keys) from the equi conjuncts of a hash join."""
    build_keys, probe_keys = [], []
    for conjunct in conjuncts:
        if conjunct.equi is None:
            continue
        (qa, __), (qb, __b) = conjunct.equi
        left_expr, right_expr = conjunct.expr.left, conjunct.expr.right
        if left_expr.quantifier_id == build_qid:
            build_keys.append(left_expr)
            probe_keys.append(right_expr)
        else:
            build_keys.append(right_expr)
            probe_keys.append(left_expr)
    return build_keys, probe_keys
