"""Plan caching for statements in stored procedures (paper Section 4.1).

"For these statements, access plans are cached on an LRU basis for each
connection.  A statement's plan is only cached, however, if the access
plans obtained by successive optimizations of that statement during a
'training period' are identical.  After the training period is over, the
cached plan is used for subsequent invocations.  However, to ensure the
plan remains 'fresh', the statement is periodically verified at intervals
taken from a decaying logarithmic scale."
"""

import collections

#: Consecutive identical optimizations required before caching.
TRAINING_PERIOD = 3

#: Verification schedule after training: re-optimize at these use counts
#: (decaying logarithmic scale: checks become exponentially rarer).  Past
#: the last entry the schedule keeps doubling unboundedly — see
#: :meth:`PlanCache._due_for_verification` — so a long-lived cached plan
#: is never pinned stale forever.
VERIFY_SCHEDULE = (4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Cached plans per connection (LRU beyond this).
MAX_CACHED_PLANS = 64


class _Entry:
    __slots__ = (
        "signatures", "plan", "result", "trained", "uses_since_cache",
        "verifications", "invalidations",
    )

    def __init__(self):
        self.signatures = []
        self.plan = None
        self.result = None
        self.trained = False
        self.uses_since_cache = 0
        self.verifications = 0
        self.invalidations = 0


class PlanCache:
    """One connection's plan cache."""

    def __init__(self, training_period=TRAINING_PERIOD,
                 verify_schedule=VERIFY_SCHEDULE,
                 max_entries=MAX_CACHED_PLANS, metrics=None):
        self.training_period = training_period
        self.verify_schedule = tuple(verify_schedule)
        self.max_entries = max_entries
        self._entries = collections.OrderedDict()
        # Counters for the plan-cache experiment (E11).
        self.hits = 0
        self.optimizations = 0
        self.verifications = 0
        self.invalidations = 0
        self._metrics = metrics

    def _count(self, name, n=1):
        """Bump both the local experiment counter and the shared registry."""
        setattr(self, name, getattr(self, name) + n)
        if self._metrics is not None:
            self._metrics.counter("plancache." + name).inc(n)

    def _due_for_verification(self, uses):
        """Whether a cached plan must be re-verified at this use count.

        The configured schedule covers the early life of a plan; beyond
        its last entry the "decaying logarithmic scale" keeps doubling
        (every power-of-two use count), so no plan is pinned forever.
        """
        if uses in self.verify_schedule:
            return True
        last = self.verify_schedule[-1] if self.verify_schedule else 0
        if uses <= last:
            return False
        return uses >= 4 and (uses & (uses - 1)) == 0

    def execute_plan_for(self, statement_key, optimize_fn, signature_fn):
        """The cache protocol: returns an OptimizerResult.

        ``optimize_fn()`` runs a full optimization; ``signature_fn(result)``
        produces a comparable plan signature.  During training, every call
        optimizes; once ``training_period`` successive optimizations agree,
        the plan is cached and reused, re-verified at use counts from the
        decaying logarithmic schedule.
        """
        entry = self._entries.get(statement_key)
        if entry is None:
            entry = _Entry()
            self._entries[statement_key] = entry
            self._evict()
        else:
            self._entries.move_to_end(statement_key)

        if entry.trained:
            entry.uses_since_cache += 1
            if self._due_for_verification(entry.uses_since_cache):
                # Periodic freshness check: re-optimize and compare.
                self._count("verifications")
                entry.verifications += 1
                self._count("optimizations")
                result = optimize_fn()
                signature = signature_fn(result)
                if signature != entry.signatures[-1]:
                    # Stale: drop back into training with the new plan.
                    self._count("invalidations")
                    entry.invalidations += 1
                    entry.trained = False
                    entry.signatures = [signature]
                    entry.uses_since_cache = 0
                    entry.result = result
                    return result
                entry.result = result
                return result
            self._count("hits")
            return entry.result

        # Training: optimize and compare with prior plans.
        self._count("optimizations")
        result = optimize_fn()
        signature = signature_fn(result)
        entry.signatures.append(signature)
        entry.result = result
        if len(entry.signatures) >= self.training_period:
            recent = entry.signatures[-self.training_period:]
            if all(s == recent[0] for s in recent):
                entry.trained = True
                entry.uses_since_cache = 0
        return result

    def is_cached(self, statement_key):
        entry = self._entries.get(statement_key)
        return entry is not None and entry.trained

    def entry_count(self):
        return len(self._entries)

    def _evict(self):
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)


def plan_signature(result):
    """A structural signature of a plan for identity comparison."""
    if result.plan is None:
        return "<none>"
    parts = []
    for node in result.plan.walk():
        parts.append(node.describe())
    return "|".join(parts)
