"""Physical plan nodes.

Plans are small descriptive trees the executor interprets.  Every node
carries the optimizer's estimates (``est_rows``, ``est_cost_us``) so
adaptive operators can compare predictions with reality at run time —
the hash join's alternate index-nested-loops strategy (Section 4.3) is an
annotation placed here by the optimizer.
"""


class PlanNode:
    """Base class for plan nodes."""

    def __init__(self):
        self.est_rows = 0.0
        self.est_cost_us = 0.0
        #: Memory annotation from the optimizer (pages this operator may
        #: use), derived from the memory governor's predicted soft limit.
        self.memory_pages = None

    @property
    def children(self):
        return []

    def tree_lines(self, indent=0):
        """Human-readable plan rendering."""
        label = "%s%s  (rows=%.0f, cost=%.0fus)" % (
            "  " * indent, self.describe(), self.est_rows, self.est_cost_us
        )
        lines = [label]
        for child in self.children:
            lines.extend(child.tree_lines(indent + 1))
        return lines

    def describe(self):
        return type(self).__name__

    def explain(self):
        return "\n".join(self.tree_lines())

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


class SeqScanPlan(PlanNode):
    """Sequential scan of a base table, with pushed-down local filters."""

    def __init__(self, quantifier, local_conjuncts):
        super().__init__()
        self.quantifier = quantifier
        self.local_conjuncts = local_conjuncts

    def describe(self):
        return "SeqScan(%s%s)" % (
            self.quantifier.alias,
            ", %d filters" % len(self.local_conjuncts) if self.local_conjuncts else "",
        )


class IndexScanPlan(PlanNode):
    """B+-tree scan with sargable bounds from local predicates."""

    def __init__(self, quantifier, index_schema, sarg, local_conjuncts):
        super().__init__()
        self.quantifier = quantifier
        self.index_schema = index_schema
        #: Sarg: dict with optional 'eq' (list of bound exprs for leading
        #: columns), 'low'/'high' (bound expr, inclusive flags).
        self.sarg = sarg
        self.local_conjuncts = local_conjuncts  # residual filters

    def describe(self):
        return "IndexScan(%s via %s)" % (
            self.quantifier.alias, self.index_schema.name
        )


class DerivedScanPlan(PlanNode):
    """Materialized scan of a derived table / view (its own sub-plan)."""

    def __init__(self, quantifier, sub_plan, local_conjuncts):
        super().__init__()
        self.quantifier = quantifier
        self.sub_plan = sub_plan
        self.local_conjuncts = local_conjuncts

    @property
    def children(self):
        return [self.sub_plan]

    def describe(self):
        return "DerivedScan(%s)" % (self.quantifier.alias,)


class ProcedureScanPlan(PlanNode):
    """A stored procedure evaluated in FROM (its body plan is nested)."""

    def __init__(self, quantifier, body_plan):
        super().__init__()
        self.quantifier = quantifier
        self.body_plan = body_plan

    @property
    def children(self):
        return [self.body_plan]

    def describe(self):
        return "ProcedureScan(%s)" % (self.quantifier.alias,)


class RecursiveRefScanPlan(PlanNode):
    """Scan of the recursive CTE's working table."""

    def __init__(self, quantifier):
        super().__init__()
        self.quantifier = quantifier

    def describe(self):
        return "RecursiveRefScan(%s)" % (self.quantifier.alias,)


class FilterPlan(PlanNode):
    def __init__(self, child, conjuncts):
        super().__init__()
        self.child = child
        self.conjuncts = conjuncts

    @property
    def children(self):
        return [self.child]

    def describe(self):
        return "Filter(%d conjuncts)" % (len(self.conjuncts),)


class _JoinPlan(PlanNode):
    """Common bits of the three join nodes.

    ``join_type`` is 'inner' | 'left' | 'semi' | 'anti'.
    """

    def __init__(self, left, right, join_type, conjuncts):
        super().__init__()
        self.left = left
        self.right = right
        self.join_type = join_type
        self.conjuncts = conjuncts

    @property
    def children(self):
        # Index-NL joins probe a base table directly: no right child plan.
        return [child for child in (self.left, self.right) if child is not None]


class NLJoinPlan(_JoinPlan):
    def describe(self):
        return "NestedLoopJoin(%s)" % (self.join_type,)


class IndexNLJoinPlan(_JoinPlan):
    """Index nested loops: probe the right side's index per outer row."""

    def __init__(self, left, right, join_type, conjuncts, index_schema,
                 probe_keys):
        super().__init__(left, right, join_type, conjuncts)
        self.index_schema = index_schema
        #: Bound expressions (over the outer row) producing probe values
        #: for the index's leading columns.
        self.probe_keys = probe_keys

    def describe(self):
        return "IndexNLJoin(%s via %s)" % (self.join_type, self.index_schema.name)


class HashJoinPlan(_JoinPlan):
    """Hash join; build side is the RIGHT child (the new quantifier).

    ``alternate`` may hold an :class:`IndexNLJoinPlan` the executor can
    switch to when the build input turns out small enough that index
    nested loops would have been cheaper (Section 4.3).
    """

    def __init__(self, left, right, join_type, conjuncts, build_keys,
                 probe_keys):
        super().__init__(left, right, join_type, conjuncts)
        self.build_keys = build_keys  # exprs over right (build) rows
        self.probe_keys = probe_keys  # exprs over left (probe) rows
        self.alternate = None
        #: Build-row threshold below which the alternate wins (set by the
        #: optimizer from its cost crossover).
        self.alternate_threshold = None

    def describe(self):
        suffix = ", alt=indexNL" if self.alternate is not None else ""
        return "HashJoin(%s%s)" % (self.join_type, suffix)


class HashGroupByPlan(PlanNode):
    def __init__(self, child, group_keys, aggregates):
        super().__init__()
        self.child = child
        self.group_keys = group_keys    # [(expr, name, type)]
        self.aggregates = aggregates    # [FunctionCall]

    @property
    def children(self):
        return [self.child]

    def describe(self):
        return "HashGroupBy(%d keys, %d aggs)" % (
            len(self.group_keys), len(self.aggregates)
        )


class HashDistinctPlan(PlanNode):
    def __init__(self, child):
        super().__init__()
        self.child = child

    @property
    def children(self):
        return [self.child]


class SortPlan(PlanNode):
    def __init__(self, child, sort_keys):
        super().__init__()
        self.child = child
        self.sort_keys = sort_keys  # [(expr, ascending)]

    @property
    def children(self):
        return [self.child]

    def describe(self):
        return "Sort(%d keys)" % (len(self.sort_keys),)


class ProjectPlan(PlanNode):
    def __init__(self, child, items):
        super().__init__()
        self.child = child
        self.items = items  # [(expr, name, type)]

    @property
    def children(self):
        return [self.child]

    def describe(self):
        return "Project(%s)" % (", ".join(name for __, name, __t in self.items),)


class HavingPlan(PlanNode):
    def __init__(self, child, conjunct_exprs):
        super().__init__()
        self.child = child
        self.conjunct_exprs = conjunct_exprs

    @property
    def children(self):
        return [self.child]


class LimitPlan(PlanNode):
    def __init__(self, child, limit):
        super().__init__()
        self.child = child
        self.limit = limit

    @property
    def children(self):
        return [self.child]

    def describe(self):
        return "Limit(%d)" % (self.limit,)


class RecursiveUnionPlan(PlanNode):
    """Adaptive RECURSIVE UNION (Section 4.3): base plan plus a recursive
    arm re-planned/re-run per iteration against the working table."""

    def __init__(self, cte, base_plan):
        super().__init__()
        self.cte = cte
        self.base_plan = base_plan
        self.body_plan = None  # attached to the consuming block's plan

    @property
    def children(self):
        return [self.base_plan]

    def describe(self):
        return "RecursiveUnion(%s)" % (self.cte.name,)
