"""Selectivity estimation over the self-managing statistics.

Estimates consult, in order of preference: singleton/frequent-value
statistics and histograms, the long-string predicate buckets, index
statistics, referential-integrity constraints (for joins), and finally the
traditional magic numbers when nothing has been observed yet.
"""

from repro.sql import ast
from repro.sql.binder import Quantifier
from repro.stats.joinhist import join_selectivity as histogram_join_selectivity

#: Magic numbers used when no statistics exist (classic System R values).
DEFAULT_EQ = 0.10
DEFAULT_RANGE = 0.25
DEFAULT_LIKE = 0.05
DEFAULT_JOIN = 0.10
DEFAULT_GENERIC = 0.20


class SelectivityEstimator:
    """Estimates predicate and join selectivities for one catalog."""

    def __init__(self, stats_manager, catalog):
        self.stats = stats_manager
        self.catalog = catalog

    # ------------------------------------------------------------------ #
    # local (single-quantifier) predicates
    # ------------------------------------------------------------------ #

    def local_selectivity(self, expr, quantifier):
        """Selectivity of ``expr`` applied to ``quantifier``'s rows."""
        if isinstance(expr, ast.BinaryOp):
            if expr.op == "AND":
                return (
                    self.local_selectivity(expr.left, quantifier)
                    * self.local_selectivity(expr.right, quantifier)
                )
            if expr.op == "OR":
                left = self.local_selectivity(expr.left, quantifier)
                right = self.local_selectivity(expr.right, quantifier)
                return min(1.0, left + right - left * right)
            if expr.op in ("=", "<>", "<", "<=", ">", ">="):
                return self._comparison(expr, quantifier)
        if isinstance(expr, ast.UnaryOp) and expr.op == "NOT":
            return max(0.0, 1.0 - self.local_selectivity(expr.operand, quantifier))
        if isinstance(expr, ast.IsNull):
            return self._is_null(expr, quantifier)
        if isinstance(expr, ast.Between):
            return self._between(expr, quantifier)
        if isinstance(expr, ast.InList):
            return self._in_list(expr, quantifier)
        if isinstance(expr, ast.Like):
            return self._like(expr, quantifier)
        return DEFAULT_GENERIC

    def _comparison(self, expr, quantifier):
        column, value = _column_vs_value(expr.left, expr.right, quantifier)
        flipped = False
        if column is None:
            column, value = _column_vs_value(expr.right, expr.left, quantifier)
            flipped = True
        if column is None:
            return DEFAULT_EQ if expr.op == "=" else DEFAULT_RANGE
        histogram = self._histogram(quantifier, column.column_index)
        op = expr.op
        if flipped:
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if op == "=":
            if value is _UNKNOWN:
                return histogram.density() if histogram is not None else DEFAULT_EQ
            string_estimate = self._string_predicate(
                quantifier, column.column_index, "=", value
            )
            if string_estimate is not None:
                return string_estimate
            if histogram is not None and histogram.total_count() > 0:
                return histogram.estimate_eq(value)
            index_estimate = self._index_eq(quantifier, column.column_index)
            if index_estimate is not None:
                return index_estimate
            return DEFAULT_EQ
        if op == "<>":
            return max(0.0, 1.0 - self._eq_estimate(quantifier, column, value))
        # Range comparison.
        if value is _UNKNOWN or histogram is None or histogram.total_count() == 0:
            return DEFAULT_RANGE
        if op == "<":
            return histogram.estimate_range(high=value, high_inclusive=False)
        if op == "<=":
            return histogram.estimate_range(high=value)
        if op == ">":
            return histogram.estimate_range(low=value, low_inclusive=False)
        return histogram.estimate_range(low=value)

    def _eq_estimate(self, quantifier, column, value):
        histogram = self._histogram(quantifier, column.column_index)
        if value is _UNKNOWN:
            return histogram.density() if histogram is not None else DEFAULT_EQ
        if histogram is not None and histogram.total_count() > 0:
            return histogram.estimate_eq(value)
        return DEFAULT_EQ

    def _is_null(self, expr, quantifier):
        if not isinstance(expr.operand, ast.ColumnRef):
            return DEFAULT_EQ
        histogram = self._histogram(quantifier, expr.operand.column_index)
        if histogram is not None and histogram.total_count() > 0:
            fraction = histogram.estimate_null()
        else:
            # NOT NULL columns never match IS NULL.
            fraction = 0.0 if not self._nullable(quantifier, expr.operand) else DEFAULT_EQ
        return (1.0 - fraction) if expr.negated else fraction

    def _between(self, expr, quantifier):
        if not isinstance(expr.operand, ast.ColumnRef):
            return DEFAULT_RANGE
        low = _literal_value(expr.low)
        high = _literal_value(expr.high)
        histogram = self._histogram(quantifier, expr.operand.column_index)
        if (
            low is _UNKNOWN or high is _UNKNOWN
            or histogram is None or histogram.total_count() == 0
        ):
            fraction = DEFAULT_RANGE
        else:
            fraction = histogram.estimate_range(low, high)
        return max(0.0, 1.0 - fraction) if expr.negated else fraction

    def _in_list(self, expr, quantifier):
        if not isinstance(expr.operand, ast.ColumnRef):
            return min(1.0, DEFAULT_EQ * max(1, len(expr.items)))
        total = 0.0
        for item in expr.items:
            value = _literal_value(item)
            total += self._eq_estimate(quantifier, expr.operand, value)
        fraction = min(1.0, total)
        return max(0.0, 1.0 - fraction) if expr.negated else fraction

    def _like(self, expr, quantifier):
        if not isinstance(expr.operand, ast.ColumnRef):
            return DEFAULT_LIKE
        pattern = _literal_value(expr.pattern)
        if pattern is _UNKNOWN or not isinstance(pattern, str):
            return DEFAULT_LIKE
        fraction = None
        string_stats = self._string_stats(quantifier, expr.operand.column_index)
        if string_stats is not None:
            fraction = string_stats.estimate_like(pattern)
        if fraction is None or fraction == _string_default():
            prefix = _like_prefix(pattern)
            if prefix:
                histogram = self._histogram(quantifier, expr.operand.column_index)
                if histogram is not None and histogram.total_count() > 0:
                    fraction = histogram.estimate_like_prefix(prefix)
        if fraction is None:
            fraction = DEFAULT_LIKE
        return max(0.0, 1.0 - fraction) if expr.negated else fraction

    # ------------------------------------------------------------------ #
    # join predicates
    # ------------------------------------------------------------------ #

    def join_conjunct_selectivity(self, conjunct, left_q, right_q):
        """Selectivity of a join conjunct between two quantifiers."""
        if conjunct.equi is not None:
            (qa, ca), (qb, cb) = conjunct.equi
            if qa == right_q.id:
                (qa, ca), (qb, cb) = (qb, cb), (qa, ca)
            if qa == left_q.id and qb == right_q.id:
                return self._equi_selectivity(left_q, ca, right_q, cb)
        return DEFAULT_JOIN

    def _equi_selectivity(self, left_q, left_col, right_q, right_col):
        # Referential integrity: FK = PK joins hit exactly one parent row.
        ri = self._ri_selectivity(left_q, left_col, right_q, right_col)
        if ri is not None:
            return ri
        left_hist = self._histogram(left_q, left_col)
        right_hist = self._histogram(right_q, right_col)
        if (
            left_hist is not None and right_hist is not None
            and left_hist.total_count() > 0 and right_hist.total_count() > 0
        ):
            # The on-the-fly join histogram (Section 3.2).
            return histogram_join_selectivity(left_hist, right_hist)
        # Index statistics: 1 / distinct keys of either side.
        for quantifier, column in ((left_q, left_col), (right_q, right_col)):
            distinct = self._index_distinct(quantifier, column)
            if distinct:
                return 1.0 / distinct
        return DEFAULT_JOIN

    def _ri_selectivity(self, left_q, left_col, right_q, right_col):
        for fk_q, fk_col, pk_q, pk_col in (
            (left_q, left_col, right_q, right_col),
            (right_q, right_col, left_q, left_col),
        ):
            if fk_q.kind != Quantifier.BASE or pk_q.kind != Quantifier.BASE:
                continue
            fk_table = fk_q.schema
            pk_table = pk_q.schema
            fk_name = fk_table.columns[fk_col].name
            pk_name = pk_table.columns[pk_col].name
            for fk in fk_table.foreign_keys:
                if (
                    fk.ref_table == pk_table.name
                    and fk_name in fk.columns
                    and pk_name in fk.ref_columns
                ):
                    rows = max(1.0, float(pk_table.row_count))
                    return 1.0 / rows
        return None

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def _histogram(self, quantifier, column_index):
        if quantifier.kind != Quantifier.BASE:
            return None
        return self.stats.histogram(quantifier.schema.name, column_index)

    def _string_stats(self, quantifier, column_index):
        if quantifier.kind != Quantifier.BASE:
            return None
        return self.stats.string_stats(quantifier.schema.name, column_index)

    def _string_predicate(self, quantifier, column_index, kind, value):
        string_stats = self._string_stats(quantifier, column_index)
        if string_stats is None or not isinstance(value, str):
            return None
        return string_stats.estimate_predicate(kind, value)

    def _index_eq(self, quantifier, column_index):
        distinct = self._index_distinct(quantifier, column_index)
        if distinct:
            return 1.0 / distinct
        return None

    def _index_distinct(self, quantifier, column_index):
        """Distinct-key count from any index led by this column."""
        if quantifier.kind != Quantifier.BASE:
            return None
        table = quantifier.schema
        column_name = table.columns[column_index].name
        for index in self.catalog.indexes_on(table.name):
            if index.column_names and index.column_names[0] == column_name:
                if index.btree is not None and index.btree.stats.distinct_keys:
                    return float(index.btree.stats.distinct_keys)
        return None

    @staticmethod
    def _nullable(quantifier, column_ref):
        if quantifier.kind != Quantifier.BASE:
            return True
        return quantifier.schema.columns[column_ref.column_index].nullable


# --------------------------------------------------------------------- #
# literal plumbing
# --------------------------------------------------------------------- #

class _Unknown:
    def __repr__(self):
        return "<unknown value>"


_UNKNOWN = _Unknown()


def _literal_value(expr):
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        inner = _literal_value(expr.operand)
        if inner is not _UNKNOWN and inner is not None:
            return -inner
    return _UNKNOWN


def _column_vs_value(maybe_column, maybe_value, quantifier):
    """(column_ref, literal_or_UNKNOWN) when the pair matches col-op-value."""
    if (
        isinstance(maybe_column, ast.ColumnRef)
        and maybe_column.bound
        and maybe_column.quantifier_id == quantifier.id
        and not isinstance(maybe_value, ast.ColumnRef)
    ):
        return maybe_column, _literal_value(maybe_value)
    return None, None


def _like_prefix(pattern):
    """The literal prefix of a LIKE pattern ('abc%def' -> 'abc')."""
    prefix = []
    for char in pattern:
        if char in ("%", "_"):
            break
        prefix.append(char)
    return "".join(prefix)


def _string_default():
    from repro.stats.stringstats import DEFAULT_SELECTIVITY
    return DEFAULT_SELECTIVITY
