"""Simulated operating system memory manager.

The buffer-pool governor of the paper (Section 2) is a feedback controller
whose reference inputs come from the OS: the *working-set size* of the
server process and the amount of *free physical memory*.  This package
provides a small, deterministic OS model that produces those inputs: a
fixed amount of physical memory shared by processes whose allocations vary
over (simulated) time, with proportional working-set trimming under
overcommit, plus a Windows-CE-like flavour that cannot report working sets.
"""

from repro.ossim.memory import OperatingSystem, Process, ScriptedProcess

__all__ = ["OperatingSystem", "Process", "ScriptedProcess"]
