"""Deterministic model of physical memory, processes, and working sets."""

from repro.common.errors import ReproError
from repro.common.units import MiB


class WorkingSetUnavailable(ReproError):
    """The OS flavour cannot report per-process working sets (Windows CE).

    The paper: "the Windows CE operating system resource manager lacks the
    ability to report the current working set size for an application."
    """


class WorkingSetProbeOutage(ReproError):
    """One working-set probe transiently failed (injected fault).

    Distinct from :class:`WorkingSetUnavailable` — the OS *does* support
    probes, this particular one blacked out.  The buffer governor rides
    it out by reusing its last successful reading instead of switching to
    the CE fallback permanently.
    """


class Process:
    """A process competing for physical memory.

    ``allocated`` is the process's virtual commitment; the OS decides how
    much of it is *resident* (its working set) based on total pressure.
    """

    def __init__(self, os, name):
        self._os = os
        self.name = name
        self.allocated = 0

    def allocate(self, n_bytes):
        """Grow the process's allocation by ``n_bytes`` (may be negative)."""
        new_size = self.allocated + int(n_bytes)
        if new_size < 0:
            raise ValueError(
                "process %r cannot free below zero (have %d, freeing %d)"
                % (self.name, self.allocated, -n_bytes)
            )
        self.allocated = new_size

    def set_allocation(self, n_bytes):
        """Set the process's allocation to an absolute size."""
        if n_bytes < 0:
            raise ValueError("allocation must be non-negative")
        self.allocated = int(n_bytes)

    def __repr__(self):
        return "Process(name=%r, allocated=%d)" % (self.name, self.allocated)


class ScriptedProcess(Process):
    """A process whose allocation follows a schedule on the simulated clock.

    ``schedule`` is an iterable of ``(time_us, allocation_bytes)`` pairs;
    each entry arms a clock timer that sets the allocation at that time.
    Used by the Figure 1 experiment to model "other software and system
    tools whose configuration and memory usage vary ... from moment to
    moment".
    """

    def __init__(self, os, name, clock, schedule):
        super().__init__(os, name)
        for time_us, allocation in schedule:
            clock.call_at(time_us, self._make_setter(allocation))

    def _make_setter(self, allocation):
        def setter():
            self.set_allocation(allocation)

        return setter


class OperatingSystem:
    """Physical memory shared by processes, with working-set accounting.

    When the sum of allocations fits in physical memory, every process is
    fully resident.  Under overcommit, the OS trims working sets
    proportionally to allocation size (a simple global page-replacement
    stand-in), always keeping ``kernel_reserve`` for itself.
    """

    def __init__(
        self,
        total_memory,
        supports_working_set=True,
        kernel_reserve=8 * MiB,
        fault_plan=None,
    ):
        if total_memory <= kernel_reserve:
            raise ValueError("total memory must exceed the kernel reserve")
        self.total_memory = int(total_memory)
        self.kernel_reserve = int(kernel_reserve)
        self.supports_working_set_reporting = supports_working_set
        #: Optional :class:`repro.faults.FaultPlan`; consulted duck-typed
        #: (this module never imports :mod:`repro.faults`) so the OS model
        #: stays dependency-free.  Assigned post-construction by the
        #: server when chaos is enabled.
        self.fault_plan = fault_plan
        self._processes = []

    # ------------------------------------------------------------------ #
    # process management
    # ------------------------------------------------------------------ #

    def spawn(self, name):
        """Create a new process with zero allocation."""
        process = Process(self, name)
        self._processes.append(process)
        return process

    def spawn_scripted(self, name, clock, schedule):
        """Create a :class:`ScriptedProcess` driven by ``clock``."""
        process = ScriptedProcess(self, name, clock, schedule)
        self._processes.append(process)
        return process

    def adopt(self, process):
        """Register an externally constructed :class:`Process`.

        Lets injectors (and tests) build specialised process objects and
        still have them count against physical memory.
        """
        if process not in self._processes:
            self._processes.append(process)
        return process

    def processes(self):
        """Snapshot list of processes (for diagnostics)."""
        return list(self._processes)

    # ------------------------------------------------------------------ #
    # memory accounting
    # ------------------------------------------------------------------ #

    @property
    def usable_memory(self):
        """Physical memory available to user processes."""
        return self.total_memory - self.kernel_reserve

    def total_allocated(self):
        """Sum of all process allocations (virtual commitment)."""
        return sum(process.allocated for process in self._processes)

    def working_set(self, process):
        """Resident size of ``process``, per the trimming policy.

        Raises :class:`WorkingSetUnavailable` on CE-like flavours: the
        governor must then fall back to the paper's CE variant that uses
        the current buffer-pool size as its reference input.
        """
        if not self.supports_working_set_reporting:
            raise WorkingSetUnavailable(
                "this OS flavour cannot report working-set sizes"
            )
        plan = self.fault_plan
        if plan is not None and plan.should(
            "ossim.working_set_outage", plan.rates.working_set_outage
        ):
            plan.record(
                "ossim.working_set_outage", "probe process=%s" % process.name
            )
            raise WorkingSetProbeOutage(
                "injected working-set probe outage for %r" % process.name
            )
        return self._resident(process)

    def _resident(self, process):
        demand = self.total_allocated()
        if demand <= self.usable_memory:
            return process.allocated
        if demand == 0:
            return 0
        # Proportional trim: each process keeps the same fraction of its
        # allocation resident.
        fraction = self.usable_memory / demand
        return int(process.allocated * fraction)

    def free_memory(self):
        """Unused physical memory (never negative)."""
        resident = sum(self._resident(process) for process in self._processes)
        return max(0, self.usable_memory - resident)

    def memory_pressure(self):
        """Fraction of usable memory currently resident, in [0, 1+]."""
        if self.usable_memory == 0:
            return 1.0
        resident = sum(self._resident(process) for process in self._processes)
        return resident / self.usable_memory
