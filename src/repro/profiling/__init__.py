"""Application Profiling (paper Section 5).

An integrated toolset advising on database and application design:

* :mod:`~repro.profiling.tracer` — captures a detailed trace of server
  activity (statements, timings, counters) that can be stored into any
  database for analysis;
* :mod:`~repro.profiling.metrics` — the server-wide performance-counter
  registry (counters, gauges, bounded histograms) every engine component
  publishes through;
* :mod:`~repro.profiling.flaws` — a database of commonly seen design
  flaws, including the **client-side join** detector ("many identical
  statements arrive from an application, differing only by some constant
  value used in a predicate") and incorrect option settings;
* :mod:`~repro.profiling.consultant` — the **Index Consultant**, which
  lets the optimizer cost *virtual indexes* ("the query optimizer is able
  to generate specifications for indexes it would like to have") and
  recommends creations and removals.
"""

from repro.profiling.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.profiling.tracer import FaultTraceEvent, TraceEvent, Tracer
from repro.profiling.flaws import (
    ClientSideJoinDetector,
    Flaw,
    FlawAnalyzer,
    OptionSettingDetector,
    RepeatedStatementDetector,
)
from repro.profiling.consultant import (
    IndexConsultant,
    IndexRecommendation,
    VirtualBTree,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "TraceEvent",
    "FaultTraceEvent",
    "FlawAnalyzer",
    "Flaw",
    "ClientSideJoinDetector",
    "OptionSettingDetector",
    "RepeatedStatementDetector",
    "IndexConsultant",
    "IndexRecommendation",
    "VirtualBTree",
]
