"""The Index Consultant (paper Section 5).

"The Index Consultant uses a novel technique to provide useful
recommendations without requiring excessive resources, whereby the query
optimizer is able to generate specifications for indexes it would like to
have.  These 'virtual index' specifications can be very general ...  The
virtual index specification becomes tighter as optimization proceeds ...
When the Index Consultant is finished, a physical composition and ordering
is imposed on the index."

Virtual indexes are catalog index entries backed by a statistics-only
B+-tree stand-in: the optimizer costs them like real indexes, but they
hold no data and are stripped before any execution.
"""

import math

from repro.sql import Binder, ast, parse_statement
from repro.sql.binder import Quantifier
from repro.catalog import IndexSchema


class _VirtualStats:
    """BTreeStats look-alike derived from table statistics."""

    def __init__(self, entry_count, distinct_keys, leaf_page_count):
        self.entry_count = entry_count
        self.distinct_keys = distinct_keys
        self.leaf_page_count = leaf_page_count

    def density(self):
        if self.entry_count == 0 or self.distinct_keys == 0:
            return 0.0
        return 1.0 / self.distinct_keys


class _VirtualFile:
    size_bytes = 0
    page_count = 0


class VirtualBTree:
    """A costing-only index: statistics without storage."""

    def __init__(self, table_rows, distinct_keys, fanout=64, clustering=0.5):
        entry_count = max(1, int(table_rows))
        leaf_pages = max(1, entry_count // fanout)
        self.stats = _VirtualStats(
            entry_count, max(1, int(distinct_keys)), leaf_pages
        )
        self.height = max(1, int(math.log(max(2, leaf_pages), fanout)) + 1)
        self.file = _VirtualFile()
        self._clustering = clustering

    def cached_clustering(self, staleness=0.2):
        return self._clustering


class IndexSpec:
    """A (possibly still general) virtual index specification."""

    def __init__(self, table_name, column_names, source):
        self.table_name = table_name
        self.column_names = tuple(column_names)
        self.source = source  # 'sarg' | 'join' | 'composite'

    @property
    def name(self):
        return "virt_%s_%s" % (self.table_name, "_".join(self.column_names))

    def __eq__(self, other):
        return (
            isinstance(other, IndexSpec)
            and self.table_name == other.table_name
            and self.column_names == other.column_names
        )

    def __hash__(self):
        return hash((self.table_name, self.column_names))

    def __repr__(self):
        return "IndexSpec(%s(%s) from %s)" % (
            self.table_name, ", ".join(self.column_names), self.source
        )


class IndexRecommendation:
    """A create or drop recommendation with its estimated benefit."""

    def __init__(self, action, table_name, column_names, benefit_us,
                 index_name=None):
        self.action = action  # 'create' | 'drop'
        self.table_name = table_name
        self.column_names = tuple(column_names)
        self.benefit_us = benefit_us
        self.index_name = index_name

    def __repr__(self):
        return "IndexRecommendation(%s %s(%s), benefit=%.0fus)" % (
            self.action, self.table_name, ", ".join(self.column_names),
            self.benefit_us,
        )


class IndexConsultant:
    """Costs a workload against virtual indexes and recommends changes."""

    def __init__(self, server, min_benefit_fraction=0.05):
        self.server = server
        self.min_benefit_fraction = min_benefit_fraction

    # ------------------------------------------------------------------ #
    # entry point
    # ------------------------------------------------------------------ #

    def analyze(self, workload_sql):
        """Analyze a list of SELECT statements; returns recommendations."""
        blocks = [self._bind(sql) for sql in workload_sql]
        baseline_cost, baseline_used = self._workload_cost(blocks)
        specs = set()
        for block in blocks:
            specs |= self._generate_specs(block)
        specs = {
            spec for spec in specs if not self._already_indexed(spec)
        }
        recommendations = []
        for spec in sorted(specs, key=lambda s: s.name):
            benefit = self._evaluate_spec(spec, workload_sql, baseline_cost)
            if benefit > baseline_cost * self.min_benefit_fraction:
                recommendations.append(IndexRecommendation(
                    "create", spec.table_name, spec.column_names, benefit,
                    index_name=spec.name,
                ))
        recommendations.extend(self._drop_candidates(baseline_used))
        recommendations.sort(key=lambda r: -r.benefit_us)
        return recommendations

    # ------------------------------------------------------------------ #
    # spec generation (the optimizer's "indexes it would like to have")
    # ------------------------------------------------------------------ #

    def _generate_specs(self, block):
        specs = set()
        for quantifier in block.quantifiers:
            if quantifier.kind != Quantifier.BASE:
                if quantifier.block is not None:
                    specs |= self._generate_specs(quantifier.block)
                continue
            table = quantifier.schema
            eq_columns, range_columns = [], []
            for conjunct in block.conjuncts:
                if conjunct.refs != frozenset({quantifier.id}):
                    continue
                column = _sargable_column(conjunct.expr, quantifier.id)
                if column is None:
                    continue
                column_name = table.columns[column[0]].name
                if column[1] == "eq":
                    eq_columns.append(column_name)
                else:
                    range_columns.append(column_name)
            join_columns = []
            for conjunct in block.conjuncts:
                if conjunct.equi is None or quantifier.id not in conjunct.refs:
                    continue
                (qa, ca), (qb, cb) = conjunct.equi
                column_index = ca if qa == quantifier.id else cb
                join_columns.append(table.columns[column_index].name)
            for column_name in join_columns:
                specs.add(IndexSpec(table.name, [column_name], "join"))
            for column_name in eq_columns + range_columns:
                specs.add(IndexSpec(table.name, [column_name], "sarg"))
            if eq_columns and range_columns:
                # The tightened composite: equality columns first, then the
                # range column ("a physical composition and ordering is
                # imposed").
                specs.add(IndexSpec(
                    table.name,
                    list(dict.fromkeys(eq_columns)) + [range_columns[0]],
                    "composite",
                ))
        return specs

    def _already_indexed(self, spec):
        for index in self.server.catalog.indexes_on(spec.table_name):
            existing = index.column_names[: len(spec.column_names)]
            if tuple(existing) == spec.column_names:
                return True
        return False

    # ------------------------------------------------------------------ #
    # evaluation with virtual indexes
    # ------------------------------------------------------------------ #

    def _evaluate_spec(self, spec, workload_sql, baseline_cost):
        virtual = self._make_virtual_index(spec)
        self.server.catalog.add_index(virtual)
        try:
            blocks = [self._bind(sql) for sql in workload_sql]
            cost, used = self._workload_cost(blocks)
        finally:
            self.server.catalog.drop_index(virtual.name)
        if virtual.name not in used:
            return 0.0
        return baseline_cost - cost

    def _make_virtual_index(self, spec):
        catalog = self.server.catalog
        table = catalog.table(spec.table_name)
        leading_index = table.column_index(spec.column_names[0])
        distinct = self._distinct_estimate(table, leading_index)
        clustering = self._estimate_clustering(table, leading_index)
        index = IndexSchema(spec.name, spec.table_name, spec.column_names)
        index.btree = VirtualBTree(table.row_count, distinct,
                                   clustering=clustering)
        index.virtual = True
        return index

    def _estimate_clustering(self, table, column_index, sample_limit=2000):
        """Tighten the virtual spec with the clustering the index *would*
        have: sample (value, page) pairs, order by value, and measure the
        adjacent-page fraction — the same statistic a real B+-tree
        maintains."""
        sample = []
        for row_id, row in table.storage.scan():
            value = row[column_index]
            if value is not None:
                sample.append((value, row_id.page_ordinal))
            if len(sample) >= sample_limit:
                break
        if len(sample) < 2:
            return 0.5
        sample.sort(key=lambda pair: pair[0])
        adjacent = sum(
            1
            for (__, page_a), (__v, page_b) in zip(sample, sample[1:])
            if abs(page_a - page_b) <= 1
        )
        return adjacent / (len(sample) - 1)

    def _distinct_estimate(self, table, column_index):
        histogram = self.server.stats.histogram(table.name, column_index)
        if histogram is not None and histogram.total_count() > 0:
            return max(
                1.0,
                histogram.distinct_nonsingleton + histogram.singleton_count,
            )
        return max(1.0, table.row_count / 10.0)

    def _workload_cost(self, blocks):
        optimizer = self.server.make_optimizer()
        total = 0.0
        used_indexes = set()
        for block in blocks:
            result = optimizer.optimize_select(block)
            total += result.cost
            for node in result.plan.walk():
                index_schema = getattr(node, "index_schema", None)
                if index_schema is not None:
                    used_indexes.add(index_schema.name)
        return total, used_indexes

    def _drop_candidates(self, used_indexes):
        """Existing secondary indexes the workload never touches."""
        recommendations = []
        for index in self.server.catalog.indexes():
            if getattr(index, "virtual", False) or index.unique:
                continue
            if index.name.startswith("pk_"):
                continue
            if index.name not in used_indexes:
                recommendations.append(IndexRecommendation(
                    "drop", index.table_name, index.column_names, 0.0,
                    index_name=index.name,
                ))
        return recommendations

    def _bind(self, sql):
        statement = parse_statement(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise ValueError("the Index Consultant analyzes SELECT workloads")
        return Binder(self.server.catalog).bind(statement)


def _sargable_column(expr, qid):
    """``(column_index, 'eq'|'range')`` when expr is col-op-constant."""
    if isinstance(expr, ast.BinaryOp) and expr.op in ("=", "<", "<=", ">", ">="):
        for column_side, value_side in (
            (expr.left, expr.right), (expr.right, expr.left)
        ):
            if (
                isinstance(column_side, ast.ColumnRef)
                and column_side.bound
                and column_side.quantifier_id == qid
                and isinstance(value_side, (ast.Literal, ast.Parameter))
            ):
                return (
                    column_side.column_index,
                    "eq" if expr.op == "=" else "range",
                )
    if isinstance(expr, ast.Between) and not expr.negated:
        operand = expr.operand
        if (
            isinstance(operand, ast.ColumnRef)
            and operand.bound
            and operand.quantifier_id == qid
        ):
            return (operand.column_index, "range")
    return None
