"""The design-flaw database.

"The Application Profiling tool contains a database of commonly seen
design flaws.  It is able to detect incorrect database option settings.
It can also detect suboptimal query patterns coming from an application.
For instance, it can detect the presence of a client-side join, in which
many identical statements arrive from an application, differing only by
some constant value used in a predicate."
"""


class Flaw:
    """One detected design flaw."""

    def __init__(self, kind, severity, summary, evidence=None,
                 recommendation=""):
        self.kind = kind
        self.severity = severity  # 'info' | 'warning' | 'critical'
        self.summary = summary
        self.evidence = evidence
        self.recommendation = recommendation

    def __repr__(self):
        return "Flaw(%s, %s: %s)" % (self.kind, self.severity, self.summary)


class ClientSideJoinDetector:
    """Many identical statements differing only by a constant.

    Recommendation per the paper: "such a loop in the application would be
    more efficiently carried out as a single statement issued to the
    server."
    """

    kind = "client-side-join"

    def __init__(self, min_repetitions=20):
        self.min_repetitions = min_repetitions

    def detect(self, tracer, catalog):
        flaws = []
        for template, events in tracer.templates().items():
            if len(events) < self.min_repetitions:
                continue
            if "?" not in template:
                continue
            if not template.upper().startswith("SELECT"):
                continue
            distinct_constants = {event.constants for event in events}
            if len(distinct_constants) < self.min_repetitions // 2:
                continue  # genuinely repeated statement, not a join loop
            flaws.append(Flaw(
                self.kind,
                "warning",
                "%d statements matching %r differ only by constants"
                % (len(events), template),
                evidence={"template": template, "count": len(events)},
                recommendation=(
                    "replace the application loop with a single joined "
                    "statement (or an IN list) issued to the server"
                ),
            ))
        return flaws


class RepeatedStatementDetector:
    """The same exact statement re-executed many times: prepare it once."""

    kind = "repeated-statement"

    def __init__(self, min_repetitions=50):
        self.min_repetitions = min_repetitions

    def detect(self, tracer, catalog):
        counts = {}
        for event in tracer.events:
            counts[event.sql] = counts.get(event.sql, 0) + 1
        return [
            Flaw(
                self.kind,
                "info",
                "statement executed %d times verbatim" % (count,),
                evidence={"sql": sql, "count": count},
                recommendation="prepare the statement once and re-execute it",
            )
            for sql, count in counts.items()
            if count >= self.min_repetitions
        ]


class OptionSettingDetector:
    """Incorrect database option settings, from a rule database."""

    kind = "option-setting"

    #: option -> (bad predicate, explanation)
    RULES = {
        "optimization_goal": (
            lambda value: value not in ("all-rows", "first-row"),
            "optimization_goal must be 'all-rows' or 'first-row'",
        ),
        "max_query_tasks": (
            lambda value: isinstance(value, int) and value < 0,
            "max_query_tasks cannot be negative",
        ),
        "multiprogramming_level": (
            lambda value: isinstance(value, int) and value < 1,
            "multiprogramming_level must be at least 1",
        ),
        "auto_statistics": (
            lambda value: value in ("off", False, 0),
            "disabling automatic statistics collection defeats "
            "self-management; estimates will decay as data drifts",
        ),
    }

    def detect(self, tracer, catalog):
        flaws = []
        for option, value in catalog.options.items():
            rule = self.RULES.get(option)
            if rule is None:
                continue
            is_bad, explanation = rule
            if is_bad(value):
                flaws.append(Flaw(
                    self.kind,
                    "critical",
                    "option %r has suspect value %r" % (option, value),
                    evidence={"option": option, "value": value},
                    recommendation=explanation,
                ))
        return flaws


class FlawAnalyzer:
    """Runs every detector over a trace + catalog."""

    def __init__(self, detectors=None):
        self.detectors = detectors if detectors is not None else [
            ClientSideJoinDetector(),
            RepeatedStatementDetector(),
            OptionSettingDetector(),
        ]

    def analyze(self, tracer, catalog):
        flaws = []
        for detector in self.detectors:
            flaws.extend(detector.detect(tracer, catalog))
        severity_rank = {"critical": 0, "warning": 1, "info": 2}
        flaws.sort(key=lambda flaw: severity_rank.get(flaw.severity, 3))
        return flaws
