"""Server-wide observability: counters, gauges, and bounded histograms.

The paper's Application Profiling (Section 5) captures "a detailed trace
of all server activity, including SQL statements processed, performance
counters".  The tracer covers the statement stream; this module is the
performance-counter half: a single :class:`MetricsRegistry` shared by the
buffer pool, governors, plan cache, optimizer, and executor.  Everything
is measured on the :class:`~repro.common.clock.SimClock`, so snapshots
are fully deterministic — the substrate that closed-loop self-management
components (index consultant, adaptive MPL, regression benches) read.

Three instrument kinds:

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — a point-in-time level, set or adjusted by its owner;
* :class:`Histogram` — a *bounded* histogram: fixed bucket bounds chosen
  at creation, so memory is O(len(bounds)) no matter how many values are
  observed (no reservoirs, no unbounded growth).

Components may also register *probes* — zero-argument callables evaluated
lazily at :meth:`MetricsRegistry.snapshot` time — for values that already
live on the component (e.g. the pool's hit counter) and would otherwise
need double bookkeeping.
"""

import bisect

#: Default histogram bucket upper bounds (simulated microseconds).
DEFAULT_US_BOUNDS = (10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000)


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        if n < 0:
            raise ValueError("counter %r cannot decrease" % (self.name,))
        self.value += n


class Gauge:
    """A settable level (pool size, MPL, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value

    def add(self, n=1):
        self.value += n


class Histogram:
    """A bounded histogram: fixed buckets, running count/sum/min/max."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    def __init__(self, name, bounds=DEFAULT_US_BOUNDS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted and non-empty")
        self.name = name
        self.bounds = tuple(bounds)
        # One count per bound plus the overflow bucket (> last bound).
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def observe(self, value):
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def snapshot(self):
        buckets = {
            "le_%d" % bound: self.bucket_counts[index]
            for index, bound in enumerate(self.bounds)
        }
        buckets["overflow"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }


class MetricsRegistry:
    """The server's single namespace of metrics.

    Names are dotted strings (``pool.hits``, ``plancache.invalidations``);
    a name is claimed by the first instrument kind that registers it and
    re-registering with a different kind raises, so two components cannot
    silently share a metric with conflicting semantics.
    """

    def __init__(self, clock=None):
        self.clock = clock
        self._kinds = {}  # name -> "counter" | "gauge" | "histogram" | "probe"
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self._probes = {}

    # -- instrument factories (get-or-create) --------------------------- #

    def counter(self, name):
        self._claim(name, "counter")
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name):
        self._claim(name, "gauge")
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name, bounds=DEFAULT_US_BOUNDS):
        self._claim(name, "histogram")
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, bounds)
        return histogram

    def register_probe(self, name, fn):
        """Register a pull-based metric: ``fn()`` runs at snapshot time."""
        self._claim(name, "probe")
        self._probes[name] = fn

    def _claim(self, name, kind):
        existing = self._kinds.get(name)
        if existing is None:
            self._kinds[name] = kind
        elif existing != kind:
            raise ValueError(
                "metric %r already registered as %s, not %s"
                % (name, existing, kind)
            )

    # -- reading --------------------------------------------------------- #

    def value(self, name):
        """Current value of one metric (histograms return their snapshot)."""
        kind = self._kinds.get(name)
        if kind == "counter":
            return self._counters[name].value
        if kind == "gauge":
            return self._gauges[name].value
        if kind == "histogram":
            return self._histograms[name].snapshot()
        if kind == "probe":
            return self._probes[name]()
        raise KeyError(name)

    def names(self):
        return sorted(self._kinds)

    def snapshot(self):
        """One deterministic dict of every metric, sorted by name."""
        snap = {}
        for name in self.names():
            snap[name] = self.value(name)
        if self.clock is not None:
            snap["snapshot_at_us"] = self.clock.now
        return snap
