"""Request tracing.

"As much detail as possible is collected about a database application and
a database instance ... a detailed trace of all server activity, including
SQL statements processed, performance counters ...  This trace information
is captured as an application runs, and is transferred ... into any SQL
Anywhere database, where it can be analyzed."
"""

import collections
import re

TraceEvent = collections.namedtuple(
    "TraceEvent",
    [
        "sequence",
        "sql",
        "template",
        "constants",
        "start_us",
        "elapsed_us",
        "rows",
        "pool_misses",
        "pool_hits",
        "plan_signature",
        "error",
    ],
    defaults=(None,),
)

#: One injected fault observed by the tracer (``plan_sequence`` is the
#: fault's index in the FaultPlan's own log, so a post-mortem can join
#: the two records).
FaultTraceEvent = collections.namedtuple(
    "FaultTraceEvent", ["plan_sequence", "time_us", "site", "detail"]
)

#: One engine-level lifecycle event (checkpoint taken, crash simulated,
#: restart recovery finished) — the coarse activity the paper's trace
#: keeps alongside per-statement detail.
SystemTraceEvent = collections.namedtuple(
    "SystemTraceEvent", ["kind", "time_us", "detail"]
)

#: One combined alternation so constants come back in statement order.
#: (Two sequential passes — strings, then numbers — would reorder mixed
#: literals: ``a = 5 AND b = 'x'`` must yield ``('5', "'x'")``.)  The
#: string arm is first so digits inside quotes never match the number arm.
_LITERAL = re.compile(r"'(?:[^']|'')*'|\b\d+(?:\.\d+)?\b")


def normalize_statement(sql):
    """(template, constants): literals replaced by placeholders.

    The template is what the client-side-join detector groups by — two
    statements "differing only by some constant value used in a predicate"
    share a template.  Constants are returned in left-to-right statement
    order regardless of kind.
    """
    constants = []

    def keep(match):
        constants.append(match.group(0))
        return "?"

    template = _LITERAL.sub(keep, sql)
    return " ".join(template.split()), tuple(constants)


class Tracer:
    """Collects trace events; attach via ``server.tracer = Tracer(...)``.

    The event store is a ring buffer: at capacity the *oldest* events are
    dropped (a long run's trace shows recent activity, not just startup)
    and ``dropped`` counts how many were lost.  Sequence numbers are
    assigned before insertion, so they stay monotonic across wraparound.
    """

    def __init__(self, capacity=100_000):
        self.capacity = capacity
        self.events = collections.deque(maxlen=capacity)
        #: Injected faults seen while this tracer was attached (its own
        #: ring: fault storms must not evict statement events).
        self.fault_events = collections.deque(maxlen=capacity)
        #: Engine lifecycle events (checkpoints, crashes, recoveries).
        self.system_events = collections.deque(maxlen=capacity)
        self.dropped = 0
        self._sequence = 0

    def record(self, sql, start_us, elapsed_us, rows, pool_misses,
               pool_hits, plan_signature="", error=None):
        template, constants = normalize_statement(sql)
        event = TraceEvent(
            self._sequence, sql, template, constants, start_us, elapsed_us,
            rows, pool_misses, pool_hits, plan_signature, error,
        )
        self._sequence += 1
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)
        return event

    def record_fault(self, plan_sequence, time_us, site, detail=""):
        """Record one injected fault (called by the bound FaultPlan)."""
        event = FaultTraceEvent(plan_sequence, time_us, site, detail)
        self.fault_events.append(event)
        return event

    def record_system(self, kind, time_us, detail=""):
        """Record one engine lifecycle event (checkpoint/crash/recovery)."""
        event = SystemTraceEvent(kind, time_us, detail)
        self.system_events.append(event)
        return event

    def __len__(self):
        return len(self.events)

    def templates(self):
        """template -> [events] grouping."""
        grouped = {}
        for event in self.events:
            grouped.setdefault(event.template, []).append(event)
        return grouped

    # ------------------------------------------------------------------ #
    # persistence into a database (the paper's trace-to-database flow)
    # ------------------------------------------------------------------ #

    TRACE_TABLE_DDL = (
        "CREATE TABLE profiling_trace ("
        "seq INT PRIMARY KEY, template VARCHAR(200), start_us INT, "
        "elapsed_us INT, result_rows INT, pool_misses INT, pool_hits INT, "
        "error VARCHAR(200))"
    )

    def save_to_database(self, connection, table_created=False):
        """Store the trace in a database through ordinary SQL.

        The target may be the traced database itself (convenience) or a
        separate server (performance) — any connection works.
        """
        if not table_created:
            connection.execute(self.TRACE_TABLE_DDL)
        for event in list(self.events):
            connection.execute(
                "INSERT INTO profiling_trace VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                params=[
                    event.sequence,
                    event.template[:200],
                    int(event.start_us),
                    int(event.elapsed_us),
                    int(event.rows),
                    int(event.pool_misses),
                    int(event.pool_hits),
                    event.error[:200] if event.error is not None else None,
                ],
            )
        return len(self.events)
