"""Crash recovery: ARIES-lite restart, checkpoint governance, crash harness.

The durability half of the paper's holistic self-management: restart
recovery replays the transaction log against the surviving volume
(:mod:`repro.recovery.restart`), the checkpoint governor bounds how much
of that replay a crash can ever cost (:mod:`repro.recovery.checkpoint`),
and the crash harness proves committed-exactly semantics at seeded crash
points (:mod:`repro.recovery.harness`).
"""

from repro.recovery.checkpoint import (
    CheckpointConfig,
    CheckpointGovernor,
    CkptSample,
)
from repro.recovery.harness import (
    CHECKPOINT,
    CrashHarness,
    CrashPoint,
    CrashReport,
    GroupCommitCrashHarness,
    VerificationError,
)
from repro.recovery.restart import RecoveryManager, RecoveryReport

__all__ = [
    "CHECKPOINT",
    "CheckpointConfig",
    "CheckpointGovernor",
    "CkptSample",
    "CrashHarness",
    "CrashPoint",
    "CrashReport",
    "GroupCommitCrashHarness",
    "RecoveryManager",
    "RecoveryReport",
    "VerificationError",
]
