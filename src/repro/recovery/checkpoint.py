"""The checkpoint governor: feedback control over restart-recovery time.

The paper's buffer-pool controller (Section 2) retargets a resource with
a damped adjustment toward an ideal; the checkpoint governor applies the
same shape to durability.  Its reference input is the **estimated
restart-recovery time** — the log that must be rescanned and replayed
since the last complete checkpoint plus the dirty pages that must be
flushed, each priced through the catalog's DTT cost model — and its
actuator is the decision to take a fuzzy checkpoint now or wait.

Control law per poll:

* estimate over target → checkpoint immediately (*urgent*);
* server idle since the last poll with replayable log pending →
  checkpoint for free (*idle* — recovery debt is paid when no statement
  is waiting behind the flush);
* otherwise hold, and retune the polling interval from the estimate's
  observed slope with the paper's damping (eq. 2): the governor polls
  faster as the estimate climbs toward the target and relaxes toward
  the configured maximum when the log is quiet.

``adaptive=False`` degrades the governor to a fixed-interval
checkpointer — the baseline the E18 benchmark compares against.
"""

import collections
import dataclasses

from repro.common.errors import IOFaultError
from repro.common.units import SECOND
from repro.dtt.model import READ, WRITE
from repro.storage.log import RECORDS_PER_PAGE

CkptSample = collections.namedtuple(
    "CkptSample",
    [
        "time_us",
        "estimate_us",
        "records_pending",
        "dirty_pages",
        "action",
        "interval_us",
    ],
)

#: Actions recorded in the sample history.
CKPT_URGENT = "ckpt-urgent"
CKPT_IDLE = "ckpt-idle"
CKPT_FIXED = "ckpt-fixed"
HOLD = "hold"
HOLD_RECOVERY = "hold-recovery"


@dataclasses.dataclass
class CheckpointConfig:
    """Checkpoint-governor tunables."""

    #: Hard ceiling on estimated restart time before a checkpoint is forced.
    recovery_time_target_us: int = 2 * SECOND
    #: Polling interval bounds; the adaptive law moves inside them.
    min_poll_interval_us: int = 5 * SECOND
    max_poll_interval_us: int = 60 * SECOND
    #: eq. 2 damping, shared with the buffer governor.
    damping_new: float = 0.9
    damping_old: float = 0.1
    #: False = checkpoint on every poll at ``max_poll_interval_us`` (the
    #: fixed-interval baseline for the E18 benchmark).
    adaptive: bool = True
    #: Sequential band assumed for the restart log scan (log pages are
    #: laid out in extent order).
    log_scan_band_bytes: int = 64 * 4096


class CheckpointGovernor:
    """Schedules fuzzy checkpoints against a recovery-time bound.

    Wired with callables rather than the server object so tests can
    drive it against any log/pool pair: ``log_fn`` returns the current
    transaction log, ``checkpoint_fn`` takes one fuzzy checkpoint,
    ``statements_fn`` reports cumulative statements executed (for idle
    detection), ``in_recovery_fn`` gates polls while restart recovery
    itself is running.
    """

    def __init__(self, clock, log_fn, pool, model, page_size, checkpoint_fn,
                 statements_fn, config=None, metrics=None,
                 in_recovery_fn=None):
        self.clock = clock
        self.log_fn = log_fn
        self.pool = pool
        self.model = model
        self.page_size = page_size
        self.checkpoint_fn = checkpoint_fn
        self.statements_fn = statements_fn
        self.in_recovery_fn = (
            in_recovery_fn if in_recovery_fn is not None else lambda: False
        )
        self.config = config if config is not None else CheckpointConfig()
        self.history = []
        self._interval_us = self.config.max_poll_interval_us
        self._last_estimate_us = 0
        self._last_poll_us = None
        self._last_statements = statements_fn()
        self._running = False
        self._metrics = metrics
        self._m_polls = None
        self._m_io_faults = None
        if metrics is not None:
            self._m_polls = metrics.counter("ckpt.polls")
            self._m_actions = {
                action: metrics.counter("ckpt.action.%s" % action)
                for action in (CKPT_URGENT, CKPT_IDLE, CKPT_FIXED, HOLD,
                               HOLD_RECOVERY)
            }
            self._m_estimate = metrics.gauge("ckpt.est_recovery_us")
            self._m_io_faults = metrics.counter("ckpt.io_faults")

    # ------------------------------------------------------------------ #
    # lifecycle (mirrors the buffer governor)
    # ------------------------------------------------------------------ #

    def start(self):
        """Begin periodic polling on the simulated clock."""
        if self._running:
            return
        self._running = True
        self.clock.call_after(self._interval_us, self._on_timer)

    def stop(self):
        """Stop scheduling further polls (pending timers become no-ops)."""
        self._running = False

    def _on_timer(self):
        if not self._running:
            return
        sample = self.poll_once()
        self.clock.call_after(sample.interval_us, self._on_timer)

    # ------------------------------------------------------------------ #
    # the control loop body
    # ------------------------------------------------------------------ #

    def estimate_recovery_us(self):
        """Price a restart-if-crashed-now through the DTT model.

        Three durably-charged components: rescanning the log written
        since the last complete checkpoint (sequential reads), replaying
        each of its records against a data page (random read+write), and
        flushing the pool's current dirty pages (random writes).  Index
        rebuild cost is excluded: it is paid by every restart regardless
        of checkpoint placement, so it cannot inform the decision.
        """
        log = self.log_fn()
        records = max(0, log.records_since_checkpoint())
        log_pages = (records + RECORDS_PER_PAGE - 1) // RECORDS_PER_PAGE
        scan_us = log_pages * self.model.cost_us(
            READ, self.page_size, self.config.log_scan_band_bytes
        )
        replay_us = records * (
            self.model.cost_us(READ, self.page_size, self.page_size)
            + self.model.cost_us(WRITE, self.page_size, self.page_size)
        )
        flush_us = self.pool.dirty_page_count() * self.model.cost_us(
            WRITE, self.page_size, self.page_size
        )
        return int(scan_us + replay_us + flush_us)

    def poll_once(self):
        """One controller iteration; returns the recorded sample."""
        config = self.config
        log = self.log_fn()
        estimate = self.estimate_recovery_us()
        records = log.records_since_checkpoint()
        dirty = self.pool.dirty_page_count()
        statements = self.statements_fn()
        idle = statements == self._last_statements

        if self.in_recovery_fn():
            # Restart recovery takes its own checkpoint when it finishes;
            # a governor poll firing off a clock advance mid-recovery
            # must not interleave another one.
            action = HOLD_RECOVERY
        elif not config.adaptive:
            action = CKPT_FIXED if records > 0 else HOLD
        elif estimate >= config.recovery_time_target_us:
            action = CKPT_URGENT
        elif idle and records > 0:
            action = CKPT_IDLE
        else:
            action = HOLD

        if action in (CKPT_URGENT, CKPT_IDLE, CKPT_FIXED):
            try:
                self.checkpoint_fn()
            except IOFaultError:
                # The checkpoint's log force or page flush kept failing.
                # Count it and retry at the next poll — a governor timer
                # must never kill the statement whose clock advance
                # happened to fire it.
                if self._m_io_faults is not None:
                    self._m_io_faults.inc()
            estimate_after = self.estimate_recovery_us()
        else:
            estimate_after = estimate

        interval = self._retune_interval(estimate)
        sample = CkptSample(
            time_us=self.clock.now,
            estimate_us=estimate,
            records_pending=records,
            dirty_pages=dirty,
            action=action,
            interval_us=interval,
        )
        self.history.append(sample)
        if self._m_polls is not None:
            self._m_polls.inc()
            self._m_actions[action].inc()
            self._m_estimate.set(estimate_after)
        self._last_estimate_us = estimate_after
        self._last_poll_us = self.clock.now
        self._last_statements = statements
        return sample

    def _retune_interval(self, estimate):
        """Damped interval retargeting from the estimate's slope.

        The ideal interval is half the predicted time for the estimate
        to climb from here to the target (sample twice before it can be
        crossed); with a flat or falling estimate the governor relaxes
        toward the maximum.  eq. 2 damping smooths the transitions.
        """
        config = self.config
        if not config.adaptive:
            self._interval_us = config.max_poll_interval_us
            return self._interval_us
        ideal = config.max_poll_interval_us
        if self._last_poll_us is not None:
            elapsed = self.clock.now - self._last_poll_us
            growth = estimate - self._last_estimate_us
            if elapsed > 0 and growth > 0:
                headroom = max(
                    0, config.recovery_time_target_us - estimate
                )
                time_to_target = headroom * elapsed / growth
                ideal = int(time_to_target / 2)
        ideal = min(
            max(ideal, config.min_poll_interval_us),
            config.max_poll_interval_us,
        )
        self._interval_us = int(
            config.damping_new * ideal + config.damping_old * self._interval_us
        )
        return self._interval_us
