"""Deterministic crash harness: kill the server at a seeded point, restart
it, and verify committed-exactly recovery differentially.

The harness owns two servers built by the same factory (same seed, same
configuration).  On the *crash* server it arms the transaction log's
``crash_hook`` to raise :class:`SimulatedCrash` at the N-th hit of a
chosen crash site (``wal.append``, ``wal.commit_before_force``,
``wal.commit_after_force``, ``wal.force_page``, ``wal.checkpoint_mid``),
runs the workload until the process "dies", then crashes and restarts it
through restart recovery.  On the *reference* server it replays exactly
the statements that committed before the crash — no crash, no recovery.

Verification is differential: the recovered tables must hold exactly the
reference rows (committed-exactly), and the rebuilt indexes must agree
with their heaps.  Because everything runs on the SimClock with seeded
fault plans, two harness runs with the same seed produce byte-identical
post-recovery page images — which is the determinism half of the crash
matrix in ``tests/recovery/``.
"""

import collections

from repro.common.errors import ReproError, SimulatedCrash

#: Where and when to kill the server: the crash fires on the
#: ``occurrence``-th hit of ``site`` (1-based) during the workload.
CrashPoint = collections.namedtuple("CrashPoint", ["site", "occurrence"])
CrashPoint.__new__.__defaults__ = (1,)

#: Workload sentinel: take a fuzzy checkpoint instead of running SQL
#: (the only way to stand inside the CKPT BEGIN/END window).
CHECKPOINT = "<checkpoint>"


class VerificationError(ReproError):
    """The recovered state differs from the committed reference state."""


class CrashReport:
    """Everything one harness run learned."""

    def __init__(self):
        self.crashed = False
        self.crash_site = None
        self.statements_run = 0
        self.committed_statements = []
        self.interrupted_statement = None
        self.interrupted_committed = False
        self.recovery = None
        self.tables_verified = 0
        self.rows_verified = 0

    def __repr__(self):
        return (
            "CrashReport(crashed=%r, site=%r, committed=%d, verified=%d rows)"
            % (
                self.crashed, self.crash_site,
                len(self.committed_statements), self.rows_verified,
            )
        )


class CrashHarness:
    """Drives crash → restart → differential verification.

    ``server_factory`` builds a fresh server (deterministic: same seed,
    same config each call).  ``schema`` is the list of statements that
    set both servers up (DDL and priming loads — assumed durable before
    the interesting workload begins; the harness checkpoints after
    applying it).  ``workload`` is the list of statements to run on the
    crash server — plain SQL strings, ``(sql, params)`` pairs, or the
    :data:`CHECKPOINT` sentinel.
    """

    def __init__(self, server_factory, schema, workload, crash_point=None,
                 tear_tail=None):
        self.server_factory = server_factory
        self.schema = list(schema)
        self.workload = list(workload)
        self.crash_point = crash_point
        #: Force (True/False) or let the fault plan decide (None) whether
        #: the final log page tears during the crash.
        self.tear_tail = tear_tail
        self.server = None
        self.report = CrashReport()
        self._pending_at_crash = []
        self._interrupted_txn = None

    # ------------------------------------------------------------------ #
    # the run
    # ------------------------------------------------------------------ #

    def run(self):
        """Crash run, recovery, then differential verification."""
        report = self.report
        self.server = self.server_factory()
        connection = self.server.connect()
        try:
            self._apply_schema(connection)
            self._arm()
            self._drive_workload(connection)
        finally:
            self._disarm()
        if report.crashed:
            self.server.crash(tear_tail=self.tear_tail)
            report.recovery = self.server.restart()
            if report.interrupted_statement is not None:
                # The ambiguous statement: it died mid-execution, so its
                # transaction survives iff its COMMIT record reached the
                # device before the crash.
                report.interrupted_committed = (
                    self._interrupted_txn is not None
                    and self._interrupted_txn
                    in self.server.txn_log.committed_txns()
                )
                if report.interrupted_committed:
                    report.committed_statements.extend(
                        self._pending_at_crash
                        + [report.interrupted_statement]
                    )
        self._verify()
        return report

    def _apply_schema(self, connection):
        for sql in self.schema:
            connection.execute(sql)
        # The schema is the experiment's given: make it durable so the
        # crash only ever destroys workload effects.
        self.server.checkpoint()

    def _arm(self):
        if self.crash_point is None:
            return
        remaining = [self.crash_point.occurrence]

        def hook(site):
            if site != self.crash_point.site:
                return
            remaining[0] -= 1
            if remaining[0] <= 0:
                raise SimulatedCrash("crash point %s" % (site,))

        self.server.txn_log.crash_hook = hook

    def _disarm(self):
        if self.server is not None:
            self.server.txn_log.crash_hook = None

    def _drive_workload(self, connection):
        """Run the workload, tracking which statements' effects committed.

        Autocommit statements commit when they return.  Statements inside
        an explicit BEGIN block are *pending* until the COMMIT statement
        succeeds (a ROLLBACK or a crash mid-transaction drops them).  The
        statement the crash interrupts is remembered for post-recovery
        adjudication against the durable log.
        """
        report = self.report
        server = self.server
        self._pending_at_crash = []
        self._interrupted_txn = None
        pending = []
        for item in self.workload:
            sql, params = item if isinstance(item, tuple) else (item, None)
            ambient_txn = connection._txn_id
            txn_before = server._next_txn_id
            try:
                if sql == CHECKPOINT:
                    server.checkpoint()
                else:
                    connection.execute(sql, params=params)
            except SimulatedCrash as crash:
                report.crashed = True
                report.crash_site = str(crash)
                if sql != CHECKPOINT:
                    report.interrupted_statement = (sql, params)
                    self._interrupted_txn = (
                        ambient_txn if ambient_txn is not None
                        else txn_before
                        if server._next_txn_id > txn_before else None
                    )
                    self._pending_at_crash = list(pending)
                return
            report.statements_run += 1
            if sql == CHECKPOINT:
                continue
            if connection._txn_id is not None:
                # BEGIN, or a statement inside the open transaction.
                pending.append((sql, params))
            elif ambient_txn is not None:
                # This statement closed the transaction.
                if sql.strip().upper().startswith("COMMIT"):
                    report.committed_statements.extend(
                        pending + [(sql, params)]
                    )
                pending = []
            else:
                report.committed_statements.append((sql, params))

    # ------------------------------------------------------------------ #
    # differential verification
    # ------------------------------------------------------------------ #

    def _verify(self):
        """Replay the committed statements on a fresh server; the
        recovered server must hold exactly the same rows, and its rebuilt
        indexes must agree with the heaps."""
        report = self.report
        reference = self.server_factory()
        ref_connection = reference.connect()
        for sql in self.schema:
            ref_connection.execute(sql)
        for sql, params in report.committed_statements:
            ref_connection.execute(sql, params=params)
        try:
            for table in reference.catalog.tables():
                expected = self._table_rows(reference, table.name)
                actual = self._table_rows(self.server, table.name)
                if expected != actual:
                    raise VerificationError(
                        "table %r diverged after recovery: expected %d "
                        "committed rows, recovered %d (first difference: %r)"
                        % (
                            table.name, len(expected), len(actual),
                            _first_difference(expected, actual),
                        )
                    )
                report.tables_verified += 1
                report.rows_verified += len(actual)
            self._verify_indexes()
        finally:
            ref_connection.close()

    def _verify_indexes(self):
        server = self.server
        for index in server.catalog.indexes():
            if getattr(index, "virtual", False) or index.btree is None:
                continue
            table = server.catalog.table(index.table_name)
            heap_keys = sorted(
                (
                    tuple(
                        row[table.column_index(c)]
                        for c in index.column_names
                    ),
                    row_id,
                )
                for row_id, row in table.storage.scan()
            )
            index_keys = sorted(
                (tuple(key), row_id)
                for key, row_id in index.btree.range_scan()
            )
            if heap_keys != index_keys:
                raise VerificationError(
                    "index %r disagrees with heap %r after rebuild: %d "
                    "heap entries vs %d index entries"
                    % (
                        index.name, table.name,
                        len(heap_keys), len(index_keys),
                    )
                )

    @staticmethod
    def _table_rows(server, table_name):
        table = server.catalog.table(table_name)
        if table.storage is None:
            return []
        return sorted(row for __, row in table.storage.scan())

    # ------------------------------------------------------------------ #
    # physical determinism surface
    # ------------------------------------------------------------------ #

    def state_fingerprint(self):
        """Canonical text of every table's post-recovery page images.

        Two harness runs with the same seed and workload must produce
        byte-identical fingerprints — the determinism assertion of the
        crash-matrix tests.
        """
        parts = []
        for table in sorted(
            self.server.catalog.tables(), key=lambda t: t.name
        ):
            if table.storage is None:
                continue
            images = table.storage.page_images()
            for ordinal in sorted(images):
                parts.append(
                    "%s:%d %s" % (table.name, ordinal, images[ordinal])
                )
        return "\n".join(parts)


def _first_difference(expected, actual):
    missing = [row for row in expected if row not in actual]
    extra = [row for row in actual if row not in expected]
    if missing:
        return ("missing", missing[0])
    if extra:
        return ("extra", extra[0])
    return None


class GroupCommitCrashHarness(CrashHarness):
    """Crash inside a *batched* group-commit force and adjudicate acks.

    The single-connection :class:`CrashHarness` can only die inside a
    force that covers one commit.  This harness drives N scheduler
    sessions so several commits share one force, arms a crash point
    (typically ``wal.group_force``), and verifies the ack contract
    differentially:

    * **no acknowledged commit lost** — every statement whose
      ``execute`` returned before the crash (its session resumed its
      statement generator) must survive recovery, checked both at the
      log level (the acked transaction set is a subset of the recovered
      committed set) and at the heap level (differential replay);
    * **no unacknowledged commit reported durable** — a transaction the
      crash interrupted may or may not survive (its COMMIT record raced
      the dying force), but any survivor must have been in the crash-time
      batch, and the recovered tables must equal the reference plus the
      effects of exactly some subset of the interrupted statements —
      never a partial statement, never an invented row.

    ``sessions`` is a list of ``(name, [sql, ...])`` pairs; statements
    run autocommit on their session's own connection under the
    :class:`~repro.engine.scheduler.WorkloadScheduler`.
    """

    def __init__(self, server_factory, schema, sessions, crash_point=None,
                 seed=0, switch_rate=0.25, tear_tail=None):
        super().__init__(
            server_factory, schema, workload=[], crash_point=crash_point,
            tear_tail=tear_tail,
        )
        self.sessions = [(name, list(stmts)) for name, stmts in sessions]
        self.seed = seed
        self.switch_rate = switch_rate
        self.scheduler = None
        #: Statements acknowledged before the crash, in per-session order.
        self.acked = {name: [] for name, __ in self.sessions}
        #: The statement each session had in flight when the run ended.
        self.inflight = {name: None for name, __ in self.sessions}
        #: Interrupted statements that recovery adjudicated as committed.
        self.survivors = []
        self._schema_txns = set()

    def run(self):
        from repro.engine.scheduler import WorkloadScheduler

        report = self.report
        self.server = self.server_factory()
        connection = self.server.connect()
        self._apply_schema(connection)
        # Schema-era transactions live before the checkpoint; restart
        # recovery never rescans them, so the log-level adjudication
        # below only covers workload-era commits.
        self._schema_txns = set(self.server.txn_log.committed_txns())
        self._arm()
        scheduler = WorkloadScheduler(
            self.server, seed=self.seed, switch_rate=self.switch_rate
        )
        self.scheduler = scheduler
        for name, statements in self.sessions:
            scheduler.add_session(
                name, self._session_source(name, statements)
            )
        try:
            scheduler.run()
        except SimulatedCrash as crash:
            report.crashed = True
            report.crash_site = str(crash)
        finally:
            self._disarm()
        report.statements_run = sum(
            s.statements_run for s in scheduler.sessions
        )
        report.committed_statements = [
            (sql, None)
            for name, __ in self.sessions
            for sql in self.acked[name]
        ]
        if report.crashed:
            self._crash_and_adjudicate()
        self._verify_exactly()
        return report

    def _session_source(self, name, statements):
        def source(connection):
            for sql in statements:
                self.inflight[name] = sql
                yield sql
                # The generator resumes only after ``execute`` returned,
                # i.e. after the commit was acknowledged durable.
                self.acked[name].append(sql)
                self.inflight[name] = None
        return source

    def _crash_and_adjudicate(self):
        """Kill, restart, and check the log-level ack contract."""
        server = self.server
        acked_txns = (
            set(server.txn_log.committed_txns()) - self._schema_txns
        )
        in_batch = {t.txn_id for t in server.group_commit.pending_tickets()}
        # A transaction that appended its COMMIT record but was never
        # acked is still "active" in memory; only those may surface as
        # extra committed transactions after recovery.
        allowed_extra = in_batch | set(server.txn_log.active_txns())
        server.crash(tear_tail=self.tear_tail)
        self.report.recovery = server.restart()
        recovered = set(server.txn_log.committed_txns())
        lost = acked_txns - recovered
        if lost:
            raise VerificationError(
                "acknowledged commits lost by recovery: txns %s"
                % sorted(lost)
            )
        stray = (recovered - acked_txns) - allowed_extra
        if stray:
            raise VerificationError(
                "recovery committed transactions that were neither "
                "acknowledged nor in the crash-time batch: %s"
                % sorted(stray)
            )

    def _verify_exactly(self):
        """Find the unique subset of interrupted statements whose replay
        reproduces the recovered state exactly."""
        report = self.report
        interrupted = [
            (name, self.inflight[name])
            for name, __ in self.sessions
            if self.inflight[name] is not None
        ]
        actual = {
            table.name: self._table_rows(self.server, table.name)
            for table in self.server.catalog.tables()
        }
        for mask in range(1 << len(interrupted)):
            subset = [
                (sql, None)
                for bit, (__, sql) in enumerate(interrupted)
                if mask & (1 << bit)
            ]
            if self._reference_matches(subset, actual):
                self.survivors = [sql for sql, __ in subset]
                report.committed_statements.extend(subset)
                report.interrupted_committed = bool(subset)
                report.tables_verified = len(actual)
                report.rows_verified = sum(
                    len(rows) for rows in actual.values()
                )
                self._verify_indexes()
                return
        raise VerificationError(
            "recovered state matches no subset of the %d interrupted "
            "statements over the %d acknowledged ones (partial or "
            "invented effects)"
            % (len(interrupted), len(report.committed_statements))
        )

    def _reference_matches(self, subset, actual):
        reference = self.server_factory()
        ref_connection = reference.connect()
        try:
            for sql in self.schema:
                ref_connection.execute(sql)
            for sql, params in self.report.committed_statements + subset:
                ref_connection.execute(sql, params=params)
            for name, rows in actual.items():
                if self._table_rows(reference, name) != rows:
                    return False
            return True
        finally:
            ref_connection.close()
