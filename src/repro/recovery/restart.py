"""Restart recovery: ARIES-lite analysis / redo / undo.

The recovery contract is *committed-exactly*: after a crash, restart
rebuilds the database so that every committed transaction's effects are
present and no loser's are.  The passes follow ARIES in miniature:

**analysis**
    The reopened log (scanned from the last complete checkpoint via the
    master record) names the loser transactions — those with a BEGIN but
    no COMMIT/ROLLBACK.  If a loser was already active at the checkpoint
    its change records may predate the scan window, so analysis falls
    back to a full log scan to get complete undo chains.

**redo**
    History repeats: *every* data-change record in the window — winners,
    losers, and the compensation records of runtime rollbacks — is
    reapplied through the per-page LSN guard
    (:meth:`~repro.storage.rowstore.TableStorage.redo_apply`), so pages
    that were flushed before the crash are never double-applied.

**undo**
    Losers are rolled back newest-first from their before-images.  Each
    undo write is itself logged as a compensation record before the
    loser's ROLLBACK, so a crash *during* recovery just re-runs redo over
    the compensations.  Loser slots cannot have been reused by winners:
    the locks guarding them died with the process, still held.

Indexes are volatile casualties of the crash; they are rebuilt from the
recovered heaps.  Recovery work is priced on the simulated clock by the
devices themselves, which is what lets the checkpoint governor compare
its recovery-time *estimate* against measured restarts.
"""

import dataclasses

from repro.analysis import sanitizers
from repro.storage.btree import BTree
from repro.storage.log import (
    DELETE as LOG_DELETE,
    INSERT as LOG_INSERT,
    TransactionLog,
    UPDATE as LOG_UPDATE,
)

_CHANGE_KINDS = (LOG_INSERT, LOG_UPDATE, LOG_DELETE)

#: Inverse record shapes for undo compensation logging:
#: kind -> (compensation kind, before from, after from).
_INVERSE = {
    LOG_INSERT: LOG_DELETE,
    LOG_DELETE: LOG_INSERT,
    LOG_UPDATE: LOG_UPDATE,
}


@dataclasses.dataclass
class RecoveryReport:
    """What one restart recovery did (returned by ``Server.restart``)."""

    log_records_scanned: int = 0
    full_rescan: bool = False
    torn_pages_dropped: int = 0
    redo_records: int = 0
    redo_applied: int = 0
    undo_records: int = 0
    losers_aborted: int = 0
    tables_rebuilt: int = 0
    indexes_rebuilt: int = 0
    duration_us: int = 0


class RecoveryManager:
    """Runs the restart passes against a crashed server's surviving state.

    The server has already been through ``Server.crash()``: the pool is
    empty, the log was reopened from its durable pages, and every table's
    storage was reattached to the surviving file pages.
    """

    def __init__(self, server):
        self.server = server

    def run(self):
        server = self.server
        start_us = server.clock.now
        report = RecoveryReport()
        log = self._analysis(report)
        losers = log.active_txns()
        records = log.loaded_records()
        report.log_records_scanned = len(records)
        report.torn_pages_dropped = log.torn_pages_dropped

        self._redo(records, report)
        if server.sanitize:
            self._assert_redo_idempotent(records)
        self._undo(records, losers, report)
        self._rebuild(report)
        self._bump_txn_ids(records)
        server.checkpoint()

        report.duration_us = server.clock.now - start_us
        self._publish(report, losers)
        return report

    # ------------------------------------------------------------------ #
    # passes
    # ------------------------------------------------------------------ #

    def _analysis(self, report):
        """Pick the log window undo can trust, rescanning if needed."""
        server = self.server
        log = server.txn_log
        ckpt = log.last_checkpoint
        if (
            log.base_lsn > 0
            and ckpt is not None
            and log.active_txns() & set(ckpt.after["active"])
        ):
            # A loser predates the checkpoint: its undo chain may extend
            # before the scan window.  Reread the whole log.
            log = TransactionLog.open(
                server.log_file, metrics=server.metrics,
                fault_plan=server.fault_plan, full_scan=True,
            )
            server.txn_log = log
            report.full_rescan = True
        return log

    def _redo(self, records, report):
        catalog = self.server.catalog
        for record in records:
            if record.kind not in _CHANGE_KINDS:
                continue
            if not catalog.has_table(record.table):
                # DDL is not logged; records for since-dropped tables
                # have nothing to land on.
                continue
            report.redo_records += 1
            if catalog.table(record.table).storage.redo_apply(record):
                report.redo_applied += 1

    def _undo(self, records, losers, report):
        server = self.server
        log = server.txn_log
        loser_changes = [
            record for record in records
            if record.txn_id in losers and record.kind in _CHANGE_KINDS
        ]
        for record in reversed(loser_changes):
            if not server.catalog.has_table(record.table):
                continue
            storage = server.catalog.table(record.table).storage
            lsn = log.peek_next_lsn()
            storage.undo_apply(record, lsn)
            log.log_change(
                record.txn_id, _INVERSE[record.kind], record.table,
                record.row_id, before=record.after, after=record.before,
            )
            report.undo_records += 1
        for txn_id in sorted(losers):
            log.rollback(txn_id)
            report.losers_aborted += 1
        if losers:
            log.force()

    def _rebuild(self, report):
        """Rescan heap metadata and rebuild every index from the rows."""
        server = self.server
        for table in server.catalog.tables():
            if table.storage is None:
                continue
            rows = table.storage.rescan_metadata()
            report.tables_rebuilt += 1
            indexes = [
                index
                for index in server.catalog.indexes_on(table.name)
                if not getattr(index, "virtual", False)
                and index.btree is not None
            ]
            for index in indexes:
                server.pool.discard(index.btree.file)
                index.btree.file.truncate()
                index.btree = BTree(
                    index.btree.file, server.pool, name=index.name
                )
                report.indexes_rebuilt += 1
            for row_id, row in rows:
                server._index_insert(table, row, row_id)
            # Rebuilt from recovered committed state: stamp at the
            # restarted horizon, not the per-insert mutation stamps.
            for index in indexes:
                server._stamp_index_rebuilt(index)

    def _bump_txn_ids(self, records):
        """New transactions must not collide with any logged id."""
        highest = 0
        for record in records:
            if isinstance(record.txn_id, int):
                highest = max(highest, record.txn_id)
        self.server._next_txn_id = max(self.server._next_txn_id, highest + 1)

    # ------------------------------------------------------------------ #
    # sanitizer: redo must be idempotent
    # ------------------------------------------------------------------ #

    def _assert_redo_idempotent(self, records):
        """Replaying redo a second time must change no page image."""
        server = self.server
        before = {
            table.name: table.storage.page_images()
            for table in server.catalog.tables()
            if table.storage is not None
        }
        reapplied = []
        for record in records:
            if record.kind not in _CHANGE_KINDS:
                continue
            if not server.catalog.has_table(record.table):
                continue
            if server.catalog.table(record.table).storage.redo_apply(record):
                reapplied.append(record.lsn)
        after = {
            table.name: table.storage.page_images()
            for table in server.catalog.tables()
            if table.storage is not None
        }
        if reapplied or before != after:
            changed = [
                "%s:%d" % (name, ordinal)
                for name, images in after.items()
                for ordinal, image in images.items()
                if before.get(name, {}).get(ordinal) != image
            ]
            raise sanitizers.RecoveryIdempotenceError(
                "redo is not idempotent: second pass reapplied LSNs %r and "
                "changed pages %r" % (reapplied[:10], changed[:10])
            )

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def _publish(self, report, losers):
        server = self.server
        metrics = server.metrics
        metrics.counter("recovery.runs").inc()
        metrics.counter("recovery.redo_records").inc(report.redo_records)
        metrics.counter("recovery.redo_applied").inc(report.redo_applied)
        metrics.counter("recovery.undo_records").inc(report.undo_records)
        metrics.counter("recovery.losers_aborted").inc(report.losers_aborted)
        metrics.gauge("recovery.last_duration_us").set(report.duration_us)
        metrics.gauge("recovery.last_records_scanned").set(
            report.log_records_scanned
        )
        if server.tracer is not None:
            server.tracer.record_system(
                "recovery", server.clock.now,
                "scanned=%d redo=%d undone=%d losers=%d duration_us=%d"
                % (
                    report.log_records_scanned, report.redo_applied,
                    report.undo_records, report.losers_aborted,
                    report.duration_us,
                ),
            )
