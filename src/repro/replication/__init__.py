"""Log-shipping replication: WAL-streaming replicas, failover, oracle.

The tier in one paragraph: the primary's transaction log frames every
durable data page and ships it through a seeded simulated network to
standby replicas, which mirror the page durably on receipt (that receipt
is what commit acknowledgement waits for when synchronous shipping is
on) and apply it continuously — through the same idempotent per-page-LSN
redo restart recovery uses — once its simulated arrival time passes.
Replicas serve snapshot reads at their applied-LSN watermark, checkpoint
on their own cadence, and promote by recovering their mirrored log as if
it were a crashed primary's.  Failover picks the max-applied replica,
which per-link in-order gap-free delivery guarantees holds every
acknowledged commit.  Archive-and-restore is the one-replica degenerate
case.
"""

from repro.replication.cluster import ReplicatedCluster, ReplicationConfig
from repro.replication.failover import FailoverController
from repro.replication.harness import (
    ReplicatedCrashHarness,
    ReplicatedCrashReport,
    state_fingerprint,
)
from repro.replication.network import NetworkLink, SimNetwork
from repro.replication.replica import Replica, ReplicationProtocolError
from repro.replication.stream import LogStreamPublisher, ReplicationFrame

__all__ = [
    "FailoverController",
    "LogStreamPublisher",
    "NetworkLink",
    "Replica",
    "ReplicatedCluster",
    "ReplicatedCrashHarness",
    "ReplicatedCrashReport",
    "ReplicationConfig",
    "ReplicationFrame",
    "ReplicationProtocolError",
    "SimNetwork",
    "state_fingerprint",
]
