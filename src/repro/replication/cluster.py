"""Cluster assembly: one replicating primary plus N standby replicas.

:class:`ReplicatedCluster` owns the wiring the individual pieces stay
ignorant of: it builds the primary from a ``ServerConfig`` whose
``replication`` field carries a :class:`ReplicationConfig`, stands up
the replicas as full servers sharing the primary's simulated clock (but
with quiet fault plans — the chaos lives on the primary's disk and the
network links, not on replica devices), strings one network link per
replica, installs the publisher as a WAL stream tap, and arms the
group-commit coordinator's synchronous ack gate.

It also owns the scheduler integration.  Replica apply actors run as
*foreign* sessions of the primary's workload scheduler (they connect to
the replica server, so they skip the primary's MPL admission): each is a
generator that parks in ``wait_for_repl`` until a frame's arrival time
passes or every producer session has finished, then applies deliverable
frames with ``repl.apply`` yield points between them.  When every
session is parked and no flush or lock victim can help, the cluster's
progress hook advances the shared clock to the earliest in-flight
arrival — the one event that can wake an apply actor.

Archive-and-restore is the degenerate one-replica case: ship everything,
stop the primary, promote the sole replica.
"""

import dataclasses

from repro.common.errors import ReproError
from repro.engine.scheduler import WAITING_REPL, YIELD_REPL_APPLY
from repro.engine.server import Server, ServerConfig
from repro.faults.plan import FaultPlan, FaultRates
from repro.replication.failover import FailoverController
from repro.replication.network import SimNetwork
from repro.replication.replica import Replica
from repro.replication.stream import LogStreamPublisher


@dataclasses.dataclass
class ReplicationConfig:
    """Knobs carried by ``ServerConfig.replication`` on the primary."""

    #: Standby count; 1 is the archive-and-restore degenerate case.
    n_replicas: int = 1
    #: Commits ack only after their frames are durably received by at
    #: least one replica.  ``False`` degrades to pure asynchronous
    #: shipping (acked commits can be lost with the primary).
    sync_ack: bool = True
    #: Replica checkpoint cadence, in applied frames.
    replica_checkpoint_frames: int = 32


def _quiet_plan(seed):
    """A fault plan that never injects: replicas stay deterministic under
    ``REPRO_FAULTS`` without adding their own device chaos."""
    return FaultPlan(seed, rates=FaultRates(
        disk_read_error=0.0, disk_write_error=0.0, disk_latency=0.0,
        working_set_outage=0.0, spill_write_error=0.0, log_force_error=0.0,
    ))


class ReplicatedCluster:
    """Primary + replicas + network + publisher + failover controller."""

    def __init__(self, config=None):
        if config is None:
            config = ServerConfig(replication=ReplicationConfig())
        repl_config = config.replication
        if repl_config is None:
            repl_config = ReplicationConfig()
        self.repl_config = repl_config
        self.primary = Server(config)
        self.clock = self.primary.clock
        plan = self.primary.fault_plan
        seed = plan.seed if plan is not None else 0
        self.network = SimNetwork(self.clock, fault_plan=plan, seed=seed)
        self.publisher = LogStreamPublisher(
            self.clock, fault_plan=plan, metrics=self.primary.metrics
        )
        self.replicas = []
        for ordinal in range(max(1, repl_config.n_replicas)):
            name = "replica-%d" % (ordinal + 1)
            standby = Server(
                self._replica_config(config, seed, ordinal), clock=self.clock
            )
            replica = Replica(
                name, standby,
                checkpoint_every_frames=repl_config.replica_checkpoint_frames,
            )
            self.publisher.attach(
                self.network.link("primary->%s" % name, replica)
            )
            self.replicas.append(replica)
        self.primary.txn_log.stream_taps.append(self.publisher.tap)
        if repl_config.sync_ack:
            self.primary.group_commit.replication = self.publisher
        self.controller = FailoverController(self)
        self._scheduler = None

    @staticmethod
    def _replica_config(config, seed, ordinal):
        return dataclasses.replace(
            config,
            replication=None,
            fault_plan=_quiet_plan(seed * 1_000 + ordinal),
            start_buffer_governor=False,
            start_checkpoint_governor=False,
        )

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #

    def connect(self):
        return self.primary.connect()

    def execute_schema(self, statements):
        """Apply DDL on every node (DDL is not logged, so it cannot ride
        the stream), then put the replicas into standby mode."""
        conn = self.primary.connect()
        try:
            for sql in statements:
                conn.execute(sql)
                for replica in self.replicas:
                    replica.execute_ddl(sql)
        finally:
            conn.close()
        for replica in self.replicas:
            replica.enter_standby()

    def load_table(self, table_name, rows):
        """Bulk-load on the primary; the logged load ships like any DML."""
        loaded = self.primary.load_table(table_name, rows)
        self.sync()
        return loaded

    def sync(self, max_rounds=64):
        """Ship every published frame everywhere and apply it.

        Setup and end-of-run helper — the scheduled path applies at
        arrival times instead.  Retries through partitions by advancing
        the clock to heal times; a link that still cannot catch up after
        ``max_rounds`` is a wiring bug, not injected chaos.
        """
        target = len(self.publisher.frames)
        rounds = 0
        while any(
            self.publisher.link_cursor(link) < target
            for link in self.publisher.links
        ):
            if self.publisher.pump():
                continue
            rounds += 1
            if rounds > max_rounds:
                raise ReproError(
                    "replication sync stalled: %s"
                    % [
                        (link.name, self.publisher.link_cursor(link))
                        for link in self.publisher.links
                    ]
                )
            self._stall_for_sync(target)
        applied = 0
        for replica in self.replicas:
            applied += replica.drain()
        return applied

    def _stall_for_sync(self, target):
        """Advance the clock toward whatever frees a *lagging* link: the
        earliest heal among partitioned stragglers (the publisher's own
        stall only heal-jumps when every link is down — here a link that
        already caught up must not mask a partitioned one), else one
        retry backoff quantum."""
        now = self.clock.now
        heals = [
            link.partitioned_until
            for link in self.publisher.links
            if self.publisher.link_cursor(link) < target
            and link.partitioned_until > now
        ]
        if heals:
            self.clock.advance(min(heals) - now)
        else:
            self.clock.advance(self.publisher.rates.io_retry_backoff_us)

    # ------------------------------------------------------------------ #
    # scheduler integration
    # ------------------------------------------------------------------ #

    def attach_scheduler(self, scheduler):
        """Register the apply actors and the progress hook.

        Call *after* the workload sessions are added: session order is
        part of the determinism contract, and the first-added session
        receives the baton first.
        """
        if scheduler.server is not self.primary:
            raise ReproError(
                "scheduler must run the cluster's primary server"
            )
        self._scheduler = scheduler
        scheduler.progress_hooks.append(self._advance_to_next_arrival)
        for replica in self.replicas:
            scheduler.add_session(
                "apply:%s" % replica.name,
                self._apply_source(replica, scheduler),
                server=replica.server,
            )

    def _apply_source(self, replica, scheduler):
        def source(conn):
            def ready():
                return (
                    replica.has_deliverable()
                    or self._producers_done(scheduler)
                )

            while True:
                scheduler.wait_for_repl(ready)
                if replica.has_deliverable():
                    yield self._apply_step(replica, scheduler)
                    continue
                if not self._producers_done(scheduler):
                    continue  # spurious wakeup: re-park
                if not replica.inbox:
                    return
                # Producers finished with frames still in flight: pull
                # the clock to the next arrival and keep applying.
                arrival = replica.next_arrival_us()
                if arrival > self.clock.now:
                    self.clock.advance(arrival - self.clock.now)
        return source

    @staticmethod
    def _apply_step(replica, scheduler):
        def apply_frames(conn):
            while replica.has_deliverable():
                replica.apply_one()
                scheduler.yield_point(YIELD_REPL_APPLY)
        apply_frames.__name__ = "repl.apply"
        return apply_frames

    @staticmethod
    def _producers_done(scheduler):
        from repro.engine.scheduler import ABORTED, DONE, FAILED

        return all(
            session.status in (DONE, FAILED, ABORTED)
            for session in scheduler.sessions
            if session.server is None
        )

    def _advance_to_next_arrival(self):
        """Scheduler progress hook: every session is parked and neither a
        flush nor a lock victim helped — the only remaining event is an
        in-flight frame arrival, so jump the clock there."""
        scheduler = self._scheduler
        if scheduler is None:
            return False
        if not any(
            session.status == WAITING_REPL
            for session in scheduler.sessions
        ):
            return False
        now = self.clock.now
        arrivals = [
            entry.arrival_us
            for replica in self.replicas
            for entry in replica.inbox
            if entry.arrival_us > now
        ]
        if not arrivals:
            return False
        self.clock.advance(min(arrivals) - now)
        return True

    # ------------------------------------------------------------------ #
    # failover
    # ------------------------------------------------------------------ #

    def fail_over(self):
        """Promote the best replica (the primary is presumed dead)."""
        return self.controller.promote_best()
