"""Failover: pick and promote the best replica after the primary dies.

The controller's one correctness obligation is **zero acknowledged
loss**: every commit the primary acked must survive on the promoted
node.  Per-link frame reception is gap-free and in LSN order, so each
replica holds a *prefix* of the shipped stream and the prefixes are
totally ordered — the replica with the highest received LSN holds every
frame any replica holds, and in particular every frame behind the
publisher's acked LSN.  Promoting the max-applied replica (after
draining its in-flight arrivals) is therefore always safe.

A partition *during* failover cannot change which replica is best — the
frames exist or they don't — but it blinds the controller: it cannot
read a partitioned replica's applied LSN, and electing on partial
information could promote a stale node.  The controller instead waits
(on the simulated clock) for every partition to heal before deciding;
that stall is real failover latency and feeds the E21 benchmark's
failover-time measurement.
"""


class FailoverController:
    """Detects primary death (the harness tells it) and promotes."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.promoted = None
        self.recovery = None
        #: Simulated time from failover start to the promoted node being
        #: open for business (partition stall + drain + restart recovery).
        self.failover_us = None

    def promote_best(self):
        """Wait out partitions, drain arrivals, promote the max-applied
        replica.  Returns the promoted :class:`Replica`."""
        cluster = self.cluster
        clock = cluster.clock
        started = clock.now
        heal = max(
            (link.partitioned_until for link in cluster.network.links),
            default=-1,
        )
        if heal > clock.now:
            # Blind spot: a partitioned replica's state is unreadable, so
            # the election waits for the seeded heal time.
            clock.advance(heal - clock.now)
        for replica in cluster.replicas:
            replica.drain()
        # max() keeps the first maximal element, so ties break to the
        # lowest replica ordinal — deterministic under equal LSNs.
        best = max(cluster.replicas, key=lambda r: r.applied_lsn)
        self.recovery = best.promote()
        self.promoted = best
        self.failover_us = clock.now - started
        return best
