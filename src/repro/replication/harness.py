"""Replicated crash harness: kill the primary, fail over, verify.

This is the replication tier's differential oracle.  One run:

1. builds a :class:`~repro.replication.cluster.ReplicatedCluster`,
   applies schema and priming loads everywhere, and checkpoints so the
   crash only ever destroys workload effects;
2. arms a :class:`~repro.recovery.harness.CrashPoint` on the *primary's*
   log (``wal.group_force`` kills inside a batched force: some of the
   batch's frames have shipped, some haven't);
3. drives N workload sessions plus the replica apply actors under one
   :class:`~repro.engine.scheduler.WorkloadScheduler` until the primary
   "dies" (the :class:`SimulatedCrash` escapes the scheduler — the
   primary is never restarted; replicas survive it);
4. optionally tears the mirrored-log tail of a *spare* replica (one that
   will not win the election), modelling a replica that died mid-receive;
5. fails over and checks three contracts against the promoted node:

   * **zero acknowledged loss** — every transaction the primary's
     group-commit settled (settling waits on the synchronous-replication
     ack gate) is in the promoted node's committed set;
   * **no invented commits** — anything committed beyond the
     acknowledged set was in the crash-time batch or active at death;
   * **committed-exactly** — the promoted node's tables equal a fresh
     single-node server replaying schema + loads + acknowledged
     statements + exactly some subset of the crash-interrupted ones
     (the subset-mask idiom of
     :class:`~repro.recovery.harness.GroupCommitCrashHarness`).

Determinism is the caller's half: run the harness twice with one seed
and compare ``scheduler.trace``, the fault-plan log, and
:func:`state_fingerprint` of the promoted server byte-for-byte.
"""

import dataclasses

from repro.common.errors import SimulatedCrash
from repro.engine.server import Server
from repro.recovery.harness import CrashHarness, VerificationError
from repro.replication.cluster import ReplicatedCluster, _quiet_plan


def state_fingerprint(server):
    """Canonical text of every table's page images on ``server`` — the
    physical-determinism surface, byte-comparable across same-seed runs."""
    parts = []
    for table in sorted(server.catalog.tables(), key=lambda t: t.name):
        if table.storage is None:
            continue
        images = table.storage.page_images()
        for ordinal in sorted(images):
            parts.append("%s:%d %s" % (table.name, ordinal, images[ordinal]))
    return "\n".join(parts)


class ReplicatedCrashReport:
    """Everything one replicated harness run learned."""

    def __init__(self):
        self.crashed = False
        self.crash_site = None
        self.promoted_name = None
        self.failover_us = None
        self.recovery = None
        self.acked_statements = []
        self.survivors = []
        self.torn_replica = None
        self.tables_verified = 0
        self.rows_verified = 0

    def __repr__(self):
        return (
            "ReplicatedCrashReport(crashed=%r, promoted=%r, acked=%d, "
            "survivors=%d, verified=%d rows)"
            % (
                self.crashed, self.promoted_name,
                len(self.acked_statements), len(self.survivors),
                self.rows_verified,
            )
        )


class ReplicatedCrashHarness:
    """Crash the primary of a replicated cluster and verify failover.

    ``config`` is the primary's :class:`~repro.engine.server.ServerConfig`
    (its ``replication`` field sizes the cluster).  ``schema`` is DDL,
    ``loads`` is ``[(table, rows), ...]``, ``sessions`` is
    ``[(name, [sql, ...]), ...]`` run autocommit under the scheduler.
    ``crash_point=None`` skips the kill: the workload completes, the
    primary is simply abandoned, and failover degenerates to
    archive-and-restore.
    """

    def __init__(self, config, schema, loads, sessions, crash_point=None,
                 seed=0, switch_rate=0.25, tear_spare_tail=False,
                 before_failover=None):
        self.config = config
        self.schema = list(schema)
        self.loads = list(loads)
        self.sessions = [(name, list(stmts)) for name, stmts in sessions]
        self.crash_point = crash_point
        self.seed = seed
        self.switch_rate = switch_rate
        #: Tear the mirrored-log tail of a replica that will *lose* the
        #: election (a node that died mid-receive must not poison the
        #: promotion of its healthy peer).
        self.tear_spare_tail = tear_spare_tail
        #: Optional ``callback(cluster)`` run between the primary's death
        #: and the election — the partition-during-failover window.
        self.before_failover = before_failover
        self.cluster = None
        self.scheduler = None
        self.report = ReplicatedCrashReport()
        self.acked = {name: [] for name, __ in self.sessions}
        self.inflight = {name: None for name, __ in self.sessions}
        self._schema_txns = set()

    # ------------------------------------------------------------------ #
    # the run
    # ------------------------------------------------------------------ #

    def run(self):
        from repro.engine.scheduler import WorkloadScheduler

        report = self.report
        cluster = ReplicatedCluster(self.config)
        self.cluster = cluster
        primary = cluster.primary
        cluster.execute_schema(self.schema)
        for table_name, rows in self.loads:
            cluster.load_table(table_name, rows)
        primary.checkpoint()
        cluster.sync()
        self._schema_txns = set(primary.txn_log.committed_txns())
        self._arm(primary)
        scheduler = WorkloadScheduler(
            primary, seed=self.seed, switch_rate=self.switch_rate
        )
        self.scheduler = scheduler
        for name, statements in self.sessions:
            scheduler.add_session(name, self._session_source(name, statements))
        cluster.attach_scheduler(scheduler)
        try:
            scheduler.run()
        except SimulatedCrash as crash:
            report.crashed = True
            report.crash_site = str(crash)
        finally:
            primary.txn_log.crash_hook = None
        report.acked_statements = [
            (sql, None)
            for name, __ in self.sessions
            for sql in self.acked[name]
        ]
        # Adjudicate at the instant of death, before failover touches
        # anything: what did the primary settle, and what was in flight?
        acked_txns = (
            set(primary.txn_log.committed_txns()) - self._schema_txns
        )
        in_batch = {
            t.txn_id for t in primary.group_commit.pending_tickets()
        }
        allowed_extra = in_batch | set(primary.txn_log.active_txns())
        if self.tear_spare_tail:
            report.torn_replica = self._tear_spare()
        if self.before_failover is not None:
            self.before_failover(cluster)
        promoted = cluster.fail_over()
        report.promoted_name = promoted.name
        report.failover_us = cluster.controller.failover_us
        report.recovery = cluster.controller.recovery
        self._check_acked(promoted, acked_txns, allowed_extra)
        self._verify_exactly(promoted)
        return report

    def _arm(self, primary):
        if self.crash_point is None:
            return
        point = self.crash_point
        remaining = [point.occurrence]

        def hook(site):
            if site != point.site:
                return
            remaining[0] -= 1
            if remaining[0] <= 0:
                raise SimulatedCrash("crash point %s" % (site,))

        primary.txn_log.crash_hook = hook

    def _session_source(self, name, statements):
        def source(connection):
            session = next(
                s for s in self.scheduler.sessions if s.name == name
            )
            for sql in statements:
                self.inflight[name] = sql
                failed_before = session.statements_failed
                yield sql
                # The generator resumes only after ``execute`` returned —
                # but the scheduler absorbs statement-level fault
                # casualties, so "resumed" only means "acked" when the
                # statement did not fail.
                self.inflight[name] = None
                if session.statements_failed == failed_before:
                    self.acked[name].append(sql)
        return source

    def _tear_spare(self):
        """Tear the mirrored tail of a replica the election won't pick."""
        replicas = self.cluster.replicas
        if len(replicas) < 2:
            return None
        best = max(replicas, key=lambda r: r.received_lsn)
        spare = next(r for r in replicas if r is not best)
        return spare.name if spare.tear_tail() else None

    # ------------------------------------------------------------------ #
    # the oracle
    # ------------------------------------------------------------------ #

    def _check_acked(self, promoted, acked_txns, allowed_extra):
        """Log-level ack contract against the promoted node."""
        recovered = set(promoted.committed)
        lost = acked_txns - recovered
        if lost:
            raise VerificationError(
                "failover lost acknowledged commits: txns %s (promoted %r "
                "applied to LSN %d)"
                % (sorted(lost), promoted.name, promoted.applied_lsn)
            )
        stray = (recovered - self._schema_txns - acked_txns) - allowed_extra
        if stray:
            raise VerificationError(
                "promoted node committed transactions that were neither "
                "acknowledged nor in the crash-time batch: %s"
                % sorted(stray)
            )

    def _verify_exactly(self, promoted):
        """Row-level committed-exactly, differentially against a fresh
        single-node server replaying the acknowledged prefix plus exactly
        some subset of the crash-interrupted statements."""
        report = self.report
        server = promoted.server
        interrupted = [
            (name, self.inflight[name])
            for name, __ in self.sessions
            if self.inflight[name] is not None
        ]
        actual = {
            table.name: CrashHarness._table_rows(server, table.name)
            for table in server.catalog.tables()
        }
        for mask in range(1 << len(interrupted)):
            subset = [
                (sql, None)
                for bit, (__, sql) in enumerate(interrupted)
                if mask & (1 << bit)
            ]
            if self._reference_matches(subset, actual):
                report.survivors = [sql for sql, __ in subset]
                report.tables_verified = len(actual)
                report.rows_verified = sum(
                    len(rows) for rows in actual.values()
                )
                self._verify_indexes(server)
                return
        raise VerificationError(
            "promoted state matches no subset of the %d interrupted "
            "statements over the %d acknowledged ones (partial or "
            "invented effects survived failover)"
            % (len(interrupted), len(report.acked_statements))
        )

    def _reference_matches(self, subset, actual):
        reference = self._reference_server()
        connection = reference.connect()
        try:
            for sql in self.schema:
                connection.execute(sql)
            for table_name, rows in self.loads:
                reference.load_table(table_name, rows)
            for sql, params in self.report.acked_statements + subset:
                connection.execute(sql, params=params)
            for name, rows in actual.items():
                if CrashHarness._table_rows(reference, name) != rows:
                    return False
            return True
        finally:
            connection.close()

    def _reference_server(self):
        return Server(dataclasses.replace(
            self.config,
            replication=None,
            fault_plan=_quiet_plan(self.seed),
            start_buffer_governor=False,
            start_checkpoint_governor=False,
        ))

    @staticmethod
    def _verify_indexes(server):
        for index in server.catalog.indexes():
            if getattr(index, "virtual", False) or index.btree is None:
                continue
            table = server.catalog.table(index.table_name)
            heap_keys = sorted(
                (
                    tuple(
                        row[table.column_index(c)]
                        for c in index.column_names
                    ),
                    row_id,
                )
                for row_id, row in table.storage.scan()
            )
            index_keys = sorted(
                (tuple(key), row_id)
                for key, row_id in index.btree.range_scan()
            )
            if heap_keys != index_keys:
                raise VerificationError(
                    "index %r disagrees with heap %r after promotion: %d "
                    "heap entries vs %d index entries"
                    % (
                        index.name, table.name,
                        len(heap_keys), len(index_keys),
                    )
                )
