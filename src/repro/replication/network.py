"""Simulated replication network: seeded latency, drops, and partitions.

The log-shipping tier moves WAL frames from the primary to its replicas
over :class:`NetworkLink`\\ s.  Each link is deterministic under the
cluster's fault plan: latency, frame drops, and partition onsets are all
drawn from per-link substreams (``net.latency#<link>`` and friends), so
one link's draws never disturb another's and two same-seed runs ship
byte-identical frame schedules.

Delivery semantics, chosen to match the log's own guarantees:

* a frame **sent** successfully is **durably received** immediately — the
  replica mirrors the page into its own log file before the call
  returns (that durable receipt is what the group-commit coordinator's
  synchronous ack gate waits for);
* the *arrival* time returned by :meth:`NetworkLink.send` is when the
  frame becomes eligible for **apply** on the replica — latency delays
  visibility, never durability;
* arrivals are clamped non-decreasing per link, so frames are applied in
  ship (= LSN) order: the network never reorders a link's stream;
* a dropped frame simply fails the send — the publisher's per-link
  cursor does not advance and the frame is retransmitted (go-back-N
  degenerates to resend-from-cursor because sends are synchronous);
* a partitioned link fails every send until its seeded heal time.
"""

import random

from repro.faults.plan import (
    NET_LATENCY,
    NET_PARTITION,
    NET_SEND_DROP,
    FaultRates,
)


class SimNetwork:
    """The cluster's links, sharing one clock and one fault plan."""

    def __init__(self, clock, fault_plan=None, rates=None, seed=0):
        self.clock = clock
        self.fault_plan = fault_plan
        if rates is None:
            rates = (
                fault_plan.rates if fault_plan is not None else FaultRates()
            )
        self.rates = rates
        self.seed = int(seed)
        self.links = []

    def link(self, name, receiver):
        """Create (and register) a link delivering to ``receiver``."""
        if any(existing.name == name for existing in self.links):
            raise ValueError("duplicate link name %r" % (name,))
        link = NetworkLink(name, self, receiver)
        self.links.append(link)
        return link

    def partitioned_links(self):
        now = self.clock.now
        return [link for link in self.links if link.partitioned_until > now]


class NetworkLink:
    """One direction of primary→replica frame shipping."""

    def __init__(self, name, network, receiver):
        self.name = name
        self.network = network
        self.receiver = receiver
        #: Clock time until which every send on this link fails.
        self.partitioned_until = -1
        self._last_arrival_us = -1
        #: Latency fallback stream when no fault plan is armed.
        self._rng = random.Random("net:%d:%s" % (network.seed, name))
        self.sends = 0
        self.delivered = 0
        self.drops = 0
        self.partitions = 0

    def __repr__(self):
        return "NetworkLink(%r, delivered=%d, drops=%d, partitions=%d)" % (
            self.name, self.delivered, self.drops, self.partitions
        )

    @property
    def partitioned(self):
        return self.network.clock.now < self.partitioned_until

    def partition(self, duration_us):
        """Force a partition (tests and the failover matrix use this to
        stand inside the partition-during-failover window)."""
        self.partitioned_until = self.network.clock.now + int(duration_us)
        self.partitions += 1
        plan = self.network.fault_plan
        if plan is not None:
            plan.record(
                NET_PARTITION,
                "link=%s forced heal_at=%d"
                % (self.name, self.partitioned_until),
            )
        return self.partitioned_until

    def send(self, frame):
        """Attempt one frame delivery; returns the apply-arrival time on
        success, None when the send failed (drop or partition)."""
        plan = self.network.fault_plan
        rates = self.network.rates
        now = self.network.clock.now
        self.sends += 1
        if now < self.partitioned_until:
            return None
        if plan is not None and plan.should(
            NET_PARTITION + "#" + self.name, rates.net_partition
        ):
            duration = plan.draw_uniform(
                NET_PARTITION + "#" + self.name,
                rates.net_partition_min_us, rates.net_partition_max_us,
            )
            self.partitioned_until = now + duration
            self.partitions += 1
            plan.record(
                NET_PARTITION,
                "link=%s heal_at=%d" % (self.name, self.partitioned_until),
            )
            return None
        if plan is not None and plan.should(
            NET_SEND_DROP + "#" + self.name, rates.net_send_drop
        ):
            self.drops += 1
            plan.record(
                NET_SEND_DROP,
                "link=%s lsn=%d" % (self.name, frame.first_lsn),
            )
            return None
        if plan is not None:
            latency = plan.draw_uniform(
                NET_LATENCY + "#" + self.name,
                rates.net_latency_min_us, rates.net_latency_max_us + 1,
            )
        else:
            latency = self._rng.randrange(
                rates.net_latency_min_us, rates.net_latency_max_us + 1
            )
        arrival = max(now + latency, self._last_arrival_us)
        self._last_arrival_us = arrival
        self.receiver.receive(frame, arrival)
        self.delivered += 1
        return arrival
