"""The replica: a standby server applying a shipped WAL stream.

A :class:`Replica` wraps a full :class:`~repro.engine.server.Server`
that shares the cluster's simulated clock but owns its own disk, buffer
pool, catalog, and metrics registry.  It never runs transactions of its
own; instead it:

* **receives** frames from its network link — the mirrored page image is
  written into the replica's own log file *immediately* (durable
  receipt, what the primary's commit ack waits for), while the frame
  queues in the inbox until its simulated arrival time (latency delays
  apply visibility, never durability);
* **applies** deliverable frames strictly in LSN order through the same
  per-page-LSN idempotent redo recovery uses
  (:meth:`~repro.storage.rowstore.TableStorage.redo_apply`), driving the
  row-version chains from the record stream so snapshot reads on the
  replica see exactly the committed prefix at its applied-LSN watermark;
* **checkpoints** on its own cadence: dirty applied pages are flushed
  and the mirrored log's master record is pointed at the newest shipped
  checkpoint pair wholly at or below the applied LSN, bounding how much
  of the mirrored log a promotion must rescan;
* **promotes** by reusing the crash/restart machinery wholesale: the
  mirrored log *is* a crashed primary's log, so
  ``server.crash(tear_tail=False)`` + ``server.restart()`` recovers the
  committed prefix, rolls back in-flight losers with compensation
  records appended past the dead primary's tail, and rebuilds indexes.

Standby indexes are never maintained during apply (redo is heap-only);
they are marked ``always_fallback`` so index scans on the replica route
through the snapshot heap-scan fallback until promotion's rebuild
re-stamps them trustworthy.
"""

import collections
import zlib

from repro.common.errors import ReproError
from repro.storage.log import (
    BEGIN,
    CKPT_BEGIN,
    CKPT_END,
    COMMIT,
    DELETE,
    INSERT,
    ROLLBACK,
    UPDATE,
    LogRecord,
)

_Inflight = collections.namedtuple("_Inflight", ["arrival_us", "frame"])


class ReplicationProtocolError(ReproError):
    """A frame arrived out of order — the link contract was violated."""


def _master_image(ckpt_begin_lsn, ckpt_page):
    return {
        "kind": "master",
        "ckpt_begin_lsn": ckpt_begin_lsn,
        "ckpt_page": ckpt_page,
        "checksum": zlib.crc32(
            repr((ckpt_begin_lsn, ckpt_page)).encode("utf-8")
        ),
    }


class Replica:
    """One standby node: mirrored log, continuous redo, snapshot reads."""

    def __init__(self, name, server, checkpoint_every_frames=32):
        self.name = name
        self.server = server
        #: Kept open for the replica's lifetime: the server must never
        #: see its connection count hit zero, or auto-shutdown would
        #: write checkpoint records into the mirrored log.
        self._conn = server.connect()
        self.inbox = collections.deque()
        #: Highest LSN durably received (mirrored into the log file).
        self.received_lsn = -1
        #: Highest LSN applied to the replica's pages and version chains.
        self.applied_lsn = -1
        self.frames_received = 0
        self.records_applied = 0
        self.checkpoints = 0
        self.promoted = False
        self.committed = set()
        self._page_index = []
        self._pending_ckpt_begin = None
        self._ckpt_pairs = []
        self._frames_since_ckpt = 0
        self.checkpoint_every_frames = int(checkpoint_every_frames)
        self._start_us = server.clock.now
        # Standby pool discipline: dirty applied pages carry the apply
        # watermark, and write-back needs no log force — every record
        # a page image reflects is already durable in the mirrored log.
        server.pool.lsn_fn = lambda: self.applied_lsn + 1
        server.pool.wal_fn = lambda: 0
        metrics = server.metrics
        self._m_frames = metrics.counter("repl.frames_received")
        self._m_records = metrics.counter("repl.records_applied")
        self._m_ckpts = metrics.counter("repl.checkpoints")
        metrics.register_probe("repl.lag_lsn", self.lag_lsn)
        metrics.register_probe("repl.lag_us", self.lag_us)
        metrics.register_probe("repl.apply_rate", self.apply_rate)

    def __repr__(self):
        return "Replica(%r, received=%d, applied=%d, promoted=%r)" % (
            self.name, self.received_lsn, self.applied_lsn, self.promoted
        )

    # ------------------------------------------------------------------ #
    # standby setup
    # ------------------------------------------------------------------ #

    def execute_ddl(self, sql):
        """Apply one setup statement (DDL) through the kept connection."""
        return self._conn.execute(sql)

    def enter_standby(self):
        """Mark every index untrustworthy for the standby's lifetime:
        apply is heap-only redo, so the B-trees go stale with the first
        shipped DML and stay stale until promotion rebuilds them."""
        for index in self.server.catalog.indexes():
            index.always_fallback = True

    # ------------------------------------------------------------------ #
    # receive (durable) and apply (deferred to arrival)
    # ------------------------------------------------------------------ #

    def receive(self, frame, arrival_us):
        """Durably mirror one frame; queue it for apply at ``arrival_us``."""
        if frame.first_lsn != self.received_lsn + 1:
            raise ReplicationProtocolError(
                "replica %r received frame at LSN %d, expected %d"
                % (self.name, frame.first_lsn, self.received_lsn + 1)
            )
        log_file = self.server.log_file
        if log_file.page_count == 0:
            page_no = log_file.allocate_page()
            log_file.write(page_no, _master_image(-1, -1))
        while log_file.page_count <= frame.page_no:
            log_file.allocate_page()
        log_file.write(frame.page_no, frame.payload)
        self.inbox.append(_Inflight(arrival_us, frame))
        self.received_lsn = frame.last_lsn
        self.frames_received += 1
        self._m_frames.inc()

    def has_deliverable(self):
        return bool(self.inbox) and (
            self.inbox[0].arrival_us <= self.server.clock.now
        )

    def next_arrival_us(self):
        return self.inbox[0].arrival_us if self.inbox else None

    def apply_one(self):
        """Apply the oldest deliverable frame; returns records applied."""
        if not self.has_deliverable():
            return 0
        return self._apply_frame(self.inbox.popleft().frame)

    def apply_pending(self):
        """Apply every frame whose arrival time has passed."""
        applied = 0
        while self.has_deliverable():
            applied += self.apply_one()
        return applied

    def drain(self):
        """Apply every received frame regardless of arrival time (used at
        failover and at end-of-run verification: the frames are already
        durable here, only their apply visibility was still in flight)."""
        applied = 0
        while self.inbox:
            applied += self._apply_frame(self.inbox.popleft().frame)
        return applied

    def _apply_frame(self, frame):
        server = self.server
        applied = 0
        for raw in frame.payload["records"]:
            record = LogRecord(*raw)
            kind = record.kind
            if kind in (INSERT, UPDATE, DELETE):
                try:
                    table = server.catalog.table(record.table)
                except Exception:
                    table = None
                if table is not None and table.storage is not None:
                    # Version chain first, heap second — the same order
                    # the primary's writers use, so snapshot readers on
                    # the replica never see a stamped heap image without
                    # its before-image.
                    server.versions.note_write(
                        table.storage, record.row_id, record.before,
                        record.txn_id,
                    )
                    table.storage.redo_apply(record)
                    # The stream applies each record exactly once in LSN
                    # order, so slot bookkeeping can ride along instead
                    # of waiting for promotion's full rescan — the
                    # standby's optimizer then costs real cardinalities.
                    if kind == INSERT:
                        table.storage.row_count += 1
                    elif kind == DELETE:
                        table.storage.row_count -= 1
            elif kind == COMMIT:
                server.versions.commit(record.txn_id, record.lsn)
                self.committed.add(record.txn_id)
            elif kind == ROLLBACK:
                server.versions.rollback(record.txn_id)
                self.committed.discard(record.txn_id)
            elif kind == CKPT_BEGIN:
                self._pending_ckpt_begin = record
            elif kind == CKPT_END:
                pending = self._pending_ckpt_begin
                if (
                    pending is not None
                    and pending.lsn == record.after["begin_lsn"]
                ):
                    self._ckpt_pairs.append((pending.lsn, record.lsn))
                self._pending_ckpt_begin = None
            elif kind == BEGIN:
                pass
            self.applied_lsn = record.lsn
            applied += 1
        self.records_applied += applied
        self._m_records.inc(applied)
        self._page_index.append((frame.page_no, frame.first_lsn))
        self._frames_since_ckpt += 1
        if self._frames_since_ckpt >= self.checkpoint_every_frames:
            self.checkpoint()
        return applied

    # ------------------------------------------------------------------ #
    # replica checkpoints
    # ------------------------------------------------------------------ #

    def checkpoint(self):
        """Flush applied pages and republish the mirrored master record.

        The master may only name a checkpoint whose BEGIN/END pair is
        *wholly* applied: every page dirtied before that BEGIN is on the
        replica's volume after this flush, so a promotion scanning from
        there redoes nothing it cannot redo idempotently.
        """
        self._frames_since_ckpt = 0
        flushed = self.server.pool.flush_all()
        chosen = None
        for begin_lsn, end_lsn in reversed(self._ckpt_pairs):
            if end_lsn <= self.applied_lsn:
                chosen = begin_lsn
                break
        if chosen is not None:
            page_no = self._page_for_lsn(chosen)
            if page_no is not None:
                self.server.log_file.write(
                    0, _master_image(chosen, page_no)
                )
        self.checkpoints += 1
        self._m_ckpts.inc()
        return flushed

    def _page_for_lsn(self, lsn):
        found = None
        for page_no, first_lsn in self._page_index:
            if first_lsn <= lsn:
                found = page_no
            else:
                break
        return found

    # ------------------------------------------------------------------ #
    # promotion and damage injection
    # ------------------------------------------------------------------ #

    def promote(self):
        """Become the primary: recover the mirrored log as if this node
        were a crashed primary.  Returns the RecoveryReport."""
        self.drain()
        server = self.server
        server.crash(tear_tail=False)
        report = server.restart()
        self.promoted = True
        self.applied_lsn = server.txn_log.durable_lsn
        # Union, not replace: a replica checkpoint may have moved the
        # mirrored master forward, so the post-restart scan only confirms
        # post-checkpoint commits; the apply-time set still holds the
        # full committed history of the received stream.
        self.committed |= set(server.txn_log.committed_txns())
        return report

    def tear_tail(self):
        """Corrupt the last mirrored log page, as a receive interrupted by
        this replica's own death would: copy-on-write into this node's
        volume only (the frame object is shared with the primary)."""
        if not self._page_index:
            return False
        page_no, __ = self._page_index[-1]
        log_file = self.server.log_file
        image = log_file.volume.peek_payload(log_file.global_page(page_no))
        if not isinstance(image, dict):
            return False
        torn = dict(image)
        torn["checksum"] = torn.get("checksum", 0) ^ 0x5A5A5A5A
        log_file.volume._store[log_file.global_page(page_no)] = torn
        return True

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #

    def lag_lsn(self):
        """Records durably received but not yet applied."""
        return max(0, self.received_lsn - self.applied_lsn)

    def lag_us(self):
        """Age of the oldest deliverable-but-unapplied frame."""
        if not self.inbox:
            return 0
        return max(0, self.server.clock.now - self.inbox[0].arrival_us)

    def apply_rate(self):
        """Applied records per simulated second since standby start."""
        elapsed = max(1, self.server.clock.now - self._start_us)
        return int(self.records_applied * 1_000_000 / elapsed)
