"""WAL frame publication: the primary side of log shipping.

:class:`LogStreamPublisher` is installed as a
:attr:`~repro.storage.log.TransactionLog.stream_taps` entry on the
primary's log: every data page the log makes durable is framed and
appended to the publication sequence, then shipped best-effort down each
attached link.  Shipping keeps one cursor per link over the shared frame
list; a failed send leaves the cursor in place and the next pump resends
from there (go-back-N, degenerate because sends are synchronous).

The tap itself must never raise — by the time it fires, the primary's
durable LSN has already advanced, so a network failure here cannot be
allowed to unwind a local commit.  The *synchronous* half of replication
lives in :meth:`ensure_acked` instead, called by the group-commit
coordinator while settling tickets: it retransmits (advancing the
simulated clock past partitions or through bounded backoff) until every
locally durable frame is durably received by at least one replica, or a
bounded retry budget dies and the commit statement degrades with
:class:`~repro.common.errors.IOFaultError` — the same
statement-not-server failure contract every other injected fault obeys.

Because per-link reception is gap-free and in LSN order (the cursor only
advances on success), the replica with the highest received LSN holds
*every* frame any replica holds — which is why failover promoting the
max-applied replica can never lose an acknowledged commit.
"""

from repro.common.errors import IOFaultError
from repro.faults.plan import NET_SEND_DROP, FaultRates


class ReplicationFrame:
    """One durable WAL data page, as shipped: ``payload`` is the exact
    framed page image (first_lsn, records, checksum) the primary wrote."""

    __slots__ = ("page_no", "first_lsn", "last_lsn", "payload")

    def __init__(self, page_no, first_lsn, payload):
        self.page_no = page_no
        self.first_lsn = first_lsn
        self.last_lsn = first_lsn + len(payload["records"]) - 1
        self.payload = payload

    def __repr__(self):
        return "ReplicationFrame(page=%d, lsn=%d..%d)" % (
            self.page_no, self.first_lsn, self.last_lsn
        )


class LogStreamPublisher:
    """Frames the primary's durable log pages and ships them per link."""

    def __init__(self, clock, fault_plan=None, rates=None, metrics=None):
        self.clock = clock
        self.fault_plan = fault_plan
        if rates is None:
            rates = (
                fault_plan.rates if fault_plan is not None else FaultRates()
            )
        self.rates = rates
        self.links = []
        self.frames = []
        self._cursors = {}
        self.ship_retries = 0
        self.sync_stalls = 0
        self._m_published = None
        self._m_retries = None
        if metrics is not None:
            self._m_published = metrics.counter("repl.frames_published")
            self._m_retries = metrics.counter("repl.ship_retries")
            metrics.register_probe("repl.acked_lsn", self.acked_lsn)
            metrics.register_probe(
                "repl.frames_pending",
                lambda: len(self.frames) * len(self.links) - sum(
                    self._cursors.values()
                ),
            )

    def attach(self, link):
        self.links.append(link)
        self._cursors[link.name] = 0
        return link

    # ------------------------------------------------------------------ #
    # the tap (asynchronous half)
    # ------------------------------------------------------------------ #

    def tap(self, page_no, first_lsn, payload):
        """Stream-tap target: publish one durable page, ship best-effort.

        Never raises — failed sends stay queued behind their link cursor
        for the next pump (or for :meth:`ensure_acked` at commit time).
        """
        self.frames.append(ReplicationFrame(page_no, first_lsn, payload))
        if self._m_published is not None:
            self._m_published.inc()
        self.pump()

    def pump(self):
        """One best-effort ship round; returns frames delivered."""
        shipped = 0
        for link in self.links:
            cursor = self._cursors[link.name]
            while cursor < len(self.frames):
                if link.send(self.frames[cursor]) is None:
                    break
                cursor += 1
                shipped += 1
            self._cursors[link.name] = cursor
        return shipped

    # ------------------------------------------------------------------ #
    # the ack gate (synchronous half)
    # ------------------------------------------------------------------ #

    def acked_lsn(self):
        """Highest LSN durably received by at least one replica."""
        best = -1
        for link in self.links:
            cursor = self._cursors[link.name]
            if cursor:
                best = max(best, self.frames[cursor - 1].last_lsn)
        return best

    def link_cursor(self, link):
        """Frames delivered down ``link`` so far (test introspection)."""
        return self._cursors[link.name]

    def ensure_acked(self, lsn):
        """Block (on the simulated clock) until ``lsn`` is replica-durable.

        Retransmits with bounded retries: when every link is partitioned
        the clock jumps to the earliest heal time (nothing else can make
        progress); otherwise each retry burns one backoff quantum.  An
        exhausted budget raises :class:`IOFaultError`, degrading the
        commit statement that needed the ack — the server survives and
        the transaction unwinds through the normal failed-force path.
        """
        if lsn < 0 or not self.links:
            return lsn
        attempts = 0
        limit = self.rates.net_ship_retry_limit
        while self.acked_lsn() < lsn:
            self.pump()
            if self.acked_lsn() >= lsn:
                break
            attempts += 1
            if attempts > limit:
                raise IOFaultError(
                    "replication ship of LSN %d still unacked after %d "
                    "retries" % (lsn, limit)
                )
            self.ship_retries += 1
            if self._m_retries is not None:
                self._m_retries.inc()
            if self.fault_plan is not None:
                self.fault_plan.note_retry(NET_SEND_DROP)
            self.stall()
        return self.acked_lsn()

    def record_fault(self):
        """Count a ship fault a caller absorbed — e.g. a sync-ack
        failure surfaced while the group force itself was already
        failing: the force error wins, but the absorbed fault must
        still show in ``repl.ship_retries`` so seed-replay accounting
        balances."""
        self.ship_retries += 1
        if self._m_retries is not None:
            self._m_retries.inc()

    def stall(self):
        """Advance the clock toward the next event that can free a send."""
        now = self.clock.now
        heals = [
            link.partitioned_until
            for link in self.links
            if link.partitioned_until > now
        ]
        if heals and len(heals) == len(self.links):
            # Every link is down: only healing can help, so jump there.
            self.sync_stalls += 1
            self.clock.advance(min(heals) - now)
        else:
            self.clock.advance(self.rates.io_retry_backoff_us)
