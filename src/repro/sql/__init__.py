"""SQL front end: lexer, parser, AST, and binder.

The dialect is the subset of ANSI SQL needed to express the paper's
workloads: multi-way joins (inner and LEFT OUTER), GROUP BY / HAVING /
DISTINCT / ORDER BY / LIMIT, IN / EXISTS subqueries, derived tables,
stored-procedure calls in FROM, recursive common table expressions
(``WITH RECURSIVE`` — the paper's adaptive RECURSIVE UNION operator),
DML, and the self-management DDL the paper names: ``CREATE STATISTICS``
and ``CALIBRATE DATABASE``.
"""

from repro.sql.lexer import Token, tokenize
from repro.sql.parser import parse_statement
from repro.sql.binder import Binder

__all__ = ["Token", "tokenize", "parse_statement", "Binder"]
