"""Abstract syntax tree for the SQL dialect.

Nodes are small plain classes.  Expression nodes double as the *bound*
representation: the binder annotates :class:`ColumnRef` nodes in place with
their resolved (quantifier id, column index, type) triple.
"""


# --------------------------------------------------------------------- #
# expressions
# --------------------------------------------------------------------- #

class Expression:
    """Base class for expression nodes."""


class Literal(Expression):
    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return "Literal(%r)" % (self.value,)


class Parameter(Expression):
    """A host/procedure parameter (``?`` or a named procedure argument)."""

    def __init__(self, name=None, ordinal=None):
        self.name = name
        self.ordinal = ordinal

    def __repr__(self):
        return "Parameter(%r)" % (self.name if self.name is not None else self.ordinal,)


class ColumnRef(Expression):
    def __init__(self, table_alias, column_name):
        self.table_alias = table_alias  # None if unqualified
        self.column_name = column_name
        # Filled by the binder:
        self.quantifier_id = None
        self.column_index = None
        self.type_name = None

    @property
    def bound(self):
        return self.quantifier_id is not None

    def __repr__(self):
        prefix = "%s." % (self.table_alias,) if self.table_alias else ""
        suffix = "@q%d[%d]" % (self.quantifier_id, self.column_index) if self.bound else ""
        return "ColumnRef(%s%s%s)" % (prefix, self.column_name, suffix)


class Star(Expression):
    """``*`` or ``alias.*`` in a select list."""

    def __init__(self, table_alias=None):
        self.table_alias = table_alias

    def __repr__(self):
        return "Star(%r)" % (self.table_alias,)


class BinaryOp(Expression):
    def __init__(self, op, left, right):
        self.op = op  # '=', '<>', '<', '<=', '>', '>=', '+', '-', '*', '/', 'AND', 'OR', '||'
        self.left = left
        self.right = right

    def __repr__(self):
        return "BinaryOp(%r, %r, %r)" % (self.op, self.left, self.right)


class UnaryOp(Expression):
    def __init__(self, op, operand):
        self.op = op  # 'NOT', '-'
        self.operand = operand

    def __repr__(self):
        return "UnaryOp(%r, %r)" % (self.op, self.operand)


class IsNull(Expression):
    def __init__(self, operand, negated=False):
        self.operand = operand
        self.negated = negated

    def __repr__(self):
        return "IsNull(%r, negated=%r)" % (self.operand, self.negated)


class Like(Expression):
    def __init__(self, operand, pattern, negated=False):
        self.operand = operand
        self.pattern = pattern  # Expression (usually Literal)
        self.negated = negated

    def __repr__(self):
        return "Like(%r, %r, negated=%r)" % (self.operand, self.pattern, self.negated)


class Between(Expression):
    def __init__(self, operand, low, high, negated=False):
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated

    def __repr__(self):
        return "Between(%r, %r, %r)" % (self.operand, self.low, self.high)


class InList(Expression):
    def __init__(self, operand, items, negated=False):
        self.operand = operand
        self.items = items
        self.negated = negated

    def __repr__(self):
        return "InList(%r, %d items)" % (self.operand, len(self.items))


class InSubquery(Expression):
    def __init__(self, operand, subquery, negated=False):
        self.operand = operand
        self.subquery = subquery  # SelectStatement
        self.negated = negated

    def __repr__(self):
        return "InSubquery(%r)" % (self.operand,)


class Exists(Expression):
    def __init__(self, subquery, negated=False):
        self.subquery = subquery
        self.negated = negated

    def __repr__(self):
        return "Exists(negated=%r)" % (self.negated,)


class FunctionCall(Expression):
    AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")

    def __init__(self, name, args, distinct=False, star=False):
        self.name = name.upper()
        self.args = args
        self.distinct = distinct
        self.star = star  # COUNT(*)

    @property
    def is_aggregate(self):
        return self.name in self.AGGREGATES

    def __repr__(self):
        return "FunctionCall(%s, %d args%s)" % (
            self.name, len(self.args), ", DISTINCT" if self.distinct else ""
        )


class CaseExpr(Expression):
    def __init__(self, branches, default):
        self.branches = branches  # [(condition, result)]
        self.default = default

    def __repr__(self):
        return "CaseExpr(%d branches)" % (len(self.branches),)


# --------------------------------------------------------------------- #
# table references
# --------------------------------------------------------------------- #

class TableRef:
    """Base class for FROM items."""


class BaseTable(TableRef):
    def __init__(self, name, alias=None):
        self.name = name
        self.alias = alias if alias is not None else name

    def __repr__(self):
        return "BaseTable(%s AS %s)" % (self.name, self.alias)


class DerivedTable(TableRef):
    def __init__(self, select, alias):
        self.select = select
        self.alias = alias

    def __repr__(self):
        return "DerivedTable(AS %s)" % (self.alias,)


class ProcedureTable(TableRef):
    """A stored procedure used in a FROM clause (Section 3.2)."""

    def __init__(self, name, args, alias=None):
        self.name = name
        self.args = args
        self.alias = alias if alias is not None else name

    def __repr__(self):
        return "ProcedureTable(%s(...) AS %s)" % (self.name, self.alias)


class JoinExpr(TableRef):
    INNER = "INNER"
    LEFT = "LEFT"
    CROSS = "CROSS"

    def __init__(self, left, right, join_type, condition=None):
        self.left = left
        self.right = right
        self.join_type = join_type
        self.condition = condition

    def __repr__(self):
        return "JoinExpr(%s, %r, %r)" % (self.join_type, self.left, self.right)


# --------------------------------------------------------------------- #
# statements
# --------------------------------------------------------------------- #

class Statement:
    """Base class for statements."""


class SelectStatement(Statement):
    def __init__(
        self,
        select_items,        # [(Expression, alias_or_None)]
        from_tables,         # [TableRef]; empty for SELECT <exprs>
        where=None,
        group_by=None,       # [Expression]
        having=None,
        order_by=None,       # [(Expression, ascending: bool)]
        limit=None,
        distinct=False,
        with_recursive=None,  # RecursiveCTE
    ):
        self.select_items = select_items
        self.from_tables = from_tables
        self.where = where
        self.group_by = group_by if group_by is not None else []
        self.having = having
        self.order_by = order_by if order_by is not None else []
        self.limit = limit
        self.distinct = distinct
        self.with_recursive = with_recursive

    def __repr__(self):
        return "SelectStatement(%d items, %d from)" % (
            len(self.select_items), len(self.from_tables)
        )


class RecursiveCTE:
    """``WITH RECURSIVE name(columns) AS (base UNION ALL recursive)``."""

    def __init__(self, name, column_names, base_select, recursive_select):
        self.name = name
        self.column_names = tuple(column_names)
        self.base_select = base_select
        self.recursive_select = recursive_select

    def __repr__(self):
        return "RecursiveCTE(%s)" % (self.name,)


class InsertStatement(Statement):
    def __init__(self, table_name, column_names, rows=None, select=None):
        self.table_name = table_name
        self.column_names = column_names  # None means all, in order
        self.rows = rows                  # list of lists of Expression
        self.select = select              # INSERT ... SELECT

    def __repr__(self):
        return "InsertStatement(%s)" % (self.table_name,)


class UpdateStatement(Statement):
    def __init__(self, table_name, assignments, where=None):
        self.table_name = table_name
        self.assignments = assignments  # [(column_name, Expression)]
        self.where = where

    def __repr__(self):
        return "UpdateStatement(%s)" % (self.table_name,)


class DeleteStatement(Statement):
    def __init__(self, table_name, where=None):
        self.table_name = table_name
        self.where = where

    def __repr__(self):
        return "DeleteStatement(%s)" % (self.table_name,)


class ColumnDef:
    def __init__(self, name, type_name, length=None, not_null=False, primary_key=False):
        self.name = name
        self.type_name = type_name
        self.length = length
        self.not_null = not_null
        self.primary_key = primary_key


class ForeignKeyDef:
    def __init__(self, columns, ref_table, ref_columns):
        self.columns = columns
        self.ref_table = ref_table
        self.ref_columns = ref_columns


class CreateTableStatement(Statement):
    def __init__(self, name, columns, primary_key, foreign_keys):
        self.name = name
        self.columns = columns
        self.primary_key = primary_key
        self.foreign_keys = foreign_keys


class CreateIndexStatement(Statement):
    def __init__(self, name, table_name, column_names, unique=False):
        self.name = name
        self.table_name = table_name
        self.column_names = column_names
        self.unique = unique


class DropTableStatement(Statement):
    def __init__(self, name):
        self.name = name


class DropIndexStatement(Statement):
    def __init__(self, name):
        self.name = name


class CreateStatisticsStatement(Statement):
    def __init__(self, table_name, column_names):
        self.table_name = table_name
        self.column_names = column_names


class CalibrateStatement(Statement):
    """``CALIBRATE DATABASE``: rebuild the DTT model from the device."""


class ReorganizeTableStatement(Statement):
    """``REORGANIZE TABLE t [ON index]``: rebuild the table clustered on
    an index's key order (paper Section 6 future work: "automatic
    reclustering and/or reorganization of tables and indexes")."""

    def __init__(self, table_name, index_name=None):
        self.table_name = table_name
        self.index_name = index_name


class CreateProcedureStatement(Statement):
    def __init__(self, name, parameters, body):
        self.name = name
        self.parameters = parameters
        self.body = body  # SelectStatement


class CallStatement(Statement):
    def __init__(self, name, args):
        self.name = name
        self.args = args  # [Expression]


class SetOptionStatement(Statement):
    def __init__(self, name, value):
        self.name = name
        self.value = value


class BeginStatement(Statement):
    pass


class CommitStatement(Statement):
    pass


class RollbackStatement(Statement):
    pass
