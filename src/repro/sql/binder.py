"""Semantic analysis: names, types, conjuncts, and subquery unnesting.

The binder turns a parsed statement into the representation the optimizer
works over:

* a :class:`QueryBlock` holds *quantifiers* (base tables, derived tables,
  procedure tables, recursive references) and *conjuncts* (AND-split
  predicates annotated with the quantifiers they reference);
* IN/EXISTS subqueries are unnested into **semi/anti-join quantifiers**,
  reproducing the paper's "the algorithm also enumerates complex
  subqueries by converting them into joins" (Section 4.1);
* LEFT OUTER JOIN produces ordering constraints — the preserved side must
  precede the null-supplied side in the left-deep join strategy — exactly
  the search-space asymmetry the paper describes;
* aggregation is normalized into (group keys, aggregate list), and
  post-aggregation expressions reference them through
  :class:`GroupRef` nodes.
"""

import copy

from repro.common.errors import SqlTypeError
from repro.sql import ast
from repro.sql.parser import parse_statement

#: Pseudo-environment key for post-aggregation rows.
GROUP_ENV = "__group__"


class GroupRef(ast.Expression):
    """A reference into the post-aggregation row (group keys + aggregates)."""

    def __init__(self, index, type_name, display):
        self.index = index
        self.type_name = type_name
        self.display = display

    def __repr__(self):
        return "GroupRef(%d)" % (self.index,)


class Quantifier:
    """One range variable of a query block."""

    BASE = "base"
    DERIVED = "derived"
    PROCEDURE = "procedure"
    RECURSIVE_REF = "recursive-ref"

    #: How the quantifier joins into the block.
    INNER = "inner"
    LEFT = "left"          # null-supplied side of a LEFT OUTER JOIN
    SEMI = "semi"          # unnested IN/EXISTS
    ANTI = "anti"          # unnested NOT IN/NOT EXISTS

    def __init__(self, qid, alias, kind, join_type=INNER):
        self.id = qid
        self.alias = alias
        self.kind = kind
        self.join_type = join_type
        self.schema = None          # TableSchema for BASE
        self.block = None           # QueryBlock for DERIVED
        self.procedure = None       # ProcedureSchema for PROCEDURE
        self.procedure_args = None  # bound argument expressions
        self.cte_name = None        # for RECURSIVE_REF
        self.columns = []           # [(name, type_name)]
        #: Quantifier ids that must be placed before this one in any
        #: left-deep strategy (outer-join / semi-join dependencies).
        self.required_predecessors = set()
        #: Conjuncts evaluated as this quantifier's join condition
        #: (outer/semi/anti joins keep their ON predicates attached).
        self.on_conjuncts = []

    def column_index(self, name):
        for index, (column_name, __) in enumerate(self.columns):
            if column_name == name:
                return index
        return None

    def column_type(self, index):
        return self.columns[index][1]

    def __repr__(self):
        return "Quantifier(q%d %s kind=%s join=%s)" % (
            self.id, self.alias, self.kind, self.join_type
        )


class Conjunct:
    """One AND-factor of a WHERE/HAVING clause."""

    def __init__(self, expr, refs):
        self.expr = expr
        self.refs = frozenset(refs)
        self.equi = _detect_equi(expr)

    @property
    def is_join(self):
        return len(self.refs) > 1

    def __repr__(self):
        return "Conjunct(refs=%s%s)" % (
            sorted(self.refs), " equi" if self.equi else ""
        )


def _detect_equi(expr):
    """``(qid_a, col_a), (qid_b, col_b)`` when expr is `colA = colB` across
    two quantifiers — the shape hash joins and join histograms consume."""
    if not isinstance(expr, ast.BinaryOp) or expr.op != "=":
        return None
    left, right = expr.left, expr.right
    if not (isinstance(left, ast.ColumnRef) and isinstance(right, ast.ColumnRef)):
        return None
    if not (left.bound and right.bound):
        return None
    if left.quantifier_id == right.quantifier_id:
        return None
    return (
        (left.quantifier_id, left.column_index),
        (right.quantifier_id, right.column_index),
    )


class QueryBlock:
    """Bound form of one SELECT.

    Quantifier ids are globally unique within one :class:`Binder`, so
    correlated references from nested blocks are unambiguous.
    """

    def __init__(self):
        self.quantifiers = []
        self.conjuncts = []
        self.select_items = []      # [(bound expr, output name, type_name)]
        self.distinct = False
        self.group_keys = []        # [(bound expr, name, type_name)]
        self.aggregates = []        # [bound FunctionCall]
        self.having_conjuncts = []  # [bound expr over GroupRefs]
        self.order_by = []          # [(bound expr, ascending)]
        self.limit = None
        self.with_recursive = None  # BoundRecursiveCTE

    @property
    def is_aggregate(self):
        return bool(self.group_keys) or bool(self.aggregates)

    def quantifier(self, qid):
        for quantifier in self.quantifiers:
            if quantifier.id == qid:
                return quantifier
        raise KeyError("no quantifier %r in this block" % (qid,))

    def local_ids(self):
        return frozenset(quantifier.id for quantifier in self.quantifiers)

    def output_columns(self):
        return [(name, type_name) for __, name, type_name in self.select_items]

    def __repr__(self):
        return "QueryBlock(%d quantifiers, %d conjuncts)" % (
            len(self.quantifiers), len(self.conjuncts)
        )


class BoundRecursiveCTE:
    def __init__(self, name, column_names, base_block, recursive_select):
        self.name = name
        self.column_names = column_names
        self.base_block = base_block
        #: A pristine copy of the recursive arm's parse tree: binding
        #: mutates AST nodes in place, and the adaptive RECURSIVE UNION
        #: re-binds the arm every iteration, so each re-bind starts from a
        #: fresh deep copy of this template.
        self.recursive_select_template = copy.deepcopy(recursive_select)
        self.column_types = None


class BoundInsert:
    def __init__(self, table, column_indexes, rows=None, select_block=None):
        self.table = table
        self.column_indexes = column_indexes
        self.rows = rows
        self.select_block = select_block


class BoundUpdate:
    def __init__(self, table, assignments, conjuncts, quantifier):
        self.table = table
        self.assignments = assignments  # [(column_index, bound expr)]
        self.conjuncts = conjuncts
        self.quantifier = quantifier


class BoundDelete:
    def __init__(self, table, conjuncts, quantifier):
        self.table = table
        self.conjuncts = conjuncts
        self.quantifier = quantifier


class _Scope:
    """Alias resolution scope with an outer chain for correlation."""

    def __init__(self, outer=None):
        self.outer = outer
        self._by_alias = {}

    def add(self, quantifier):
        if quantifier.alias in self._by_alias:
            raise SqlTypeError("duplicate table alias %r" % (quantifier.alias,))
        self._by_alias[quantifier.alias] = quantifier

    def resolve_alias(self, alias):
        scope = self
        while scope is not None:
            if alias in scope._by_alias:
                return scope._by_alias[alias]
            scope = scope.outer
        return None

    def resolve_column(self, name):
        """Find the unique quantifier exposing ``name``; local scope first."""
        scope = self
        while scope is not None:
            matches = [
                quantifier
                for quantifier in scope._by_alias.values()
                if quantifier.column_index(name) is not None
            ]
            if len(matches) > 1:
                raise SqlTypeError("ambiguous column %r" % (name,))
            if matches:
                return matches[0]
            scope = scope.outer
        return None

    def local_quantifiers(self):
        return list(self._by_alias.values())


class Binder:
    """Binds parsed statements against a catalog."""

    def __init__(self, catalog, procedure_params=None):
        self.catalog = catalog
        #: Extra name -> (column list) visible as recursive CTE references.
        self._cte_frames = []
        self._next_qid = 0
        self._procedure_params = []
        if procedure_params:
            self._procedure_params.append(tuple(procedure_params))

    def _new_qid(self):
        qid = self._next_qid
        self._next_qid += 1
        return qid

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #

    def bind(self, statement):
        """Bind any DML/query statement; DDL needs no binding."""
        if isinstance(statement, ast.SelectStatement):
            return self.bind_select(statement)
        if isinstance(statement, ast.InsertStatement):
            return self.bind_insert(statement)
        if isinstance(statement, ast.UpdateStatement):
            return self.bind_update(statement)
        if isinstance(statement, ast.DeleteStatement):
            return self.bind_delete(statement)
        raise SqlTypeError("statement %r does not bind" % (type(statement).__name__,))

    def bind_select(self, select, outer_scope=None):
        block = QueryBlock()
        scope = _Scope(outer_scope)

        if select.with_recursive is not None:
            block.with_recursive = self._bind_recursive_cte(select.with_recursive)

        for table_ref in select.from_tables:
            self._bind_table_ref(table_ref, block, scope)

        if select.where is not None:
            for conjunct_expr in _split_and(select.where):
                self._bind_conjunct(conjunct_expr, block, scope)

        self._bind_output(select, block, scope)
        block.distinct = select.distinct
        block.limit = select.limit
        return block

    def bind_insert(self, statement):
        table = self.catalog.table(statement.table_name)
        if statement.column_names is None:
            column_indexes = list(range(len(table.columns)))
        else:
            column_indexes = [table.column_index(n) for n in statement.column_names]
        if statement.rows is not None:
            bound_rows = []
            for row in statement.rows:
                if len(row) != len(column_indexes):
                    raise SqlTypeError(
                        "INSERT row has %d values for %d columns"
                        % (len(row), len(column_indexes))
                    )
                bound_rows.append([self._bind_expr(e, _Scope(), None) for e in row])
            return BoundInsert(table, column_indexes, rows=bound_rows)
        select_block = self.bind_select(statement.select)
        if len(select_block.select_items) != len(column_indexes):
            raise SqlTypeError("INSERT ... SELECT arity mismatch")
        return BoundInsert(table, column_indexes, select_block=select_block)

    def bind_update(self, statement):
        table = self.catalog.table(statement.table_name)
        quantifier, scope, block = self._single_table_block(table, statement.where)
        assignments = []
        for column_name, expr in statement.assignments:
            index = table.column_index(column_name)
            assignments.append((index, self._bind_expr(expr, scope, block)))
        return BoundUpdate(table, assignments, block.conjuncts, quantifier)

    def bind_delete(self, statement):
        table = self.catalog.table(statement.table_name)
        quantifier, __, block = self._single_table_block(table, statement.where)
        return BoundDelete(table, block.conjuncts, quantifier)

    def bind_procedure_body(self, procedure):
        """Parse and bind a stored procedure's body.

        Identifiers matching declared parameter names bind to
        :class:`~repro.sql.ast.Parameter` nodes, substituted with the call
        arguments at execution time.
        """
        body = parse_statement(procedure.body_sql)
        if not isinstance(body, ast.SelectStatement):
            raise SqlTypeError(
                "procedure %r body must be a SELECT" % (procedure.name,)
            )
        self._procedure_params.append(tuple(procedure.parameters))
        try:
            return self.bind_select(body)
        finally:
            self._procedure_params.pop()

    def _single_table_block(self, table, where):
        block = QueryBlock()
        scope = _Scope()
        quantifier = self._new_base_quantifier(table, table.name, block)
        scope.add(quantifier)
        if where is not None:
            for conjunct_expr in _split_and(where):
                self._bind_conjunct(conjunct_expr, block, scope)
        return quantifier, scope, block

    # ------------------------------------------------------------------ #
    # FROM binding
    # ------------------------------------------------------------------ #

    def _bind_table_ref(self, ref, block, scope, join_type=Quantifier.INNER,
                        predecessors=None):
        """Bind a FROM item; returns the quantifier ids it contributed."""
        if isinstance(ref, ast.BaseTable):
            quantifier = self._resolve_base(ref, block)
            quantifier.join_type = join_type
            if predecessors:
                quantifier.required_predecessors |= predecessors
            scope.add(quantifier)
            return {quantifier.id}
        if isinstance(ref, ast.DerivedTable):
            sub_block = self.bind_select(ref.select, scope)
            quantifier = Quantifier(
                self._new_qid(), ref.alias, Quantifier.DERIVED, join_type
            )
            quantifier.block = sub_block
            quantifier.columns = list(sub_block.output_columns())
            if predecessors:
                quantifier.required_predecessors |= predecessors
            block.quantifiers.append(quantifier)
            scope.add(quantifier)
            return {quantifier.id}
        if isinstance(ref, ast.ProcedureTable):
            procedure = self.catalog.procedure(ref.name)
            body_block = self.bind_procedure_body(procedure)
            quantifier = Quantifier(
                self._new_qid(), ref.alias, Quantifier.PROCEDURE, join_type
            )
            quantifier.procedure = procedure
            quantifier.procedure_args = [
                self._bind_expr(arg, scope, block) for arg in ref.args
            ]
            quantifier.block = body_block
            quantifier.columns = list(body_block.output_columns())
            if predecessors:
                quantifier.required_predecessors |= predecessors
            block.quantifiers.append(quantifier)
            scope.add(quantifier)
            return {quantifier.id}
        if isinstance(ref, ast.JoinExpr):
            left_ids = self._bind_table_ref(
                ref.left, block, scope, Quantifier.INNER, predecessors
            )
            if ref.join_type == ast.JoinExpr.LEFT:
                right_ids = self._bind_table_ref(
                    ref.right, block, scope, Quantifier.LEFT,
                    predecessors=left_ids | (predecessors or set()),
                )
                if len(right_ids) != 1:
                    raise SqlTypeError(
                        "LEFT JOIN right side must be a single table reference"
                    )
                right = block.quantifier(next(iter(right_ids)))
                if ref.condition is not None:
                    for conjunct_expr in _split_and(ref.condition):
                        expr = self._bind_expr(conjunct_expr, scope, block)
                        right.on_conjuncts.append(
                            Conjunct(expr, _collect_refs(expr))
                        )
            else:
                right_ids = self._bind_table_ref(
                    ref.right, block, scope, Quantifier.INNER, predecessors
                )
                if ref.condition is not None:
                    # Inner-join ON conditions are ordinary conjuncts.
                    for conjunct_expr in _split_and(ref.condition):
                        self._bind_conjunct(conjunct_expr, block, scope)
            return left_ids | right_ids
        raise SqlTypeError("unsupported FROM item %r" % (type(ref).__name__,))

    def _resolve_base(self, ref, block):
        # Recursive CTE reference?
        for frame in reversed(self._cte_frames):
            if ref.name == frame[0]:
                quantifier = Quantifier(
                    self._new_qid(), ref.alias, Quantifier.RECURSIVE_REF
                )
                quantifier.cte_name = ref.name
                quantifier.columns = list(frame[1])
                block.quantifiers.append(quantifier)
                return quantifier
        table = self.catalog.table(ref.name)
        return self._new_base_quantifier(table, ref.alias, block)

    def _new_base_quantifier(self, table, alias, block):
        quantifier = Quantifier(self._new_qid(), alias, Quantifier.BASE)
        quantifier.schema = table
        quantifier.columns = [
            (column.name, column.type_name) for column in table.columns
        ]
        block.quantifiers.append(quantifier)
        return quantifier

    # ------------------------------------------------------------------ #
    # conjuncts and subquery unnesting
    # ------------------------------------------------------------------ #

    def _bind_conjunct(self, expr, block, scope):
        if isinstance(expr, ast.InSubquery):
            self._unnest_in(expr, block, scope)
            return
        if isinstance(expr, ast.Exists):
            self._unnest_exists(expr, block, scope)
            return
        if (
            isinstance(expr, ast.UnaryOp)
            and expr.op == "NOT"
            and isinstance(expr.operand, ast.Exists)
        ):
            inner = expr.operand
            self._unnest_exists(
                ast.Exists(inner.subquery, negated=not inner.negated), block, scope
            )
            return
        bound = self._bind_expr(expr, scope, block)
        block.conjuncts.append(Conjunct(bound, _collect_refs(bound)))

    def _unnest_in(self, expr, block, scope):
        """``x [NOT] IN (SELECT y ...)`` becomes a semi/anti quantifier."""
        operand = self._bind_expr(expr.operand, scope, block)
        sub_block = self.bind_select(expr.subquery, scope)
        if len(sub_block.select_items) != 1:
            raise SqlTypeError("IN subquery must produce exactly one column")
        join_type = Quantifier.ANTI if expr.negated else Quantifier.SEMI
        quantifier = self._add_subquery_quantifier(block, sub_block, join_type)
        self._lift_correlation(quantifier, sub_block, block)
        # Join condition: operand = subquery output column 0.
        column = ast.ColumnRef(quantifier.alias, quantifier.columns[0][0])
        column.quantifier_id = quantifier.id
        column.column_index = 0
        column.type_name = quantifier.columns[0][1]
        condition = ast.BinaryOp("=", operand, column)
        quantifier.on_conjuncts.append(Conjunct(condition, _collect_refs(condition)))
        quantifier.required_predecessors |= _collect_refs(operand)

    def _unnest_exists(self, expr, block, scope):
        sub_block = self.bind_select(expr.subquery, scope)
        join_type = Quantifier.ANTI if expr.negated else Quantifier.SEMI
        quantifier = self._add_subquery_quantifier(block, sub_block, join_type)
        self._lift_correlation(quantifier, sub_block, block)
        if not quantifier.on_conjuncts:
            raise SqlTypeError(
                "EXISTS subquery must be correlated with the outer query"
            )

    def _add_subquery_quantifier(self, block, sub_block, join_type):
        qid = self._new_qid()
        quantifier = Quantifier(qid, "__subq%d" % (qid,), Quantifier.DERIVED, join_type)
        quantifier.block = sub_block
        quantifier.columns = list(sub_block.output_columns())
        block.quantifiers.append(quantifier)
        return quantifier

    def _lift_correlation(self, quantifier, sub_block, outer_block):
        """Move the subquery's correlated conjuncts up to the semi-join.

        A correlated conjunct references outer quantifiers; its inner
        column references are rewritten to read from the new derived
        quantifier, extending the subquery's select list as needed.
        """
        local_ids = sub_block.local_ids()
        lifted, kept = [], []
        for conjunct in sub_block.conjuncts:
            if conjunct.refs and not conjunct.refs <= local_ids:
                lifted.append(conjunct)
            else:
                kept.append(conjunct)
        sub_block.conjuncts = kept
        for conjunct in lifted:
            rewritten = self._rewrite_inner_refs(
                conjunct.expr, sub_block, quantifier
            )
            quantifier.on_conjuncts.append(
                Conjunct(rewritten, _collect_refs(rewritten))
            )
            quantifier.required_predecessors |= {
                ref
                for ref in _collect_refs(rewritten)
                if ref != quantifier.id
            }
        # Refresh output columns (the rewrite may have appended some).
        quantifier.columns = list(sub_block.output_columns())

    def _rewrite_inner_refs(self, expr, sub_block, quantifier):
        """Rewrite ColumnRefs bound to the subquery's own quantifiers into
        references through the derived quantifier's output."""
        local_ids = sub_block.local_ids()

        def rewrite(node):
            if isinstance(node, ast.ColumnRef) and node.bound:
                if node.quantifier_id not in local_ids:
                    return node  # outer reference: leave as is
                index = self._ensure_output(sub_block, node)
                new_ref = ast.ColumnRef(quantifier.alias, node.column_name)
                new_ref.quantifier_id = quantifier.id
                new_ref.column_index = index
                new_ref.type_name = node.type_name
                return new_ref
            for attr in ("left", "right", "operand", "low", "high", "pattern"):
                child = getattr(node, attr, None)
                if isinstance(child, ast.Expression):
                    setattr(node, attr, rewrite(child))
            if isinstance(node, (ast.InList, ast.FunctionCall)):
                items_attr = "items" if isinstance(node, ast.InList) else "args"
                setattr(
                    node, items_attr,
                    [rewrite(child) for child in getattr(node, items_attr)],
                )
            return node

        return rewrite(expr)

    def _ensure_output(self, sub_block, column_ref):
        """Ensure the sub-block outputs ``column_ref``; return its index."""
        for index, (expr, __, __unused) in enumerate(sub_block.select_items):
            if (
                isinstance(expr, ast.ColumnRef)
                and expr.quantifier_id == column_ref.quantifier_id
                and expr.column_index == column_ref.column_index
            ):
                return index
        sub_block.select_items.append(
            (column_ref, column_ref.column_name, column_ref.type_name)
        )
        return len(sub_block.select_items) - 1

    # ------------------------------------------------------------------ #
    # recursive CTEs
    # ------------------------------------------------------------------ #

    def _bind_recursive_cte(self, cte):
        base_block = self.bind_select(cte.base_select)
        if len(base_block.select_items) != len(cte.column_names):
            raise SqlTypeError(
                "recursive CTE %r declares %d columns but base select has %d"
                % (cte.name, len(cte.column_names), len(base_block.select_items))
            )
        columns = [
            (name, type_name)
            for name, (__, __unused, type_name) in zip(
                cte.column_names, base_block.select_items
            )
        ]
        bound = BoundRecursiveCTE(
            cte.name, cte.column_names, base_block, cte.recursive_select
        )
        bound.column_types = [type_name for __, type_name in columns]
        self._cte_frames.append((cte.name, columns))
        return bound

    def bind_recursive_arm(self, bound_cte):
        """Bind the recursive arm with the CTE registered as a reference.

        Called by the executor once per recursion setup (the arm re-reads
        the working table each iteration at runtime).
        """
        columns = [
            (name, type_name)
            for name, type_name in zip(
                bound_cte.column_names, bound_cte.column_types
            )
        ]
        self._cte_frames.append((bound_cte.name, columns))
        try:
            arm = copy.deepcopy(bound_cte.recursive_select_template)
            return self.bind_select(arm)
        finally:
            self._cte_frames.pop()

    # ------------------------------------------------------------------ #
    # output (select list, grouping, order by)
    # ------------------------------------------------------------------ #

    def _bind_output(self, select, block, scope):
        # Expand stars first.
        items = []
        for expr, alias in select.select_items:
            if isinstance(expr, ast.Star):
                items.extend(self._expand_star(expr, scope))
            else:
                items.append((expr, alias))
        bound_items = []
        for expr, alias in items:
            bound = self._bind_expr(expr, scope, block)
            name = alias if alias is not None else _display_name(expr)
            bound_items.append((bound, name, _infer_type(bound)))

        group_keys = [
            self._bind_expr(expr, scope, block) for expr in select.group_by
        ]
        having = (
            self._bind_expr(select.having, scope, block)
            if select.having is not None
            else None
        )
        order_by = [
            (self._bind_expr(expr, scope, block), ascending)
            for expr, ascending in select.order_by
        ]

        aggregates = []
        for bound, __, __unused in bound_items:
            _collect_aggregates(bound, aggregates)
        if having is not None:
            _collect_aggregates(having, aggregates)
        for bound, __ in order_by:
            _collect_aggregates(bound, aggregates)

        if group_keys or aggregates:
            key_meta = [
                (expr, _display_name_bound(expr), _infer_type(expr))
                for expr in group_keys
            ]
            block.group_keys = key_meta
            block.aggregates = aggregates
            rewriter = _GroupRewriter(key_meta, aggregates)
            block.select_items = [
                (rewriter.rewrite(expr), name, type_name)
                for expr, name, type_name in bound_items
            ]
            if having is not None:
                for conjunct in _split_and_bound(rewriter.rewrite(having)):
                    block.having_conjuncts.append(conjunct)
            block.order_by = [
                (rewriter.rewrite(expr), ascending) for expr, ascending in order_by
            ]
        else:
            block.select_items = bound_items
            block.order_by = order_by
            if having is not None:
                raise SqlTypeError("HAVING requires GROUP BY or aggregates")

    def _expand_star(self, star, scope):
        if star.table_alias is not None:
            quantifier = scope.resolve_alias(star.table_alias)
            if quantifier is None:
                raise SqlTypeError("unknown alias %r" % (star.table_alias,))
            quantifiers = [quantifier]
        else:
            quantifiers = scope.local_quantifiers()
            if not quantifiers:
                raise SqlTypeError("SELECT * with no FROM clause")
        items = []
        for quantifier in quantifiers:
            if quantifier.join_type in (Quantifier.SEMI, Quantifier.ANTI):
                continue  # unnested subqueries are invisible to *
            for name, __ in quantifier.columns:
                items.append((ast.ColumnRef(quantifier.alias, name), name))
        return items

    # ------------------------------------------------------------------ #
    # expression binding
    # ------------------------------------------------------------------ #

    def _bind_expr(self, expr, scope, block):
        if isinstance(expr, ast.Literal):
            return expr
        if isinstance(expr, ast.Parameter):
            return expr
        if isinstance(expr, GroupRef):
            return expr
        if isinstance(expr, ast.ColumnRef):
            if expr.bound:
                return expr
            return self._resolve_column(expr, scope)
        if isinstance(expr, ast.BinaryOp):
            expr.left = self._bind_expr(expr.left, scope, block)
            expr.right = self._bind_expr(expr.right, scope, block)
            return expr
        if isinstance(expr, ast.UnaryOp):
            expr.operand = self._bind_expr(expr.operand, scope, block)
            return expr
        if isinstance(expr, ast.IsNull):
            expr.operand = self._bind_expr(expr.operand, scope, block)
            return expr
        if isinstance(expr, ast.Like):
            expr.operand = self._bind_expr(expr.operand, scope, block)
            expr.pattern = self._bind_expr(expr.pattern, scope, block)
            return expr
        if isinstance(expr, ast.Between):
            expr.operand = self._bind_expr(expr.operand, scope, block)
            expr.low = self._bind_expr(expr.low, scope, block)
            expr.high = self._bind_expr(expr.high, scope, block)
            return expr
        if isinstance(expr, ast.InList):
            expr.operand = self._bind_expr(expr.operand, scope, block)
            expr.items = [self._bind_expr(item, scope, block) for item in expr.items]
            return expr
        if isinstance(expr, ast.FunctionCall):
            expr.args = [self._bind_expr(arg, scope, block) for arg in expr.args]
            return expr
        if isinstance(expr, ast.CaseExpr):
            expr.branches = [
                (self._bind_expr(c, scope, block), self._bind_expr(r, scope, block))
                for c, r in expr.branches
            ]
            if expr.default is not None:
                expr.default = self._bind_expr(expr.default, scope, block)
            return expr
        if isinstance(expr, (ast.InSubquery, ast.Exists)):
            raise SqlTypeError(
                "subquery predicates are only supported as top-level "
                "AND-factors of WHERE"
            )
        raise SqlTypeError("cannot bind expression %r" % (type(expr).__name__,))

    def _resolve_column(self, ref, scope):
        if ref.table_alias is not None:
            quantifier = scope.resolve_alias(ref.table_alias)
            if quantifier is None:
                raise SqlTypeError("unknown table alias %r" % (ref.table_alias,))
        else:
            quantifier = scope.resolve_column(ref.column_name)
            if quantifier is None:
                for params in reversed(self._procedure_params):
                    if ref.column_name in params:
                        return ast.Parameter(name=ref.column_name)
                raise SqlTypeError("unknown column %r" % (ref.column_name,))
        index = quantifier.column_index(ref.column_name)
        if index is None:
            raise SqlTypeError(
                "no column %r in %r" % (ref.column_name, quantifier.alias)
            )
        ref.quantifier_id = quantifier.id
        ref.column_index = index
        ref.type_name = quantifier.column_type(index)
        ref.quantifier_obj = quantifier
        return ref


# --------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------- #

def _split_and(expr):
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _split_and(expr.left) + _split_and(expr.right)
    return [expr]


def _split_and_bound(expr):
    return _split_and(expr)


def _collect_refs(expr, refs=None):
    """Set of quantifier ids referenced by a bound expression."""
    if refs is None:
        refs = set()
    if isinstance(expr, ast.ColumnRef) and expr.bound:
        refs.add(expr.quantifier_id)
    for attr in ("left", "right", "operand", "low", "high", "pattern", "default"):
        child = getattr(expr, attr, None)
        if isinstance(child, ast.Expression):
            _collect_refs(child, refs)
    if isinstance(expr, ast.InList):
        for item in expr.items:
            _collect_refs(item, refs)
    if isinstance(expr, ast.FunctionCall):
        for arg in expr.args:
            _collect_refs(arg, refs)
    if isinstance(expr, ast.CaseExpr):
        for condition, result in expr.branches:
            _collect_refs(condition, refs)
            _collect_refs(result, refs)
    return refs


def _collect_aggregates(expr, out):
    if isinstance(expr, ast.FunctionCall) and expr.is_aggregate:
        out.append(expr)
        return
    for attr in ("left", "right", "operand", "low", "high", "pattern", "default"):
        child = getattr(expr, attr, None)
        if isinstance(child, ast.Expression):
            _collect_aggregates(child, out)
    if isinstance(expr, ast.InList):
        for item in expr.items:
            _collect_aggregates(item, out)
    if isinstance(expr, ast.FunctionCall) and not expr.is_aggregate:
        for arg in expr.args:
            _collect_aggregates(arg, out)
    if isinstance(expr, ast.CaseExpr):
        for condition, result in expr.branches:
            _collect_aggregates(condition, out)
            _collect_aggregates(result, out)


def expr_signature(expr):
    """A structural signature for bound-expression equality."""
    if isinstance(expr, ast.Literal):
        return ("lit", expr.value)
    if isinstance(expr, ast.ColumnRef):
        return ("col", expr.quantifier_id, expr.column_index)
    if isinstance(expr, GroupRef):
        return ("gref", expr.index)
    if isinstance(expr, ast.BinaryOp):
        return ("bin", expr.op, expr_signature(expr.left), expr_signature(expr.right))
    if isinstance(expr, ast.UnaryOp):
        return ("un", expr.op, expr_signature(expr.operand))
    if isinstance(expr, ast.IsNull):
        return ("isnull", expr.negated, expr_signature(expr.operand))
    if isinstance(expr, ast.Like):
        return (
            "like", expr.negated,
            expr_signature(expr.operand), expr_signature(expr.pattern),
        )
    if isinstance(expr, ast.Between):
        return (
            "between", expr.negated, expr_signature(expr.operand),
            expr_signature(expr.low), expr_signature(expr.high),
        )
    if isinstance(expr, ast.InList):
        return (
            "inlist", expr.negated, expr_signature(expr.operand),
            tuple(expr_signature(item) for item in expr.items),
        )
    if isinstance(expr, ast.FunctionCall):
        return (
            "fn", expr.name, expr.distinct, expr.star,
            tuple(expr_signature(arg) for arg in expr.args),
        )
    if isinstance(expr, ast.CaseExpr):
        return (
            "case",
            tuple(
                (expr_signature(c), expr_signature(r)) for c, r in expr.branches
            ),
            expr_signature(expr.default) if expr.default is not None else None,
        )
    if isinstance(expr, ast.Parameter):
        return ("param", expr.name, expr.ordinal)
    return ("opaque", id(expr))


class _GroupRewriter:
    """Rewrites post-aggregation expressions onto GroupRef indexes."""

    def __init__(self, key_meta, aggregates):
        self._key_index = {
            expr_signature(expr): (index, type_name)
            for index, (expr, __, type_name) in enumerate(key_meta)
        }
        self._n_keys = len(key_meta)
        self._agg_index = {}
        for offset, aggregate in enumerate(aggregates):
            self._agg_index[id(aggregate)] = self._n_keys + offset

    def rewrite(self, expr):
        signature = expr_signature(expr)
        if signature in self._key_index:
            index, type_name = self._key_index[signature]
            return GroupRef(index, type_name, _display_name_bound(expr))
        if isinstance(expr, ast.FunctionCall) and expr.is_aggregate:
            return GroupRef(
                self._agg_index[id(expr)], _infer_type(expr), expr.name
            )
        if isinstance(expr, ast.ColumnRef):
            raise SqlTypeError(
                "column %r must appear in GROUP BY or inside an aggregate"
                % (expr.column_name,)
            )
        for attr in ("left", "right", "operand", "low", "high", "pattern", "default"):
            child = getattr(expr, attr, None)
            if isinstance(child, ast.Expression):
                setattr(expr, attr, self.rewrite(child))
        if isinstance(expr, ast.InList):
            expr.items = [self.rewrite(item) for item in expr.items]
        if isinstance(expr, ast.FunctionCall):
            expr.args = [self.rewrite(arg) for arg in expr.args]
        if isinstance(expr, ast.CaseExpr):
            expr.branches = [
                (self.rewrite(c), self.rewrite(r)) for c, r in expr.branches
            ]
        return expr


def _display_name(expr):
    if isinstance(expr, ast.ColumnRef):
        return expr.column_name
    if isinstance(expr, ast.FunctionCall):
        return expr.name
    return "expr"


def _display_name_bound(expr):
    return _display_name(expr)


def _infer_type(expr):
    """Lightweight type inference for output metadata."""
    if isinstance(expr, ast.Literal):
        value = expr.value
        if value is None:
            return "VARCHAR"
        if isinstance(value, bool):
            return "BOOLEAN"
        if isinstance(value, int):
            return "INT"
        if isinstance(value, float):
            return "DOUBLE"
        if isinstance(value, str):
            return "VARCHAR"
        return "DATE"
    if isinstance(expr, ast.ColumnRef):
        return expr.type_name if expr.type_name is not None else "VARCHAR"
    if isinstance(expr, GroupRef):
        return expr.type_name
    if isinstance(expr, ast.BinaryOp):
        if expr.op in ("AND", "OR", "=", "<>", "<", "<=", ">", ">="):
            return "BOOLEAN"
        if expr.op == "||":
            return "VARCHAR"
        left = _infer_type(expr.left)
        right = _infer_type(expr.right)
        if "DOUBLE" in (left, right) or expr.op == "/":
            return "DOUBLE"
        return "INT"
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            return "BOOLEAN"
        return _infer_type(expr.operand)
    if isinstance(expr, (ast.IsNull, ast.Like, ast.Between, ast.InList)):
        return "BOOLEAN"
    if isinstance(expr, ast.FunctionCall):
        if expr.name == "COUNT":
            return "INT"
        if expr.name in ("SUM", "AVG"):
            return "DOUBLE"
        if expr.name in ("MIN", "MAX") and expr.args:
            return _infer_type(expr.args[0])
        return "VARCHAR"
    if isinstance(expr, ast.CaseExpr):
        return _infer_type(expr.branches[0][1])
    if isinstance(expr, ast.Parameter):
        return "VARCHAR"
    return "VARCHAR"

