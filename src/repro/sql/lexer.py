"""SQL tokenizer."""

import datetime

from repro.common.errors import SqlParseError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC",
    "DESC", "LIMIT", "DISTINCT", "AS", "ON", "JOIN", "INNER", "LEFT",
    "OUTER", "CROSS", "AND", "OR", "NOT", "IS", "NULL", "LIKE", "BETWEEN",
    "IN", "EXISTS", "UNION", "ALL", "INSERT", "INTO", "VALUES", "UPDATE",
    "SET", "DELETE", "CREATE", "DROP", "TABLE", "INDEX", "UNIQUE",
    "PRIMARY", "KEY", "FOREIGN", "REFERENCES", "STATISTICS", "CALIBRATE", "REORGANIZE",
    "DATABASE", "PROCEDURE", "BEGIN", "COMMIT", "ROLLBACK", "WITH",
    "RECURSIVE", "TRUE", "FALSE", "DATE", "OPTION", "CALL", "CASE", "WHEN",
    "THEN", "ELSE", "END", "COUNT", "SUM", "AVG", "MIN", "MAX",
}

#: Multi-character operators, longest first.
_OPERATORS = ["<>", "!=", "<=", ">=", "||", "=", "<", ">", "+", "-", "*", "/",
              "(", ")", ",", ".", "?", ";"]


class Token:
    """One lexical token."""

    __slots__ = ("kind", "value", "position")

    def __init__(self, kind, value, position):
        self.kind = kind  # 'keyword' | 'ident' | 'number' | 'string' | 'op' | 'eof'
        self.value = value
        self.position = position

    def matches(self, kind, value=None):
        if self.kind != kind:
            return False
        return value is None or self.value == value

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.value)


def tokenize(text):
    """Tokenize SQL text into a list of :class:`Token` ending with EOF."""
    tokens = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if text.startswith("--", index):
            newline = text.find("\n", index)
            index = length if newline == -1 else newline + 1
            continue
        if char == "'":
            value, index = _read_string(text, index)
            tokens.append(Token("string", value, index))
            continue
        if char.isdigit() or (
            char == "." and index + 1 < length and text[index + 1].isdigit()
        ):
            value, index = _read_number(text, index)
            tokens.append(Token("number", value, index))
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (text[index].isalnum() or text[index] == "_"):
                index += 1
            word = text[start:index]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, start))
            else:
                tokens.append(Token("ident", word, start))
            continue
        if char == '"':
            end = text.find('"', index + 1)
            if end == -1:
                raise SqlParseError("unterminated quoted identifier", index)
            tokens.append(Token("ident", text[index + 1 : end], index))
            index = end + 1
            continue
        for operator in _OPERATORS:
            if text.startswith(operator, index):
                tokens.append(Token("op", operator, index))
                index += len(operator)
                break
        else:
            raise SqlParseError("unexpected character %r" % (char,), index)
    tokens.append(Token("eof", None, length))
    return tokens


def _read_string(text, index):
    """Read a single-quoted string with '' escaping."""
    start = index
    index += 1
    parts = []
    while index < len(text):
        char = text[index]
        if char == "'":
            if text.startswith("''", index):
                parts.append("'")
                index += 2
                continue
            return "".join(parts), index + 1
        parts.append(char)
        index += 1
    raise SqlParseError("unterminated string literal", start)


def _read_number(text, index):
    start = index
    seen_dot = False
    seen_exp = False
    while index < len(text):
        char = text[index]
        if char.isdigit():
            index += 1
        elif char == "." and not seen_dot and not seen_exp:
            seen_dot = True
            index += 1
        elif char in "eE" and not seen_exp and index > start:
            seen_exp = True
            index += 1
            if index < len(text) and text[index] in "+-":
                index += 1
        else:
            break
    literal = text[start:index]
    if seen_dot or seen_exp:
        return float(literal), index
    return int(literal), index


def parse_date_literal(text):
    """Parse the body of a DATE 'YYYY-MM-DD' literal."""
    try:
        return datetime.date.fromisoformat(text)
    except ValueError:
        raise SqlParseError("invalid date literal %r" % (text,)) from None
