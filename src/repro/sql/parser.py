"""Recursive-descent SQL parser."""

from repro.common.errors import SqlParseError
from repro.sql import ast
from repro.sql.lexer import parse_date_literal, tokenize

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_AGG_KEYWORDS = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


def parse_statement(text):
    """Parse one SQL statement; raises :class:`SqlParseError` on bad input."""
    parser = _Parser(tokenize(text))
    statement = parser.statement()
    parser.expect_eof()
    return statement


class _Parser:
    def __init__(self, tokens):
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------------ #
    # token plumbing
    # ------------------------------------------------------------------ #

    def _peek(self, offset=0):
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def _advance(self):
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _accept(self, kind, value=None):
        if self._peek().matches(kind, value):
            return self._advance()
        return None

    def _expect(self, kind, value=None):
        token = self._accept(kind, value)
        if token is None:
            actual = self._peek()
            raise SqlParseError(
                "expected %s%s but found %r"
                % (kind, " %r" % (value,) if value else "", actual.value),
                actual.position,
            )
        return token

    def _accept_keyword(self, *words):
        """Accept a sequence of keywords; all or nothing."""
        for offset, word in enumerate(words):
            if not self._peek(offset).matches("keyword", word):
                return False
        for __ in words:
            self._advance()
        return True

    def expect_eof(self):
        self._accept("op", ";")
        if not self._peek().matches("eof"):
            token = self._peek()
            raise SqlParseError(
                "unexpected trailing input %r" % (token.value,), token.position
            )

    def _ident(self):
        token = self._peek()
        if token.kind == "ident":
            return self._advance().value
        raise SqlParseError("expected identifier, found %r" % (token.value,), token.position)

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #

    def statement(self):
        token = self._peek()
        if token.kind != "keyword":
            raise SqlParseError("expected a statement, found %r" % (token.value,), token.position)
        word = token.value
        if word in ("SELECT", "WITH"):
            return self.select_statement()
        if word == "INSERT":
            return self.insert_statement()
        if word == "UPDATE":
            return self.update_statement()
        if word == "DELETE":
            return self.delete_statement()
        if word == "CREATE":
            return self.create_statement()
        if word == "DROP":
            return self.drop_statement()
        if word == "CALIBRATE":
            self._advance()
            self._expect("keyword", "DATABASE")
            return ast.CalibrateStatement()
        if word == "REORGANIZE":
            self._advance()
            self._expect("keyword", "TABLE")
            table = self._ident()
            index = None
            if self._accept_keyword("ON"):
                index = self._ident()
            return ast.ReorganizeTableStatement(table, index)
        if word == "CALL":
            return self.call_statement()
        if word == "SET":
            return self.set_option_statement()
        if word == "BEGIN":
            self._advance()
            return ast.BeginStatement()
        if word == "COMMIT":
            self._advance()
            return ast.CommitStatement()
        if word == "ROLLBACK":
            self._advance()
            return ast.RollbackStatement()
        raise SqlParseError("unsupported statement %r" % (word,), token.position)

    # -- SELECT ------------------------------------------------------------ #

    def select_statement(self):
        with_recursive = None
        if self._accept_keyword("WITH"):
            self._expect("keyword", "RECURSIVE")
            with_recursive = self._recursive_cte()
        select = self._select_body()
        select.with_recursive = with_recursive
        return select

    def _recursive_cte(self):
        name = self._ident()
        self._expect("op", "(")
        columns = [self._ident()]
        while self._accept("op", ","):
            columns.append(self._ident())
        self._expect("op", ")")
        self._expect("keyword", "AS")
        self._expect("op", "(")
        base = self._select_body()
        self._expect("keyword", "UNION")
        self._expect("keyword", "ALL")
        recursive = self._select_body()
        self._expect("op", ")")
        return ast.RecursiveCTE(name, columns, base, recursive)

    def _select_body(self):
        self._expect("keyword", "SELECT")
        distinct = bool(self._accept_keyword("DISTINCT"))
        items = [self._select_item()]
        while self._accept("op", ","):
            items.append(self._select_item())
        from_tables = []
        if self._accept_keyword("FROM"):
            from_tables.append(self._table_ref())
            while self._accept("op", ","):
                from_tables.append(self._table_ref())
        where = self.expression() if self._accept_keyword("WHERE") else None
        group_by = []
        if self._accept_keyword("GROUP", "BY"):
            group_by.append(self.expression())
            while self._accept("op", ","):
                group_by.append(self.expression())
        having = self.expression() if self._accept_keyword("HAVING") else None
        order_by = []
        if self._accept_keyword("ORDER", "BY"):
            order_by.append(self._order_item())
            while self._accept("op", ","):
                order_by.append(self._order_item())
        limit = None
        if self._accept_keyword("LIMIT"):
            limit = self._expect("number").value
        return ast.SelectStatement(
            items, from_tables, where, group_by, having, order_by, limit, distinct
        )

    def _select_item(self):
        if self._accept("op", "*"):
            return (ast.Star(), None)
        if (
            self._peek().kind == "ident"
            and self._peek(1).matches("op", ".")
            and self._peek(2).matches("op", "*")
        ):
            alias = self._advance().value
            self._advance()
            self._advance()
            return (ast.Star(alias), None)
        expr = self.expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._ident()
        elif self._peek().kind == "ident":
            alias = self._advance().value
        return (expr, alias)

    def _order_item(self):
        expr = self.expression()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return (expr, ascending)

    # -- FROM items ---------------------------------------------------------- #

    def _table_ref(self):
        ref = self._primary_table_ref()
        while True:
            if self._accept_keyword("CROSS", "JOIN"):
                right = self._primary_table_ref()
                ref = ast.JoinExpr(ref, right, ast.JoinExpr.CROSS)
                continue
            join_type = None
            if self._accept_keyword("INNER", "JOIN") or self._accept_keyword("JOIN"):
                join_type = ast.JoinExpr.INNER
            elif self._accept_keyword("LEFT", "OUTER", "JOIN") or self._accept_keyword(
                "LEFT", "JOIN"
            ):
                join_type = ast.JoinExpr.LEFT
            if join_type is None:
                return ref
            right = self._primary_table_ref()
            self._expect("keyword", "ON")
            condition = self.expression()
            ref = ast.JoinExpr(ref, right, join_type, condition)

    def _primary_table_ref(self):
        if self._accept("op", "("):
            select = self.select_statement()
            self._expect("op", ")")
            self._accept_keyword("AS")
            alias = self._ident()
            return ast.DerivedTable(select, alias)
        name = self._ident()
        if self._peek().matches("op", "("):
            self._advance()
            args = []
            if not self._peek().matches("op", ")"):
                args.append(self.expression())
                while self._accept("op", ","):
                    args.append(self.expression())
            self._expect("op", ")")
            alias = self._table_alias()
            return ast.ProcedureTable(name, args, alias)
        return ast.BaseTable(name, self._table_alias())

    def _table_alias(self):
        if self._accept_keyword("AS"):
            return self._ident()
        if self._peek().kind == "ident":
            return self._advance().value
        return None

    # -- DML ------------------------------------------------------------------ #

    def insert_statement(self):
        self._expect("keyword", "INSERT")
        self._expect("keyword", "INTO")
        table = self._ident()
        columns = None
        if self._accept("op", "("):
            columns = [self._ident()]
            while self._accept("op", ","):
                columns.append(self._ident())
            self._expect("op", ")")
        if self._accept_keyword("VALUES"):
            rows = [self._value_row()]
            while self._accept("op", ","):
                rows.append(self._value_row())
            return ast.InsertStatement(table, columns, rows=rows)
        select = self.select_statement()
        return ast.InsertStatement(table, columns, select=select)

    def _value_row(self):
        self._expect("op", "(")
        row = [self.expression()]
        while self._accept("op", ","):
            row.append(self.expression())
        self._expect("op", ")")
        return row

    def update_statement(self):
        self._expect("keyword", "UPDATE")
        table = self._ident()
        self._expect("keyword", "SET")
        assignments = [self._assignment()]
        while self._accept("op", ","):
            assignments.append(self._assignment())
        where = self.expression() if self._accept_keyword("WHERE") else None
        return ast.UpdateStatement(table, assignments, where)

    def _assignment(self):
        column = self._ident()
        self._expect("op", "=")
        return (column, self.expression())

    def delete_statement(self):
        self._expect("keyword", "DELETE")
        self._expect("keyword", "FROM")
        table = self._ident()
        where = self.expression() if self._accept_keyword("WHERE") else None
        return ast.DeleteStatement(table, where)

    # -- DDL ------------------------------------------------------------------ #

    def create_statement(self):
        self._expect("keyword", "CREATE")
        if self._accept_keyword("TABLE"):
            return self._create_table()
        unique = bool(self._accept_keyword("UNIQUE"))
        if self._accept_keyword("INDEX"):
            return self._create_index(unique)
        if unique:
            raise SqlParseError("expected INDEX after UNIQUE", self._peek().position)
        if self._accept_keyword("STATISTICS"):
            table = self._ident()
            self._expect("op", "(")
            columns = [self._ident()]
            while self._accept("op", ","):
                columns.append(self._ident())
            self._expect("op", ")")
            return ast.CreateStatisticsStatement(table, columns)
        if self._accept_keyword("PROCEDURE"):
            return self._create_procedure()
        token = self._peek()
        raise SqlParseError("unsupported CREATE %r" % (token.value,), token.position)

    def _create_table(self):
        name = self._ident()
        self._expect("op", "(")
        columns = []
        primary_key = []
        foreign_keys = []
        while True:
            if self._accept_keyword("PRIMARY", "KEY"):
                self._expect("op", "(")
                primary_key = [self._ident()]
                while self._accept("op", ","):
                    primary_key.append(self._ident())
                self._expect("op", ")")
            elif self._accept_keyword("FOREIGN", "KEY"):
                self._expect("op", "(")
                fk_columns = [self._ident()]
                while self._accept("op", ","):
                    fk_columns.append(self._ident())
                self._expect("op", ")")
                self._expect("keyword", "REFERENCES")
                ref_table = self._ident()
                self._expect("op", "(")
                ref_columns = [self._ident()]
                while self._accept("op", ","):
                    ref_columns.append(self._ident())
                self._expect("op", ")")
                foreign_keys.append(ast.ForeignKeyDef(fk_columns, ref_table, ref_columns))
            else:
                columns.append(self._column_def())
            if not self._accept("op", ","):
                break
        self._expect("op", ")")
        inline_pk = [column.name for column in columns if column.primary_key]
        if inline_pk and not primary_key:
            primary_key = inline_pk
        return ast.CreateTableStatement(name, columns, primary_key, foreign_keys)

    def _column_def(self):
        name = self._ident()
        token = self._peek()
        if token.kind == "ident" or (token.kind == "keyword" and token.value == "DATE"):
            type_name = self._advance().value
        else:
            raise SqlParseError("expected a type name", token.position)
        # Two-word types like LONG VARCHAR.
        if type_name.upper() == "LONG" and self._peek().kind == "ident":
            type_name = "LONG " + self._advance().value
        length = None
        if self._accept("op", "("):
            length = self._expect("number").value
            self._expect("op", ")")
        not_null = False
        primary_key = False
        while True:
            if self._accept_keyword("NOT"):
                self._expect("keyword", "NULL")
                not_null = True
            elif self._accept_keyword("PRIMARY", "KEY"):
                primary_key = True
                not_null = True
            else:
                break
        return ast.ColumnDef(name, type_name, length, not_null, primary_key)

    def _create_index(self, unique):
        name = self._ident()
        self._expect("keyword", "ON")
        table = self._ident()
        self._expect("op", "(")
        columns = [self._ident()]
        while self._accept("op", ","):
            columns.append(self._ident())
        self._expect("op", ")")
        return ast.CreateIndexStatement(name, table, columns, unique)

    def _create_procedure(self):
        name = self._ident()
        parameters = []
        if self._accept("op", "("):
            if not self._peek().matches("op", ")"):
                parameters.append(self._ident())
                while self._accept("op", ","):
                    parameters.append(self._ident())
            self._expect("op", ")")
        self._expect("keyword", "AS")
        body = self.select_statement()
        return ast.CreateProcedureStatement(name, parameters, body)

    def drop_statement(self):
        self._expect("keyword", "DROP")
        if self._accept_keyword("TABLE"):
            return ast.DropTableStatement(self._ident())
        if self._accept_keyword("INDEX"):
            return ast.DropIndexStatement(self._ident())
        token = self._peek()
        raise SqlParseError("unsupported DROP %r" % (token.value,), token.position)

    def call_statement(self):
        self._expect("keyword", "CALL")
        name = self._ident()
        args = []
        if self._accept("op", "("):
            if not self._peek().matches("op", ")"):
                args.append(self.expression())
                while self._accept("op", ","):
                    args.append(self.expression())
            self._expect("op", ")")
        return ast.CallStatement(name, args)

    def set_option_statement(self):
        self._expect("keyword", "SET")
        self._expect("keyword", "OPTION")
        name = self._ident()
        self._expect("op", "=")
        value = self.expression()
        if not isinstance(value, ast.Literal):
            raise SqlParseError("SET OPTION value must be a literal", self._peek().position)
        return ast.SetOptionStatement(name, value.value)

    # ------------------------------------------------------------------ #
    # expressions (precedence climbing)
    # ------------------------------------------------------------------ #

    def expression(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        while self._accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self):
        left = self._not_expr()
        while self._accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self):
        if self._accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._not_expr())
        return self._predicate()

    def _predicate(self):
        if self._peek().matches("keyword", "EXISTS"):
            self._advance()
            self._expect("op", "(")
            subquery = self.select_statement()
            self._expect("op", ")")
            return ast.Exists(subquery)
        left = self._additive()
        token = self._peek()
        if token.kind == "op" and token.value in _COMPARISONS:
            op = self._advance().value
            if op == "!=":
                op = "<>"
            return ast.BinaryOp(op, left, self._additive())
        if self._accept_keyword("IS"):
            negated = bool(self._accept_keyword("NOT"))
            self._expect("keyword", "NULL")
            return ast.IsNull(left, negated)
        negated = bool(self._accept_keyword("NOT"))
        if self._accept_keyword("LIKE"):
            return ast.Like(left, self._additive(), negated)
        if self._accept_keyword("BETWEEN"):
            low = self._additive()
            self._expect("keyword", "AND")
            high = self._additive()
            return ast.Between(left, low, high, negated)
        if self._accept_keyword("IN"):
            self._expect("op", "(")
            if self._peek().matches("keyword", "SELECT") or self._peek().matches(
                "keyword", "WITH"
            ):
                subquery = self.select_statement()
                self._expect("op", ")")
                return ast.InSubquery(left, subquery, negated)
            items = [self.expression()]
            while self._accept("op", ","):
                items.append(self.expression())
            self._expect("op", ")")
            return ast.InList(left, items, negated)
        if negated:
            raise SqlParseError(
                "expected LIKE, BETWEEN, or IN after NOT", self._peek().position
            )
        return left

    def _additive(self):
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("+", "-", "||"):
                op = self._advance().value
                left = ast.BinaryOp(op, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self):
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("*", "/"):
                op = self._advance().value
                left = ast.BinaryOp(op, left, self._unary())
            else:
                return left

    def _unary(self):
        if self._accept("op", "-"):
            return ast.UnaryOp("-", self._unary())
        if self._accept("op", "+"):
            return self._unary()
        return self._primary()

    def _primary(self):
        token = self._peek()
        if token.kind == "number":
            self._advance()
            return ast.Literal(token.value)
        if token.kind == "string":
            self._advance()
            return ast.Literal(token.value)
        if token.matches("keyword", "NULL"):
            self._advance()
            return ast.Literal(None)
        if token.matches("keyword", "TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.matches("keyword", "FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.matches("keyword", "DATE"):
            self._advance()
            text = self._expect("string").value
            return ast.Literal(parse_date_literal(text))
        if token.matches("keyword", "CASE"):
            return self._case_expr()
        if token.kind == "keyword" and token.value in _AGG_KEYWORDS:
            return self._function_call(self._advance().value)
        if token.matches("op", "?"):
            self._advance()
            return ast.Parameter(ordinal=self._count_parameters())
        if token.matches("op", "("):
            self._advance()
            if self._peek().matches("keyword", "SELECT") or self._peek().matches(
                "keyword", "WITH"
            ):
                raise SqlParseError(
                    "scalar subqueries are not supported; use IN/EXISTS",
                    token.position,
                )
            expr = self.expression()
            self._expect("op", ")")
            return expr
        if token.kind == "ident":
            name = self._advance().value
            if self._peek().matches("op", "("):
                return self._function_call(name)
            if self._accept("op", "."):
                column = self._ident()
                return ast.ColumnRef(name, column)
            return ast.ColumnRef(None, name)
        raise SqlParseError("unexpected token %r" % (token.value,), token.position)

    def _case_expr(self):
        self._expect("keyword", "CASE")
        branches = []
        while self._accept_keyword("WHEN"):
            condition = self.expression()
            self._expect("keyword", "THEN")
            branches.append((condition, self.expression()))
        default = self.expression() if self._accept_keyword("ELSE") else None
        self._expect("keyword", "END")
        if not branches:
            raise SqlParseError("CASE needs at least one WHEN", self._peek().position)
        return ast.CaseExpr(branches, default)

    def _function_call(self, name):
        self._expect("op", "(")
        if self._accept("op", "*"):
            self._expect("op", ")")
            return ast.FunctionCall(name, [], star=True)
        distinct = bool(self._accept_keyword("DISTINCT"))
        args = []
        if not self._peek().matches("op", ")"):
            args.append(self.expression())
            while self._accept("op", ","):
                args.append(self.expression())
        self._expect("op", ")")
        return ast.FunctionCall(name, args, distinct=distinct)

    def _count_parameters(self):
        count = 0
        for token in self._tokens[: self._index]:
            if token.matches("op", "?"):
                count += 1
        return count - 1
