"""Self-managing statistics (paper Section 3).

SQL Anywhere "automatically collects statistics as part of query
execution" rather than requiring explicit ANALYZE-style scans.  This
package implements the full stack the paper describes:

* :mod:`~repro.stats.greenwald` — a Greenwald-style one-pass quantile
  sketch used when histograms are bulk-built (LOAD TABLE, CREATE INDEX,
  CREATE STATISTICS);
* :mod:`~repro.stats.histogram` — equi-depth histograms over an
  order-preserving hashed domain, combining traditional buckets with
  *singleton buckets* (frequent-value statistics), a *density* measure,
  dynamic bucket expansion/contraction, and feedback updates from
  predicates evaluated during query execution;
* :mod:`~repro.stats.stringstats` — the separate infrastructure for long
  string data: a dynamic list of observed (hash, predicate) buckets and
  per-'word' buckets for LIKE estimation;
* :mod:`~repro.stats.joinhist` — join histograms computed on the fly
  during optimization;
* :mod:`~repro.stats.procstats` — moving-average statistics for stored
  procedures used in FROM clauses, with parameter-specific overrides;
* :mod:`~repro.stats.manager` — the statistics manager wiring feedback
  from the executor into the column statistics.
"""

from repro.stats.greenwald import GreenwaldSketch
from repro.stats.histogram import ColumnHistogram
from repro.stats.joinhist import join_selectivity
from repro.stats.manager import StatisticsManager
from repro.stats.procstats import ProcedureStats
from repro.stats.stringstats import StringStatistics

__all__ = [
    "GreenwaldSketch",
    "ColumnHistogram",
    "join_selectivity",
    "StatisticsManager",
    "ProcedureStats",
    "StringStatistics",
]
