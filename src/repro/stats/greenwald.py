"""Greenwald-style one-pass quantile sketch.

"A modified version of Greenwald's algorithm is used to create the
cumulative distribution function for each table column.  Our modifications
significantly reduce the overhead of statistics collection with a marginal
reduction in quality." (Section 3.2)

This is the Greenwald–Khanna epsilon-approximate quantile summary with one
simplification in the same spirit as the paper's: compression runs only
every ``1/(2*epsilon)`` insertions (amortizing the merge pass) instead of
after every insertion.
"""


class _Entry:
    __slots__ = ("value", "g", "delta")

    def __init__(self, value, g, delta):
        self.value = value
        self.g = g
        self.delta = delta


class GreenwaldSketch:
    """Epsilon-approximate quantile summary of a stream of floats."""

    def __init__(self, epsilon=0.01):
        if not 0 < epsilon < 0.5:
            raise ValueError("epsilon must be in (0, 0.5)")
        self.epsilon = epsilon
        self._entries = []
        self._count = 0
        self._since_compress = 0
        self._compress_period = max(1, int(1.0 / (2.0 * epsilon)))

    @property
    def count(self):
        """Number of values inserted."""
        return self._count

    def insert(self, value):
        """Add one value to the summary."""
        value = float(value)
        entries = self._entries
        self._count += 1
        if not entries or value < entries[0].value:
            entries.insert(0, _Entry(value, 1, 0))
        elif value >= entries[-1].value:
            entries.append(_Entry(value, 1, 0))
        else:
            # Find the first entry with a larger value (linear from a
            # bisected start point keeps this near O(log n) in practice).
            lo, hi = 0, len(entries)
            while lo < hi:
                mid = (lo + hi) // 2
                if entries[mid].value <= value:
                    lo = mid + 1
                else:
                    hi = mid
            cap = int(2 * self.epsilon * self._count)
            entries.insert(lo, _Entry(value, 1, max(0, cap - 1)))
        self._since_compress += 1
        if self._since_compress >= self._compress_period:
            self._compress()
            self._since_compress = 0

    def _compress(self):
        entries = self._entries
        if len(entries) < 3:
            return
        cap = int(2 * self.epsilon * self._count)
        merged = [entries[0]]
        for entry in entries[1:-1]:
            last = merged[-1]
            if last.g + entry.g + entry.delta <= cap and len(merged) > 1:
                entry.g += last.g
                merged[-1] = entry
            else:
                merged.append(entry)
        merged.append(entries[-1])
        self._entries = merged

    def quantile(self, fraction):
        """Approximate the value at rank ``fraction`` in [0, 1]."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self._count == 0:
            raise ValueError("empty sketch has no quantiles")
        if fraction <= 0.0:
            return self._entries[0].value
        if fraction >= 1.0:
            return self._entries[-1].value
        rank = fraction * self._count
        margin = self.epsilon * self._count
        running = 0
        previous = self._entries[0]
        for entry in self._entries:
            if running + entry.g + entry.delta > rank + margin:
                return previous.value
            running += entry.g
            previous = entry
        return self._entries[-1].value

    def boundaries(self, n_buckets):
        """Equi-depth bucket boundaries: n_buckets+1 values, min..max."""
        if n_buckets < 1:
            raise ValueError("need at least one bucket")
        if self._count == 0:
            raise ValueError("empty sketch has no boundaries")
        return [self.quantile(i / n_buckets) for i in range(n_buckets + 1)]

    def summary_size(self):
        """Number of retained entries (memory proxy)."""
        return len(self._entries)
