"""Self-managing equi-depth column histograms (paper Section 3.1).

Key properties reproduced from the paper:

* one infrastructure for all short data types, via an **order-preserving
  hash** to a double, plus a per-type **value width** keeping the domain
  discrete;
* **equi-depth buckets** whose number expands and contracts dynamically as
  the distribution drifts;
* **singleton buckets** (frequent-value statistics) for values comprising
  at least 1% of the column (or 'top N'), capped at 100; a histogram may be
  entirely singletons, the *compressed* representation;
* a **density** value: the average selectivity of a single non-singleton
  value, used for equality estimates and intra-bucket interpolation;
* updates from **query execution feedback** (observed predicate
  selectivities) and from INSERT/UPDATE/DELETE maintenance.
"""

import collections

from repro.common.hashing import order_preserving_hash, value_width
from repro.stats.greenwald import GreenwaldSketch

#: A value is promoted to a singleton bucket at this fraction of the rows.
SINGLETON_FRACTION = 0.01

#: Hard cap on retained singletons ("lies in the range [0,100]").
MAX_SINGLETONS = 100

#: Default number of equi-depth buckets for a fresh histogram.
DEFAULT_TARGET_BUCKETS = 20

#: Buckets beyond 4x the target trigger merges; a bucket holding more than
#: twice the target depth is split.
_MAX_BUCKET_FACTOR = 4


class _Bucket:
    __slots__ = ("low", "high", "count")

    def __init__(self, low, high, count):
        self.low = low
        self.high = high
        self.count = count

    def span(self):
        return max(0.0, self.high - self.low)

    def __repr__(self):
        return "Bucket[%g,%g)=%.1f" % (self.low, self.high, self.count)


class ColumnHistogram:
    """Histogram + frequent-value statistics for one column."""

    def __init__(self, type_name, target_buckets=DEFAULT_TARGET_BUCKETS):
        self.type_name = type_name
        self.value_width = value_width(type_name)
        self.target_buckets = target_buckets
        self._buckets = []          # contiguous, sorted by [low, high)
        self._singletons = {}       # hashed -> [raw_value, count]
        self.null_count = 0.0
        #: Estimated distinct non-singleton values (drives density).
        self.distinct_nonsingleton = 0.0
        #: How many feedback observations have been folded in.
        self.feedback_updates = 0
        #: Observed domain extremes (hashed), used to close open-ended
        #: range feedback so one-sided predicates can seed buckets.
        self._domain_low = None
        self._domain_high = None
        #: Latest known table row count (set by the statistics manager on
        #: feedback).  Mass the histogram has not yet localized is carried
        #: as an *unseen* remainder so selectivities divide by the true
        #: table size even while coverage is partial.
        self.table_total_hint = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(cls, type_name, values, target_buckets=DEFAULT_TARGET_BUCKETS,
              epsilon=0.01):
        """Bulk-build from a value stream (LOAD TABLE / CREATE STATISTICS).

        Frequent values are counted exactly; the remaining distribution is
        summarized with a Greenwald sketch whose boundaries become the
        equi-depth buckets.
        """
        histogram = cls(type_name, target_buckets)
        counter = collections.Counter()
        raw_values = {}
        nulls = 0
        for value in values:
            if value is None:
                nulls += 1
            else:
                hashed = order_preserving_hash(value)
                counter[hashed] += 1
                raw_values.setdefault(hashed, value)
        histogram.null_count = float(nulls)
        total_nonnull = sum(counter.values())
        if total_nonnull == 0:
            return histogram
        # Pick singletons: >= 1% of rows, or everything if the column is
        # low-cardinality enough to fit the compressed representation.
        threshold = max(1.0, SINGLETON_FRACTION * total_nonnull)
        if len(counter) <= MAX_SINGLETONS:
            chosen = list(counter.items())
        else:
            chosen = [
                (hashed, count)
                for hashed, count in counter.most_common(MAX_SINGLETONS)
                if count >= threshold
            ]
        for hashed, count in chosen:
            histogram._singletons[hashed] = [raw_values[hashed], float(count)]
        # Remaining mass goes to equi-depth buckets via the sketch.
        rest = {
            hashed: count
            for hashed, count in counter.items()
            if hashed not in histogram._singletons
        }
        histogram.distinct_nonsingleton = float(len(rest))
        rest_total = sum(rest.values())
        if rest_total > 0:
            sketch = GreenwaldSketch(epsilon)
            for hashed, count in rest.items():
                for __ in range(count):
                    sketch.insert(hashed)
            n_buckets = min(target_buckets, max(1, len(rest)))
            bounds = sketch.boundaries(n_buckets)
            per_bucket = rest_total / n_buckets
            buckets = []
            for low, high in zip(bounds, bounds[1:]):
                if buckets and high <= buckets[-1].high:
                    buckets[-1].count += per_bucket  # degenerate boundary
                else:
                    buckets.append(_Bucket(low, high + 0.0, per_bucket))
            if buckets:
                buckets[-1].high += histogram.value_width  # close the top
            histogram._buckets = buckets
        return histogram

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def bucket_count(self):
        return len(self._buckets)

    @property
    def singleton_count(self):
        return len(self._singletons)

    @property
    def is_compressed(self):
        """Entirely singleton buckets (the compressed representation)."""
        return not self._buckets and bool(self._singletons)

    def known_count(self):
        """Mass the histogram has localized (buckets+singletons+nulls)."""
        return (
            sum(bucket.count for bucket in self._buckets)
            + sum(count for __, count in self._singletons.values())
            + self.null_count
        )

    def unseen_count(self):
        """Rows known to exist (table hint) but not yet localized."""
        if self.table_total_hint is None:
            return 0.0
        return max(0.0, self.table_total_hint - self.known_count())

    def total_count(self):
        return self.known_count() + self.unseen_count()

    def note_table_total(self, n_rows):
        """Record the table's current row count (from the manager)."""
        self.table_total_hint = float(n_rows)

    def nonnull_count(self):
        return self.total_count() - self.null_count

    def density(self):
        """Average selectivity of one non-singleton value.

        For a *compressed* histogram (entirely singleton buckets) there are
        no non-singleton values; the density of an average singleton is
        returned instead, so equality estimates on unknown comparands
        (e.g. host parameters) stay sensible.
        """
        total = self.total_count()
        if total <= 0:
            return 0.0
        bucket_mass = sum(bucket.count for bucket in self._buckets)
        if bucket_mass <= 0:
            singleton_mass = sum(
                count for __, count in self._singletons.values()
            )
            if singleton_mass <= 0 or not self._singletons:
                return 0.0
            return (singleton_mass / total) / len(self._singletons)
        distinct = max(1.0, self.distinct_nonsingleton)
        return (bucket_mass / total) / distinct

    # ------------------------------------------------------------------ #
    # estimation
    # ------------------------------------------------------------------ #

    def estimate_eq(self, value):
        """Selectivity of ``column = value``."""
        total = self.total_count()
        if total <= 0:
            return 0.0
        if value is None:
            return 0.0  # `= NULL` never matches
        hashed = order_preserving_hash(value)
        if hashed in self._singletons:
            return self._singletons[hashed][1] / total
        if not self._within_buckets(hashed):
            return 0.0
        return self.density()

    def estimate_null(self):
        total = self.total_count()
        if total <= 0:
            return 0.0
        return self.null_count / total

    def estimate_range(self, low=None, high=None, low_inclusive=True,
                       high_inclusive=True):
        """Selectivity of a range predicate (values, not hashes)."""
        low_hash = order_preserving_hash(low) if low is not None else None
        high_hash = order_preserving_hash(high) if high is not None else None
        return self.estimate_range_hashed(
            low_hash, high_hash, low_inclusive, high_inclusive
        )

    def estimate_range_hashed(self, low=None, high=None, low_inclusive=True,
                              high_inclusive=True):
        """Range selectivity over the hashed domain."""
        total = self.total_count()
        if total <= 0:
            return 0.0
        # Normalize to a closed interval using the value width.
        if low is not None and not low_inclusive:
            low = low + self.value_width
        if high is not None and not high_inclusive:
            high = high - self.value_width
        if low is not None and high is not None and low > high:
            return 0.0
        matched = 0.0
        for hashed, (__, count) in self._singletons.items():
            if (low is None or hashed >= low) and (high is None or hashed <= high):
                matched += count
        for bucket in self._buckets:
            matched += self._bucket_overlap(bucket, low, high)
        if matched <= 0.0 and self.unseen_count() > 0:
            # The range misses every localized bucket, but rows the
            # histogram has not yet placed could live there: attribute a
            # conservative share of the unseen mass rather than claiming
            # the range is empty.
            matched = 0.1 * self.unseen_count()
        return min(1.0, matched / total)

    def _bucket_overlap(self, bucket, low, high):
        b_low = bucket.low
        b_high = bucket.high
        clip_low = b_low if low is None else max(b_low, low)
        clip_high = b_high if high is None else min(b_high, high + self.value_width)
        if clip_high <= clip_low:
            return 0.0
        span = bucket.span()
        if span <= 0:
            return bucket.count
        # Uniform-distribution assumption inside the bucket.
        return bucket.count * min(1.0, (clip_high - clip_low) / span)

    def estimate_like_prefix(self, prefix):
        """Selectivity of ``column LIKE 'prefix%'`` via a hashed range."""
        if prefix == "":
            return 1.0
        low = order_preserving_hash(prefix)
        # Everything sharing the prefix hashes into [low, low + slack] where
        # slack covers the unconstrained suffix bytes.
        data = prefix.encode("utf-8", errors="replace")
        free_bytes = max(0, 7 - len(data))
        slack = float((1 << (8 * free_bytes)) - 1) if free_bytes else 0.0
        return self.estimate_range_hashed(low, low + slack)

    def _within_buckets(self, hashed):
        if not self._buckets:
            return False
        return self._buckets[0].low <= hashed < self._buckets[-1].high

    # ------------------------------------------------------------------ #
    # feedback from query execution (Section 3.2)
    # ------------------------------------------------------------------ #

    def feedback_eq(self, value, observed_count):
        """Fold in the observed row count of an equality predicate."""
        if value is None:
            return
        self.feedback_updates += 1
        total = max(1.0, self.total_count())
        hashed = order_preserving_hash(value)
        if hashed in self._singletons:
            self._singletons[hashed][1] = float(observed_count)
            return
        if (
            observed_count >= SINGLETON_FRACTION * total
            and len(self._singletons) < MAX_SINGLETONS
        ):
            # Promote to a singleton, pulling its mass out of the bucket.
            bucket = self._bucket_for(hashed)
            if bucket is not None:
                bucket.count = max(0.0, bucket.count - observed_count)
                self.distinct_nonsingleton = max(
                    0.0, self.distinct_nonsingleton - 1.0
                )
            self._singletons[hashed] = [value, float(observed_count)]
            return
        # Not frequent: refine the density via the implied distinct count.
        bucket = self._bucket_for(hashed)
        if bucket is not None and observed_count > 0:
            implied_distinct = max(1.0, bucket.count / observed_count)
            fraction = bucket.count / max(
                1.0, sum(b.count for b in self._buckets)
            )
            blended = (
                0.8 * self.distinct_nonsingleton
                + 0.2 * (implied_distinct / max(fraction, 1e-9))
            )
            self.distinct_nonsingleton = max(1.0, blended)

    def feedback_range(self, low, high, observed_count, low_inclusive=True,
                       high_inclusive=True):
        """Scale the buckets overlapping [low, high] toward the truth.

        This is the self-tuning-histogram move (cf. Aboulnaga & Chaudhuri,
        the paper's reference [1]).
        """
        self.feedback_updates += 1
        low_hash = order_preserving_hash(low) if low is not None else None
        high_hash = order_preserving_hash(high) if high is not None else None
        if low_hash is not None and not low_inclusive:
            low_hash += self.value_width
        if high_hash is not None and not high_inclusive:
            high_hash -= self.value_width
        self._note_domain(low_hash)
        self._note_domain(high_hash)
        # One-sided predicates close against the observed domain edge.
        if low_hash is None:
            low_hash = self._domain_low
        if high_hash is None:
            high_hash = self._domain_high
        estimated = sum(
            self._bucket_overlap(bucket, low_hash, high_hash)
            for bucket in self._buckets
        )
        singleton_mass = sum(
            count
            for hashed, (__, count) in self._singletons.items()
            if (low_hash is None or hashed >= low_hash)
            and (high_hash is None or hashed <= high_hash)
        )
        target = max(0.0, observed_count - singleton_mass)
        if estimated <= 0.0:
            # No overlapping mass: seed a bucket for this region.
            if target > 0 and low_hash is not None and high_hash is not None:
                self._insert_bucket(low_hash, high_hash + self.value_width, target)
        else:
            # Scale the in-range mass to the observed truth.
            factor_in = target / estimated
            for bucket in self._buckets:
                overlap = self._bucket_overlap(bucket, low_hash, high_hash)
                outside = max(0.0, bucket.count - overlap)
                bucket.count = max(0.0, overlap * factor_in + outside)
        # Reconcile against the table size: localized mass beyond the
        # table's row count must shrink the out-of-range buckets; any
        # deficit stays in the unseen remainder.
        if self.table_total_hint is not None:
            known = self.known_count()
            excess = known - self.table_total_hint
            if excess > 0:
                outside_total = 0.0
                overlaps = []
                for bucket in self._buckets:
                    overlap = self._bucket_overlap(bucket, low_hash, high_hash)
                    overlaps.append(overlap)
                    outside_total += max(0.0, bucket.count - overlap)
                if outside_total > 0:
                    shrink = min(1.0, excess / outside_total)
                    for bucket, overlap in zip(self._buckets, overlaps):
                        outside = max(0.0, bucket.count - overlap)
                        bucket.count = max(
                            0.0, bucket.count - outside * shrink
                        )
        self._rebalance()

    def feedback_null(self, observed_count):
        self.feedback_updates += 1
        self.null_count = float(observed_count)

    # ------------------------------------------------------------------ #
    # DML maintenance
    # ------------------------------------------------------------------ #

    def note_insert(self, value):
        if value is None:
            self.null_count += 1
            return
        hashed = order_preserving_hash(value)
        self._note_domain(hashed)
        if hashed in self._singletons:
            self._singletons[hashed][1] += 1
            return
        bucket = self._bucket_for(hashed)
        if bucket is None:
            self._extend_domain(hashed, hashed)
            bucket = self._bucket_for(hashed)
        if bucket is not None:
            bucket.count += 1
        self._rebalance()

    def note_delete(self, value):
        if value is None:
            self.null_count = max(0.0, self.null_count - 1)
            return
        hashed = order_preserving_hash(value)
        if hashed in self._singletons:
            entry = self._singletons[hashed]
            entry[1] -= 1
            if entry[1] <= 0:
                del self._singletons[hashed]
            return
        bucket = self._bucket_for(hashed)
        if bucket is not None:
            bucket.count = max(0.0, bucket.count - 1)

    # ------------------------------------------------------------------ #
    # dynamic bucket management
    # ------------------------------------------------------------------ #

    def _note_domain(self, hashed):
        if hashed is None:
            return
        if self._domain_low is None or hashed < self._domain_low:
            self._domain_low = hashed
        if self._domain_high is None or hashed > self._domain_high:
            self._domain_high = hashed

    def _bucket_for(self, hashed):
        for bucket in self._buckets:
            if bucket.low <= hashed < bucket.high:
                return bucket
        return None

    def _insert_bucket(self, low, high, count):
        self._buckets.append(_Bucket(low, high, count))
        self._buckets.sort(key=lambda bucket: bucket.low)

    def _extend_domain(self, low, high):
        """Stretch the outermost buckets to cover [low, high]."""
        if not self._buckets:
            if low is not None and high is not None:
                self._insert_bucket(low, high + self.value_width, 0.0)
            return
        if low is not None and low < self._buckets[0].low:
            self._buckets[0].low = low
        if high is not None and high >= self._buckets[-1].high:
            self._buckets[-1].high = high + self.value_width

    def _rebalance(self):
        """Expand/contract the bucket count as the distribution changes."""
        if not self._buckets:
            return
        bucket_mass = sum(bucket.count for bucket in self._buckets)
        if bucket_mass <= 0:
            return
        target_depth = bucket_mass / self.target_buckets
        # Split any bucket far above the target depth.
        result = []
        for bucket in self._buckets:
            if (
                bucket.count > 2.0 * target_depth
                and bucket.span() > 2 * self.value_width
                and len(self._buckets) + len(result) <
                _MAX_BUCKET_FACTOR * self.target_buckets
            ):
                middle = bucket.low + bucket.span() / 2.0
                result.append(_Bucket(bucket.low, middle, bucket.count / 2.0))
                result.append(_Bucket(middle, bucket.high, bucket.count / 2.0))
            else:
                result.append(bucket)
        # Merge adjacent buckets far below the target depth.
        merged = []
        for bucket in result:
            if (
                merged
                and merged[-1].count + bucket.count < 0.5 * target_depth
                and merged[-1].high == bucket.low
            ):
                merged[-1] = _Bucket(
                    merged[-1].low, bucket.high, merged[-1].count + bucket.count
                )
            else:
                merged.append(bucket)
        self._buckets = merged

    # ------------------------------------------------------------------ #
    # access for join histograms
    # ------------------------------------------------------------------ #

    def bucket_view(self):
        """[(low, high, count)] over the hashed domain (for joins)."""
        return [(b.low, b.high, b.count) for b in self._buckets]

    def singleton_view(self):
        """[(hashed, count)] (for joins)."""
        return [
            (hashed, count) for hashed, (__, count) in self._singletons.items()
        ]

    def __repr__(self):
        return "ColumnHistogram(%s: %d buckets, %d singletons, density=%.4g)" % (
            self.type_name, self.bucket_count, self.singleton_count, self.density()
        )
