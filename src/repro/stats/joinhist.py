"""Join histograms (paper Section 3.2).

"Join histograms are computed on-the-fly during query optimization to
determine the cardinality of intermediate results.  As with column
histograms, join histograms are over a single attribute."

Given the two columns' histograms, the join histogram aligns their bucket
boundaries and estimates, per aligned interval, the number of matching
pairs under containment/uniformity assumptions; singleton buckets match
exactly.
"""


def join_selectivity(left_hist, right_hist):
    """Selectivity of ``L.a = R.b`` given both column histograms.

    Returns the fraction of the L x R cross product that joins, so the
    estimated join cardinality is ``|L| * |R| * selectivity``.
    """
    grand_left = left_hist.total_count()
    grand_right = right_hist.total_count()
    if grand_left <= 0 or grand_right <= 0:
        return 0.0

    matches = 0.0
    left_singletons = dict(left_hist.singleton_view())
    right_singletons = dict(right_hist.singleton_view())

    # Singleton x singleton: exact frequent-value matches.
    for hashed, left_count in left_singletons.items():
        right_count = right_singletons.get(hashed)
        if right_count is not None:
            matches += left_count * right_count

    # Singleton x bucket (both directions): the frequent value joins with
    # one average value's worth of the other side's bucket mass.
    left_per_value = _per_value_rows(left_hist)
    right_per_value = _per_value_rows(right_hist)
    for hashed, left_count in left_singletons.items():
        if hashed not in right_singletons and _in_buckets(right_hist, hashed):
            matches += left_count * right_per_value
    for hashed, right_count in right_singletons.items():
        if hashed not in left_singletons and _in_buckets(left_hist, hashed):
            matches += right_count * left_per_value

    # Bucket x bucket: align boundaries; within each aligned interval,
    # assume the side with fewer distinct values is contained in the other
    # (matching pairs = L * R / max(d_L, d_R)).
    boundaries = set()
    for low, high, __ in left_hist.bucket_view():
        boundaries.add(low)
        boundaries.add(high)
    for low, high, __ in right_hist.bucket_view():
        boundaries.add(low)
        boundaries.add(high)
    ordered = sorted(boundaries)
    for low, high in zip(ordered, ordered[1:]):
        left_mass = _bucket_range_mass(left_hist, low, high)
        right_mass = _bucket_range_mass(right_hist, low, high)
        if left_mass <= 0 or right_mass <= 0:
            continue
        left_distinct = max(1.0, left_mass / max(left_per_value, 1e-9))
        right_distinct = max(1.0, right_mass / max(right_per_value, 1e-9))
        matches += left_mass * right_mass / max(left_distinct, right_distinct)

    selectivity = matches / (grand_left * grand_right)
    return max(0.0, min(1.0, selectivity))


def join_cardinality(left_hist, right_hist):
    """Estimated number of joining pairs for ``L.a = R.b``."""
    return (
        left_hist.total_count()
        * right_hist.total_count()
        * join_selectivity(left_hist, right_hist)
    )


def _per_value_rows(histogram):
    """Expected rows per distinct non-singleton value."""
    return histogram.density() * histogram.total_count()


def _in_buckets(histogram, hashed):
    for low, high, __ in histogram.bucket_view():
        if low <= hashed < high:
            return True
    return False


def _bucket_range_mass(histogram, low, high):
    """Bucket mass (row count) overlapping the hashed interval [low, high)."""
    total = 0.0
    for b_low, b_high, count in histogram.bucket_view():
        clip_low = max(b_low, low)
        clip_high = min(b_high, high)
        if clip_high <= clip_low:
            continue
        span = b_high - b_low
        if span <= 0:
            total += count
        else:
            total += count * (clip_high - clip_low) / span
    return total
