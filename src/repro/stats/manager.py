"""The statistics manager: wiring execution feedback into column stats.

Histograms are created automatically when data is bulk-loaded
(``LOAD TABLE``), when an index is created, or on ``CREATE STATISTICS``;
after that, (almost) every predicate evaluated over a base column during
query execution updates the column's statistics, and INSERT / UPDATE /
DELETE maintain them incrementally (paper Section 3.2).
"""

from repro.common.hashing import SHORT_STRING_MAX
from repro.stats.histogram import ColumnHistogram
from repro.stats.procstats import ProcedureStats
from repro.stats.stringstats import StringStatistics


class ColumnStats:
    """Statistics holder for one column: histogram and/or string stats."""

    def __init__(self, column):
        self.column = column
        self.histogram = None
        self.string_stats = None
        self.built_by = None  # 'load' | 'create-statistics' | 'feedback'

    @property
    def uses_string_infrastructure(self):
        """Long string/binary columns use the predicate-bucket machinery."""
        if self.column.type_name == "LONG VARCHAR":
            return True
        return (
            self.column.type_name == "VARCHAR"
            and (self.column.declared_length or 0) > SHORT_STRING_MAX
        )


class StatisticsManager:
    """All statistics of one database."""

    def __init__(self, catalog):
        self.catalog = catalog
        self._columns = {}  # (table_name, column_index) -> ColumnStats

    # ------------------------------------------------------------------ #
    # lookup / lazy creation
    # ------------------------------------------------------------------ #

    def column_stats(self, table_name, column_index, create=False):
        key = (table_name, column_index)
        stats = self._columns.get(key)
        if stats is None and create:
            table = self.catalog.table(table_name)
            stats = ColumnStats(table.columns[column_index])
            self._columns[key] = stats
            table.column_stats[column_index] = stats
        return stats

    def histogram(self, table_name, column_index):
        stats = self.column_stats(table_name, column_index)
        return stats.histogram if stats is not None else None

    def string_stats(self, table_name, column_index, create=False):
        stats = self.column_stats(table_name, column_index, create=create)
        if stats is None:
            return None
        if stats.string_stats is None and create:
            stats.string_stats = StringStatistics()
        return stats.string_stats

    def procedure_stats(self, procedure_name):
        procedure = self.catalog.procedure(procedure_name)
        if procedure.stats is None:
            procedure.stats = ProcedureStats()
        return procedure.stats

    # ------------------------------------------------------------------ #
    # bulk builds
    # ------------------------------------------------------------------ #

    def build_statistics(self, table_name, column_names=None, built_by="create-statistics"):
        """Build histograms by scanning the table (LOAD TABLE / CREATE
        STATISTICS / CREATE INDEX path)."""
        table = self.catalog.table(table_name)
        if column_names is None:
            indexes = list(range(len(table.columns)))
        else:
            indexes = [table.column_index(name) for name in column_names]
        rows = [row for __, row in table.storage.scan()] if table.storage else []
        for index in indexes:
            stats = self.column_stats(table_name, index, create=True)
            values = [row[index] for row in rows]
            if stats.uses_string_infrastructure:
                stats.string_stats = StringStatistics()
                for value in values:
                    stats.string_stats.observe_value(value)
            else:
                stats.histogram = ColumnHistogram.build(
                    stats.column.type_name, values
                )
            stats.built_by = built_by
        return indexes

    # ------------------------------------------------------------------ #
    # feedback from query execution
    # ------------------------------------------------------------------ #

    def feedback_eq(self, table_name, column_index, value, matched, scanned,
                    table_rows):
        """An equality predicate was evaluated against ``scanned`` base
        rows and matched ``matched`` of them."""
        stats = self.column_stats(table_name, column_index, create=True)
        if stats.uses_string_infrastructure:
            stats.string_stats = stats.string_stats or StringStatistics()
            if scanned:
                stats.string_stats.observe_predicate(
                    "=", str(value), matched / scanned
                )
            return
        histogram = self._ensure_histogram(stats, table_rows)
        histogram.note_table_total(table_rows)
        observed_count = self._scale(matched, scanned, table_rows)
        histogram.feedback_eq(value, observed_count)

    def feedback_range(self, table_name, column_index, low, high, matched,
                       scanned, table_rows, low_inclusive=True,
                       high_inclusive=True):
        stats = self.column_stats(table_name, column_index, create=True)
        if stats.uses_string_infrastructure:
            return
        histogram = self._ensure_histogram(stats, table_rows)
        histogram.note_table_total(table_rows)
        observed_count = self._scale(matched, scanned, table_rows)
        histogram.feedback_range(
            low, high, observed_count, low_inclusive, high_inclusive
        )

    def feedback_null(self, table_name, column_index, matched, scanned,
                      table_rows):
        stats = self.column_stats(table_name, column_index, create=True)
        if stats.uses_string_infrastructure:
            return
        histogram = self._ensure_histogram(stats, table_rows)
        histogram.note_table_total(table_rows)
        histogram.feedback_null(self._scale(matched, scanned, table_rows))

    def feedback_like(self, table_name, column_index, pattern, matched,
                      scanned, table_rows):
        stats = self.column_stats(table_name, column_index, create=True)
        selectivity = (matched / scanned) if scanned else 0.0
        string_stats = stats.string_stats or StringStatistics()
        stats.string_stats = string_stats
        string_stats.observe_predicate("LIKE", pattern, selectivity)

    def _ensure_histogram(self, stats, table_rows):
        if stats.histogram is None:
            stats.histogram = ColumnHistogram(stats.column.type_name)
            stats.built_by = stats.built_by or "feedback"
        return stats.histogram

    @staticmethod
    def _scale(matched, scanned, table_rows):
        """Scale an observation on ``scanned`` rows up to the table."""
        if scanned <= 0:
            return 0.0
        return matched * (table_rows / scanned)

    # ------------------------------------------------------------------ #
    # DML maintenance
    # ------------------------------------------------------------------ #

    def note_insert(self, table_name, row):
        for (t_name, index), stats in self._columns.items():
            if t_name != table_name:
                continue
            if stats.histogram is not None:
                stats.histogram.note_insert(row[index])
            if stats.string_stats is not None:
                stats.string_stats.observe_value(row[index])

    def note_delete(self, table_name, row):
        for (t_name, index), stats in self._columns.items():
            if t_name != table_name:
                continue
            if stats.histogram is not None:
                stats.histogram.note_delete(row[index])

    def note_update(self, table_name, old_row, new_row):
        self.note_delete(table_name, old_row)
        self.note_insert(table_name, new_row)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def tracked_columns(self):
        return list(self._columns.keys())
