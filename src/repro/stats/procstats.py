"""Stored-procedure execution statistics (paper Section 3.2).

"For stored procedures used in a FROM clause, the server maintains a
summary of statistics for previous invocations, including total CPU time
and result cardinality.  A moving average of these statistics is saved
persistently in the database ...  In addition, statistics specific to
certain values of the procedure's input parameters are saved and managed
separately if they differ sufficiently from the moving average."
"""

#: Exponential moving-average weight for new observations.
EMA_ALPHA = 0.25

#: A parameter binding earns its own statistics entry when its observation
#: differs from the moving average by at least this factor.
DIVERGENCE_FACTOR = 4.0

#: Cap on per-parameter entries.
MAX_PARAMETER_ENTRIES = 32


class _Summary:
    __slots__ = ("cpu_us", "cardinality", "invocations")

    def __init__(self):
        self.cpu_us = None
        self.cardinality = None
        self.invocations = 0

    def update(self, cpu_us, cardinality):
        self.invocations += 1
        if self.cpu_us is None:
            self.cpu_us = float(cpu_us)
            self.cardinality = float(cardinality)
        else:
            self.cpu_us += EMA_ALPHA * (cpu_us - self.cpu_us)
            self.cardinality += EMA_ALPHA * (cardinality - self.cardinality)


class ProcedureStats:
    """Moving-average + parameter-specific statistics for one procedure."""

    def __init__(self, default_cardinality=100.0, default_cpu_us=1000.0):
        self._overall = _Summary()
        self._by_params = {}
        self.default_cardinality = default_cardinality
        self.default_cpu_us = default_cpu_us

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def record(self, params, cpu_us, cardinality):
        """Record one invocation's cost and result size."""
        key = self._key(params)
        diverges = self._diverges(cpu_us, cardinality)
        self._overall.update(cpu_us, cardinality)
        if key in self._by_params:
            self._by_params[key].update(cpu_us, cardinality)
            return
        if diverges:
            if len(self._by_params) >= MAX_PARAMETER_ENTRIES:
                # Drop the least-invoked entry.
                victim = min(
                    self._by_params, key=lambda k: self._by_params[k].invocations
                )
                del self._by_params[victim]
            summary = _Summary()
            summary.update(cpu_us, cardinality)
            self._by_params[key] = summary

    def _diverges(self, cpu_us, cardinality):
        average = self._overall
        if average.cardinality is None or average.invocations < 2:
            return False
        card_ratio = _ratio(cardinality, average.cardinality)
        cpu_ratio = _ratio(cpu_us, average.cpu_us)
        return card_ratio >= DIVERGENCE_FACTOR or cpu_ratio >= DIVERGENCE_FACTOR

    # ------------------------------------------------------------------ #
    # estimation
    # ------------------------------------------------------------------ #

    def estimate(self, params=None):
        """``(cpu_us, cardinality)`` estimate for an invocation."""
        if params is not None:
            summary = self._by_params.get(self._key(params))
            if summary is not None:
                return summary.cpu_us, summary.cardinality
        if self._overall.invocations > 0:
            return self._overall.cpu_us, self._overall.cardinality
        return self.default_cpu_us, self.default_cardinality

    @property
    def invocations(self):
        return self._overall.invocations

    @property
    def parameter_specific_entries(self):
        return len(self._by_params)

    @staticmethod
    def _key(params):
        return tuple(params) if params is not None else ()


def _ratio(a, b):
    a = max(float(a), 1e-9)
    b = max(float(b), 1e-9)
    return max(a / b, b / a)
