"""Statistics for long string / binary columns (paper Section 3.1).

"For longer string and binary data types, SQL Anywhere uses a different
infrastructure that dynamically maintains a list of observed predicates and
their selectivities. ... Each bucket is represented by a hash value, a
relational predicate (equality, non-equality, BETWEEN, IS NULL, or LIKE)
and the associated selectivity ... buckets are also created for 'words' in
the string ... useful in estimating the selectivity of LIKE predicates."
"""

import collections

from repro.common.hashing import string_hash, word_tokens

#: Predicate kinds tracked in observation buckets.
EQ = "="
NE = "<>"
BETWEEN = "BETWEEN"
IS_NULL = "IS NULL"
LIKE = "LIKE"

#: Cap on retained (hash, predicate) observation buckets (LRU beyond).
MAX_PREDICATE_BUCKETS = 256

#: Cap on retained word buckets.
MAX_WORD_BUCKETS = 512

#: Fallback selectivity when nothing has been observed.
DEFAULT_SELECTIVITY = 0.05


class StringStatistics:
    """Observed-predicate buckets plus word buckets for one string column."""

    def __init__(self):
        # (predicate_kind, hash) -> selectivity; insertion-ordered for LRU.
        self._predicates = collections.OrderedDict()
        # word -> hash bucket with observed fraction of rows containing it.
        self._words = collections.OrderedDict()
        self.observations = 0

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def observe_predicate(self, kind, operand_text, selectivity):
        """Record the observed selectivity of a predicate evaluation."""
        key = (kind, string_hash(operand_text))
        self._touch(self._predicates, key, float(selectivity), MAX_PREDICATE_BUCKETS)
        self.observations += 1
        if kind == LIKE:
            # LIKE '%word%' patterns feed the word buckets too.
            for word in word_tokens(operand_text.replace("%", " ").replace("_", " ")):
                self._touch(
                    self._words, word.lower(), float(selectivity), MAX_WORD_BUCKETS
                )

    def observe_value(self, text):
        """Feed one stored value's words (called on INSERT/LOAD sampling)."""
        if text is None:
            return
        for word in word_tokens(text):
            key = word.lower()
            if key in self._words:
                continue
            # A value observation seeds a word bucket with no selectivity
            # estimate yet; feedback refines it.
            self._touch(self._words, key, None, MAX_WORD_BUCKETS)

    @staticmethod
    def _touch(table, key, value, cap):
        if key in table:
            old = table.pop(key)
            if value is None:
                value = old
        table[key] = value
        while len(table) > cap:
            table.popitem(last=False)

    # ------------------------------------------------------------------ #
    # estimation
    # ------------------------------------------------------------------ #

    def estimate_predicate(self, kind, operand_text):
        """Selectivity for (kind, operand), or None if never observed."""
        key = (kind, string_hash(operand_text))
        value = self._predicates.get(key)
        if value is not None:
            # refresh LRU position
            self._predicates.move_to_end(key)
        return value

    def estimate_like(self, pattern):
        """Selectivity of a LIKE pattern.

        Exact-pattern observations win; otherwise the word buckets supply
        an estimate for patterns that target a word (``'%term%'``); failing
        both, a default guess.
        """
        observed = self.estimate_predicate(LIKE, pattern)
        if observed is not None:
            return observed
        words = word_tokens(pattern.replace("%", " ").replace("_", " "))
        estimates = [
            self._words[word.lower()]
            for word in words
            if self._words.get(word.lower()) is not None
        ]
        if estimates:
            # Independence across words.
            selectivity = 1.0
            for estimate in estimates:
                selectivity *= estimate
            return selectivity
        return DEFAULT_SELECTIVITY

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def predicate_bucket_count(self):
        return len(self._predicates)

    @property
    def word_bucket_count(self):
        return len(self._words)
