"""Simulated storage: disk devices, volumes, paged files, and the log.

A SQL Anywhere database is "stored as ordinary OS files ... a main database
file, a separate transaction log file, and up to 12 additional database
files" (paper Section 1).  This package reproduces that structure on top of
simulated devices that charge per-I/O microseconds to the shared virtual
clock.  Three device families are provided:

* :class:`~repro.storage.disk.RotationalDisk` — seek + rotational latency +
  transfer, the substrate for the calibration experiment (Figure 2b);
* :class:`~repro.storage.disk.FlashDisk` — uniform access times (Figure 3);
* :class:`~repro.storage.disk.ModelBackedDisk` — charges straight from a
  DTT model, so estimate-vs-actual comparisons are exact by construction.
"""

from repro.storage.disk import Disk, FlashDisk, ModelBackedDisk, RotationalDisk
from repro.storage.pagedfile import PageAddress, PagedFile, Volume
from repro.storage.log import (
    CommitTicket,
    GroupCommitConfig,
    GroupCommitCoordinator,
    LogRecord,
    TransactionLog,
)

__all__ = [
    "Disk",
    "RotationalDisk",
    "FlashDisk",
    "ModelBackedDisk",
    "Volume",
    "PagedFile",
    "PageAddress",
    "TransactionLog",
    "LogRecord",
    "GroupCommitConfig",
    "GroupCommitCoordinator",
    "CommitTicket",
]
